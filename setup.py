"""Build shim: compile the optional native kernel extension.

All project metadata lives in ``pyproject.toml``; this file exists
only to declare ``repro.kernels._native`` as an *optional* C
extension.  ``optional=True`` makes setuptools tolerate a missing or
failing compiler: ``pip install .`` then produces a pure-Python wheel
and the package runs on the ``pure``/``numpy`` kernel backends.  A
successful build ships the compiled extension in the wheel and
``REPRO_BACKEND=auto`` resolves to ``native``.

From an installed source checkout the extension can also be built in
place with ``python -m repro.kernels.build``.
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.kernels._native",
            sources=["src/repro/kernels/_native.c"],
            extra_compile_args=["-O2", "-fno-strict-aliasing"],
            optional=True,
        )
    ]
)
