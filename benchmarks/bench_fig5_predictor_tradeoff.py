"""Figure 5 — standout predictor results, all six workloads.

Regenerates: for each workload, the (request messages per miss,
percent indirections) point of the directory and snooping baselines
and the four predictor policies, using the paper's standout predictor
configuration (8,192 entries, 1,024-byte macroblock indexing) — as a
single declarative :class:`ExperimentSpec` run through the unified
experiment runner.
"""

from repro.common.params import PredictorConfig
from repro.evaluation.report import render_tradeoff
from repro.experiment import ExperimentSpec, Runner
from repro.workloads import WORKLOAD_NAMES

from benchmarks.conftest import run_once

STANDOUT = PredictorConfig(n_entries=8192, index_granularity=1024)
POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")


def test_fig5(benchmark, corpus, n_references, save_result):
    spec = ExperimentSpec(
        name="fig5_predictor_tradeoff",
        kind="tradeoff",
        workloads=WORKLOAD_NAMES,
        n_references=n_references,
        policies=POLICIES,
        predictor_config=STANDOUT,
    )
    runner = Runner(corpus=corpus)

    results = run_once(benchmark, lambda: runner.run(spec))
    points = results.tradeoff_points()
    save_result("fig5_predictor_tradeoff", render_tradeoff(points))

    by_key = {(p.workload, p.label): p for p in points}
    for name in WORKLOAD_NAMES:
        directory = by_key[(name, "directory")]
        snooping = by_key[(name, "broadcast-snooping")]
        # Endpoints of the design space.
        assert snooping.indirection_pct == 0.0
        assert snooping.request_messages_per_miss > (
            directory.request_messages_per_miss
        )
        for policy in POLICIES:
            point = by_key[(name, policy)]
            # Every predictor lands inside the endpoints.
            assert point.indirection_pct <= directory.indirection_pct + 1.0
            assert point.request_messages_per_miss <= (
                snooping.request_messages_per_miss + 1e-9
            )
        # Owner stays near directory bandwidth; Broadcast-If-Shared
        # stays near snooping latency (Section 4.3).
        owner = by_key[(name, "owner")]
        assert owner.request_messages_per_miss < (
            directory.request_messages_per_miss + 1.5
        )
        bifs = by_key[(name, "broadcast-if-shared")]
        assert bifs.indirection_pct < 6.0
