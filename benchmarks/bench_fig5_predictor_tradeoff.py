"""Figure 5 — standout predictor results, all six workloads.

Regenerates: for each workload, the (request messages per miss,
percent indirections) point of the directory and snooping baselines
and the four predictor policies, using the paper's standout predictor
configuration (8,192 entries, 1,024-byte macroblock indexing).
"""

from repro.common.params import PredictorConfig
from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_design_space
from repro.workloads import WORKLOAD_NAMES

from benchmarks.conftest import run_once

STANDOUT = PredictorConfig(n_entries=8192, index_granularity=1024)
POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")


def test_fig5(benchmark, corpus, n_references, save_result):
    def experiment():
        points = []
        for name in WORKLOAD_NAMES:
            trace = corpus.trace(name, n_references)
            points.extend(
                evaluate_design_space(
                    trace, predictors=POLICIES, predictor_config=STANDOUT
                )
            )
        return points

    points = run_once(benchmark, experiment)
    save_result("fig5_predictor_tradeoff", render_tradeoff(points))

    by_key = {(p.workload, p.label): p for p in points}
    for name in WORKLOAD_NAMES:
        directory = by_key[(name, "directory")]
        snooping = by_key[(name, "broadcast-snooping")]
        # Endpoints of the design space.
        assert snooping.indirection_pct == 0.0
        assert snooping.request_messages_per_miss > (
            directory.request_messages_per_miss
        )
        for policy in POLICIES:
            point = by_key[(name, policy)]
            # Every predictor lands inside the endpoints.
            assert point.indirection_pct <= directory.indirection_pct + 1.0
            assert point.request_messages_per_miss <= (
                snooping.request_messages_per_miss + 1e-9
            )
        # Owner stays near directory bandwidth; Broadcast-If-Shared
        # stays near snooping latency (Section 4.3).
        owner = by_key[(name, "owner")]
        assert owner.request_messages_per_miss < (
            directory.request_messages_per_miss + 1.5
        )
        bifs = by_key[(name, "broadcast-if-shared")]
        assert bifs.indirection_pct < 6.0
