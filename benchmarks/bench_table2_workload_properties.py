"""Table 2 — workload properties for all six workloads.

Regenerates: memory touched (64 B and 1024 B), static instructions
causing misses, total misses, misses per 1,000 instructions, and the
percent of misses a directory protocol would indirect.
"""

from repro.analysis.properties import workload_properties
from repro.evaluation.report import format_table, render_workload_properties
from repro.workloads import WORKLOAD_NAMES, create_workload

from benchmarks.conftest import run_once


def test_table2(benchmark, corpus, n_references, save_result):
    def experiment():
        return [
            workload_properties(corpus.collect(name, n_references))
            for name in WORKLOAD_NAMES
        ]

    rows = run_once(benchmark, experiment)
    text = render_workload_properties(rows)
    paper_rows = [
        (
            name,
            f"{create_workload(name).paper.footprint_mb:.0f} MB",
            f"{create_workload(name).paper.misses_per_kilo_instr:.1f}",
            f"{create_workload(name).paper.directory_indirection_pct:.0f}%",
        )
        for name in WORKLOAD_NAMES
    ]
    text += "\n\npaper reference (full-scale):\n" + format_table(
        ("workload", "touched-64B", "miss/1k-instr", "dir-indirections"),
        paper_rows,
    )
    save_result("table2_workload_properties", text)

    # Shape check: the indirection column must track the paper rows.
    for measured in rows:
        paper = create_workload(measured.workload).paper
        assert abs(
            measured.directory_indirection_pct
            - paper.directory_indirection_pct
        ) < 12.0
