"""Extension — destination-set prediction across processor counts.

The paper fixes 16 processors; snooping's end-point bandwidth grows
with the square of the processor count while predictors track the
actual sharing degree.  This sweep (4/16/32 processors) quantifies how
the predictor's bandwidth advantage over snooping widens with scale
while its indirection advantage over the directory persists.
"""

from repro.common.params import SystemConfig
from repro.evaluation.report import format_table
from repro.evaluation.tradeoff import evaluate_design_space
from repro.workloads import create_workload

from benchmarks.conftest import run_once

PROCESSOR_COUNTS = (4, 16, 32)
POLICIES = ("group",)


def test_ext_processor_scaling(benchmark, n_references, save_result):
    def experiment():
        rows = []
        for n_processors in PROCESSOR_COUNTS:
            config = SystemConfig(n_processors=n_processors)
            model = create_workload("apache", config=config, seed=42)
            trace = model.collect(
                max(20_000, n_references // 4)
            ).trace
            for point in evaluate_design_space(
                trace, config=config, predictors=POLICIES
            ):
                rows.append((n_processors, point))
        return rows

    rows = run_once(benchmark, experiment)
    text = format_table(
        ("processors", "config", "req-msgs/miss", "indirections"),
        (
            (
                n_processors,
                point.label,
                f"{point.request_messages_per_miss:.2f}",
                f"{point.indirection_pct:.1f}%",
            )
            for n_processors, point in rows
        ),
    )
    save_result("ext_processor_scaling", text)

    def messages(n_processors, label):
        return next(
            p.request_messages_per_miss
            for n, p in rows
            if n == n_processors and p.label == label
        )

    # Snooping fan-out grows linearly per miss (quadratically in
    # aggregate); the predictor's stays near the sharing degree.
    for n_processors in PROCESSOR_COUNTS:
        assert messages(n_processors, "broadcast-snooping") == (
            n_processors - 1
        )
    growth_snooping = messages(32, "broadcast-snooping") / messages(
        4, "broadcast-snooping"
    )
    growth_group = messages(32, "group") / max(
        1e-9, messages(4, "group")
    )
    assert growth_group < growth_snooping
