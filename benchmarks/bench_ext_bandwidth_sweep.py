"""Extension — protocol crossover under constrained link bandwidth.

The paper deliberately evaluates with ample bandwidth (10 GB/s links),
noting that snooping "always performs best for such a system" and that
the winner "depends upon ... the available interconnect bandwidth"
(Section 5.3).  This sweep varies link bandwidth and shows the
crossover the paper alludes to: as links shrink, broadcast snooping's
request fan-out congests its own links and the bandwidth-efficient
configurations overtake it.
"""

import dataclasses

from repro.common.params import SystemConfig
from repro.evaluation.report import format_table
from repro.evaluation.runtime import evaluate_runtime

from benchmarks.conftest import run_once

#: Link bandwidths in bytes/ns (1 byte/ns = 1 GB/s, nominal 10).
BANDWIDTHS = (10.0, 1.0, 0.25, 0.1)
POLICIES = ("owner-group",)


def test_ext_bandwidth_sweep(benchmark, corpus, n_references, save_result):
    trace = corpus.trace("oltp", n_references)

    def experiment():
        rows = []
        for bandwidth in BANDWIDTHS:
            config = dataclasses.replace(
                SystemConfig(), link_bandwidth_bytes_per_ns=bandwidth
            )
            points = evaluate_runtime(
                trace, config=config, predictors=POLICIES
            )
            for point in points:
                rows.append((bandwidth, point))
        return rows

    rows = run_once(benchmark, experiment)
    text = format_table(
        ("link GB/s", "config", "norm-runtime", "runtime ms"),
        (
            (
                f"{bandwidth:g}",
                point.label,
                f"{point.normalized_runtime:.1f}",
                f"{point.runtime_ns / 1e6:.2f}",
            )
            for bandwidth, point in rows
        ),
    )
    save_result("ext_bandwidth_sweep", text)

    def runtime(bandwidth, label):
        return next(
            p.normalized_runtime
            for b, p in rows
            if b == bandwidth and p.label == label
        )

    # Ample bandwidth: snooping wins (the paper's configuration).
    assert runtime(10.0, "broadcast-snooping") < runtime(10.0, "directory")
    # Snooping degrades more than the bandwidth-efficient configs as
    # links shrink (normalized runtime is relative to directory=100).
    assert (
        runtime(BANDWIDTHS[-1], "broadcast-snooping")
        > runtime(10.0, "broadcast-snooping")
    )
    # The predictor stays within the endpoints everywhere.
    for bandwidth in BANDWIDTHS:
        assert runtime(bandwidth, "owner-group") <= max(
            runtime(bandwidth, "directory"),
            runtime(bandwidth, "broadcast-snooping"),
        ) + 1.0
