"""Extension — protocol crossover under constrained link bandwidth.

The paper deliberately evaluates with ample bandwidth (10 GB/s links),
noting that snooping "always performs best for such a system" and that
the winner "depends upon ... the available interconnect bandwidth"
(Section 5.3).  This sweep varies link bandwidth and shows the
crossover the paper alludes to: as links shrink, broadcast snooping's
request fan-out congests its own links and the bandwidth-efficient
configurations overtake it.

Since the pluggable-interconnect layer, bandwidth is a first-class
spec axis: the sweep is one :func:`repro.experiment.bandwidth_sweep`
spec run through the standard :class:`Runner`, and the curves come out
of :meth:`ResultSet.bandwidth_curves` instead of a hand-rolled loop.
"""

from repro.evaluation.plot import plot_bandwidth_curves
from repro.experiment import Runner, bandwidth_sweep

from benchmarks.conftest import run_once

#: Link bandwidths in bytes/ns (1 byte/ns = 1 GB/s, nominal 10).
BANDWIDTHS = (10.0, 1.0, 0.25, 0.1)
POLICIES = ("owner-group",)


def test_ext_bandwidth_sweep(benchmark, corpus, n_references, save_result):
    spec = bandwidth_sweep(
        ("oltp",),
        BANDWIDTHS,
        n_references=n_references,
        policies=POLICIES,
    )

    def experiment():
        return Runner(jobs=1, corpus=corpus).run(spec)

    results = run_once(benchmark, experiment)
    text = "{}\n\n{}".format(
        results.table(),
        plot_bandwidth_curves(results.bandwidth_curves("runtime_ns")),
    )
    save_result("ext_bandwidth_sweep", text)

    def runtime(bandwidth, label):
        return next(
            r["normalized_runtime"]
            for r in results
            if r.bandwidth == bandwidth and r.label == label
        )

    # Ample bandwidth: snooping wins (the paper's configuration).
    assert runtime(10.0, "broadcast-snooping") < runtime(10.0, "directory")
    # Snooping degrades more than the bandwidth-efficient configs as
    # links shrink (normalized runtime is relative to directory=100).
    assert (
        runtime(BANDWIDTHS[-1], "broadcast-snooping")
        > runtime(10.0, "broadcast-snooping")
    )
    # The predictor stays within the endpoints everywhere.
    for bandwidth in BANDWIDTHS:
        assert runtime(bandwidth, "owner-group") <= max(
            runtime(bandwidth, "directory"),
            runtime(bandwidth, "broadcast-snooping"),
        ) + 1.0
