"""Ablation — headroom versus a perfect (oracle) predictor.

Not a paper figure: bounds the achievable space.  The oracle predicts
exactly the processors that must observe each request, so it sits at
(minimum bandwidth, zero indirections); the gap between each policy
and the oracle is the unrealised opportunity destination-set
prediction leaves on the table.
"""

from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_design_space

from benchmarks.conftest import run_once

POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group",
            "oracle")


def test_ablation_oracle(benchmark, corpus, n_references, save_result):
    trace = corpus.trace("oltp", n_references)

    def experiment():
        return evaluate_design_space(trace, predictors=POLICIES)

    points = run_once(benchmark, experiment)
    save_result("ablation_oracle_headroom", render_tradeoff(points))

    by_label = {p.label: p for p in points}
    oracle = by_label["oracle"]
    assert oracle.indirection_pct == 0.0
    for label, point in by_label.items():
        assert (
            oracle.request_messages_per_miss
            <= point.request_messages_per_miss + 1e-9
        ), label
