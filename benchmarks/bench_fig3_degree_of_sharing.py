"""Figure 3 — degree of sharing over the execution.

Regenerates: (a) the histogram of blocks by how many processors touch
them, and (b) the same histogram weighted by each block's miss count.
"""

from repro.analysis.sharing import degree_of_sharing
from repro.evaluation.report import render_degree_of_sharing
from repro.workloads import WORKLOAD_NAMES

from benchmarks.conftest import run_once


def test_fig3(benchmark, corpus, n_references, save_result):
    def experiment():
        return [
            degree_of_sharing(corpus.trace(name, n_references))
            for name in WORKLOAD_NAMES
        ]

    degrees = run_once(benchmark, experiment)
    save_result(
        "fig3_degree_of_sharing",
        render_degree_of_sharing(degrees, thresholds=(1, 2, 4, 8, 16)),
    )

    by_name = {d.workload: d for d in degrees}
    # Fig 3a: most blocks are touched by only one processor.
    for name in ("apache", "slashcode", "specjbb", "oltp"):
        assert by_name[name].blocks_pct[1] > 50.0, name
    # Fig 3b: Ocean's misses concentrate on blocks shared by <= 4
    # processors (column-blocked stencil); commercial workloads put
    # proportionally more misses on widely shared blocks than the
    # block population alone would suggest.
    assert by_name["ocean"].misses_cumulative(4) > 75.0
    apache = by_name["apache"]
    assert (100 - apache.misses_cumulative(8)) > (
        100 - apache.blocks_cumulative(8)
    )
