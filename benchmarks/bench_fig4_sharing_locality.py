"""Figure 4 — temporal/spatial locality of cache-to-cache misses.

Regenerates: cumulative distributions of cache-to-cache misses over
the hottest 64 B blocks (4a), 1024 B macroblocks (4b), and static
instructions (4c).
"""

from repro.analysis.locality import locality_cdf
from repro.evaluation.report import render_locality
from repro.workloads import WORKLOAD_NAMES

from benchmarks.conftest import run_once

KS = (10, 100, 1000, 10000)


def test_fig4(benchmark, corpus, n_references, save_result):
    def experiment():
        cdfs = []
        for name in WORKLOAD_NAMES:
            trace = corpus.trace(name, n_references)
            for kind in ("block", "macroblock", "pc"):
                cdfs.append(locality_cdf(trace, kind=kind))
        return cdfs

    cdfs = run_once(benchmark, experiment)
    save_result("fig4_sharing_locality", render_locality(cdfs, ks=KS))

    # Paper: the 10,000 hottest macroblocks cover > 80% of c2c misses
    # (our scaled traces concentrate even further); macroblocks always
    # show at least as much locality as blocks at equal k.
    by_key = {(c.workload, c.kind): c for c in cdfs}
    for name in WORKLOAD_NAMES:
        blocks = by_key[(name, "block")]
        macros = by_key[(name, "macroblock")]
        assert macros.coverage(1000) >= blocks.coverage(1000) - 1e-9, name
        assert macros.coverage(10000) > 80.0, name
        # Fig 4c: a small number of static instructions cause most
        # cache-to-cache misses.
        pcs = by_key[(name, "pc")]
        assert pcs.coverage(1000) > 80.0, name
