"""Figure 2 — instantaneous sharing histogram.

Regenerates: the percent of read/write misses that must contact 0, 1,
2, or 3+ other processors, for each workload.
"""

from repro.analysis.sharing import sharing_histogram
from repro.evaluation.report import render_sharing_histogram
from repro.workloads import WORKLOAD_NAMES

from benchmarks.conftest import run_once


def test_fig2(benchmark, corpus, n_references, save_result):
    def experiment():
        return [
            sharing_histogram(corpus.trace(name, n_references))
            for name in WORKLOAD_NAMES
        ]

    histograms = run_once(benchmark, experiment)
    save_result(
        "fig2_sharing_histogram", render_sharing_histogram(histograms)
    )

    # Paper: "only about 10% of all requests need to be sent to more
    # than one other processor."
    for histogram in histograms:
        assert histogram.multi_recipient_pct < 25.0, histogram.workload
