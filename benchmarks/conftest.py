"""Shared infrastructure for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables or figures
and prints the rows/series the paper reports (also persisted under
``benchmarks/results/``).  Benchmarks share a session-scoped trace
corpus backed by the persistent cache under
``benchmarks/.trace-cache`` so workload traces are collected once —
and reused across benchmark *runs*, not just within one session.

Scale: ``REPRO_BENCH_REFS`` (default 160,000 references per workload)
controls trace length; raise it for tighter numbers at the cost of
time.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiment import PersistentTraceCorpus

N_REFERENCES = int(os.environ.get("REPRO_BENCH_REFS", "160000"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

CACHE_DIR = pathlib.Path(__file__).parent / ".trace-cache"


@pytest.fixture(scope="session")
def corpus() -> PersistentTraceCorpus:
    return PersistentTraceCorpus(cache_dir=CACHE_DIR)


@pytest.fixture(scope="session")
def n_references() -> int:
    return N_REFERENCES


@pytest.fixture(scope="session")
def save_result():
    """Persist (and echo) a rendered table/series."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n===== {name} =====")
        print(text)

    return _save


def run_once(benchmark, function):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(function, rounds=1, iterations=1)
