"""Figure 6(b) — macroblock indexing (OLTP).

Regenerates: the four policies with unbounded tables indexed at 64 B,
256 B, and 1024 B granularity.
"""

import dataclasses

from repro.common.params import PredictorConfig
from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_design_space

from benchmarks.conftest import run_once

POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")
GRANULARITIES = (64, 256, 1024)


def test_fig6b(benchmark, corpus, n_references, save_result):
    trace = corpus.trace("oltp", n_references)

    def experiment():
        points = evaluate_design_space(trace, predictors=())
        for granularity in GRANULARITIES:
            config = PredictorConfig(
                n_entries=None, index_granularity=granularity
            )
            for point in evaluate_design_space(
                trace,
                predictors=POLICIES,
                predictor_config=config,
                include_baselines=False,
            ):
                points.append(
                    dataclasses.replace(
                        point, label=f"{point.label} [{granularity}B]"
                    )
                )
        return points

    points = run_once(benchmark, experiment)
    save_result("fig6b_macroblock_indexing", render_tradeoff(points))

    by_label = {p.label: p for p in points}
    # Section 4.4: macroblock indexing "improves prediction ... in most
    # cases".  The robust winners are the counter-based policies, where
    # spatially related blocks pool their training; Owner can lose a
    # little because distinct blocks in a macroblock have distinct
    # owners that a shared entry blurs together.
    for policy in ("group", "broadcast-if-shared"):
        fine = by_label[f"{policy} [64B]"]
        coarse = by_label[f"{policy} [1024B]"]
        assert coarse.indirection_pct <= fine.indirection_pct + 1.0, policy
    owner_fine = by_label["owner [64B]"]
    owner_coarse = by_label["owner [1024B]"]
    assert owner_coarse.indirection_pct <= owner_fine.indirection_pct + 12.0
