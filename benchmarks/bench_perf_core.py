"""Core-engine throughput microbenchmarks (the ``repro bench`` suite).

Not a paper figure: measures the simulation core itself — protocol
replay, the Figure 5 tradeoff sweep, the timing simulator, and the
trace analyses — in records per second, and checks the columnar
engine's speedup claim against the committed ``BENCH_baseline.json``.

Run ``repro bench --out BENCH.json`` for the standalone CLI version;
this wrapper integrates the same suite with the pytest-benchmark
harness and persists the rendered table under ``benchmarks/results/``.
"""

import json
import pathlib

from repro.evaluation import bench

from benchmarks.conftest import run_once

BASELINE_PATH = pathlib.Path(__file__).parent.parent / "BENCH_baseline.json"


def test_perf_core_suite(benchmark, corpus, n_references, save_result):
    trace = corpus.trace("oltp", n_references)

    def experiment():
        return bench.run_suite(
            trace, "oltp", n_references, 42, repeats=1
        )

    report = run_once(benchmark, experiment)
    save_result("perf_core_bench", bench.render_report(report))

    by_name = {b["name"]: b for b in report["benchmarks"]}
    # The engine claim: every hot path clears 100k records/sec on any
    # development-class machine; the calibrated regression gate against
    # the committed baseline is the precise check (done in CI via
    # ``repro bench --check``).
    assert by_name["fig5_tradeoff"]["records_per_sec"] > 100_000
    assert by_name["protocol_directory"]["records_per_sec"] > 100_000
    # Cold-path entries (batched generation layer): generation clears
    # 100k references/sec and the columnar analyses stay in the
    # records/sec leagues of the replay kernels.
    assert by_name["trace_generation"]["records_per_sec"] > 100_000
    assert by_name["analysis_sharing"]["records_per_sec"] > 100_000
    assert by_name["analysis_locality"]["records_per_sec"] > 100_000
    # Every fused multicast batch kernel is measured individually, so
    # a regression in any one predictor's kernel trips the gate.
    for name in (
        "protocol_multicast_group",
        "protocol_multicast_owner",
        "protocol_multicast_bifs",
        "protocol_multicast_sticky",
    ):
        assert by_name[name]["records_per_sec"] > 100_000, name
    # Timing throughput holds up when the link-contention arithmetic
    # actually fires (1/10th bandwidth — the contended end of a
    # bandwidth sweep), not just at the paper's ample 10 GB/s.
    assert by_name["timing_constrained_bw"]["records_per_sec"] > 100_000

    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        same_config = (
            baseline.get("workload") == report["workload"]
            and baseline.get("n_references") == report["n_references"]
        )
        if same_config:
            failures = bench.check_against_baseline(
                report, baseline, tolerance=0.5
            )
            assert not failures, failures
