"""Figure 6(a) — program-counter versus data-block indexing (OLTP).

Regenerates: the four policies with unbounded tables indexed by 64 B
data-block address versus miss PC.
"""

import dataclasses

from repro.common.params import PredictorConfig
from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_design_space

from benchmarks.conftest import run_once

POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")
CONFIGS = (
    ("64B-block", PredictorConfig(n_entries=None, index_granularity=64)),
    ("pc", PredictorConfig(n_entries=None, use_pc_index=True)),
)


def test_fig6a(benchmark, corpus, n_references, save_result):
    trace = corpus.trace("oltp", n_references)

    def experiment():
        points = evaluate_design_space(trace, predictors=())
        for label, config in CONFIGS:
            for point in evaluate_design_space(
                trace,
                predictors=POLICIES,
                predictor_config=config,
                include_baselines=False,
            ):
                points.append(
                    dataclasses.replace(
                        point, label=f"{point.label} [{label}]"
                    )
                )
        return points

    points = run_once(benchmark, experiment)
    save_result("fig6a_pc_indexing", render_tradeoff(points))

    by_label = {p.label: p for p in points}
    # Section 4.4: data-block indexing yields better predictions for
    # Owner (fewer indirections at comparable traffic).
    owner_block = by_label["owner [64B-block]"]
    owner_pc = by_label["owner [pc]"]
    assert owner_block.indirection_pct <= owner_pc.indirection_pct + 2.0
