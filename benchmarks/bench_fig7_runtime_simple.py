"""Figure 7 — runtime performance, simple processor model, all six
workloads.

Regenerates: normalized runtime (directory = 100) versus normalized
interconnect traffic per miss (snooping = 100) for the baselines and
the four predictor policies, driven by one declarative
:class:`ExperimentSpec`.
"""

from repro.evaluation.report import render_runtime
from repro.experiment import ExperimentSpec, Runner
from repro.workloads import WORKLOAD_NAMES

from benchmarks.conftest import run_once

POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")


def test_fig7(benchmark, corpus, n_references, save_result):
    spec = ExperimentSpec(
        name="fig7_runtime_simple",
        kind="runtime",
        workloads=WORKLOAD_NAMES,
        n_references=n_references,
        policies=POLICIES,
        processor_model="simple",
    )
    runner = Runner(corpus=corpus)

    results = run_once(benchmark, lambda: runner.run(spec))
    points = results.runtime_points()
    save_result("fig7_runtime_simple", render_runtime(points))

    by_key = {(p.workload, p.label): p for p in points}
    for name in WORKLOAD_NAMES:
        snooping = by_key[(name, "broadcast-snooping")]
        directory = by_key[(name, "directory")]
        # Snooping outperforms the directory under ample bandwidth;
        # traffic ratio is roughly the paper's factor of two.
        assert snooping.normalized_runtime < 100.0, name
        assert (
            1.4
            < 100.0 / directory.normalized_traffic_per_miss
            < 3.5
        ), name
        for policy in POLICIES:
            point = by_key[(name, policy)]
            # Predictors land between the endpoints on both axes.
            assert (
                snooping.normalized_runtime - 2.0
                <= point.normalized_runtime
                <= 102.0
            ), (name, policy)
            assert (
                directory.normalized_traffic_per_miss - 2.0
                <= point.normalized_traffic_per_miss
                <= 102.0
            ), (name, policy)
