"""Extension — the bandwidth-adaptive hybrid's tunable tradeoff curve.

Not a paper figure.  Sweeps the adaptive predictor's budget knob on
Apache, showing that one mechanism traces a curve between the Owner
and Broadcast-If-Shared endpoints (the related-work direction the
paper cites as "adapting to available bandwidth").
"""

import dataclasses

from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_design_space, evaluate_protocol
from repro.predictors.adaptive import BandwidthAdaptivePredictor
from repro.protocols.multicast import MulticastSnoopingProtocol

from benchmarks.conftest import run_once

BUDGETS = (2.0, 4.0, 8.0, 12.0)


class _AdaptiveProtocol(MulticastSnoopingProtocol):
    """Multicast snooping with budgeted adaptive predictors."""

    def __init__(self, config, predictor_config, budget):
        super().__init__(config, "bandwidth-adaptive", predictor_config)
        self.predictors = [
            BandwidthAdaptivePredictor(
                config.n_processors, self.predictor_config, budget
            )
            for _ in range(config.n_processors)
        ]


def test_ext_bandwidth_adaptive(benchmark, corpus, n_references,
                                save_result):
    trace = corpus.trace("apache", n_references)
    system = SystemConfig()
    predictor_config = PredictorConfig()

    def experiment():
        points = evaluate_design_space(
            trace,
            predictors=("owner", "broadcast-if-shared"),
            predictor_config=predictor_config,
        )
        for budget in BUDGETS:
            protocol = _AdaptiveProtocol(system, predictor_config, budget)
            point = evaluate_protocol(
                protocol, trace, label=f"adaptive(budget={budget:g})"
            )
            points.append(point)
        return points

    points = run_once(benchmark, experiment)
    save_result("ext_bandwidth_adaptive", render_tradeoff(points))

    by_label = {p.label: p for p in points}
    tightest = by_label[f"adaptive(budget={BUDGETS[0]:g})"]
    loosest = by_label[f"adaptive(budget={BUDGETS[-1]:g})"]
    # The knob works: tighter budgets spend less bandwidth at the cost
    # of more indirections.
    assert (
        tightest.request_messages_per_miss
        < loosest.request_messages_per_miss
    )
    assert tightest.indirection_pct >= loosest.indirection_pct - 0.5
