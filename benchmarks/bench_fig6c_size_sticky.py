"""Figure 6(c) — predictor capacity and the StickySpatial(1) baseline
(OLTP, 1024 B macroblock indexing).

Regenerates: the four policies at unbounded, 32,768- and 8,192-entry
capacities, plus StickySpatial(1) at a range of sizes.
"""

import dataclasses

from repro.common.params import PredictorConfig
from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_design_space

from benchmarks.conftest import run_once

POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")
SIZES = (None, 32768, 8192)
STICKY_SIZES = (32768, 8192, 4096)


def _size_label(entries):
    return "unbounded" if entries is None else f"{entries // 1024}k"


def test_fig6c(benchmark, corpus, n_references, save_result):
    trace = corpus.trace("oltp", n_references)

    def experiment():
        points = evaluate_design_space(trace, predictors=())
        for entries in SIZES:
            config = PredictorConfig(
                n_entries=entries, index_granularity=1024
            )
            for point in evaluate_design_space(
                trace,
                predictors=POLICIES,
                predictor_config=config,
                include_baselines=False,
            ):
                points.append(
                    dataclasses.replace(
                        point,
                        label=f"{point.label} [{_size_label(entries)}]",
                    )
                )
        for entries in STICKY_SIZES:
            config = PredictorConfig(n_entries=entries, associativity=1)
            for point in evaluate_design_space(
                trace,
                predictors=("sticky-spatial",),
                predictor_config=config,
                include_baselines=False,
            ):
                points.append(
                    dataclasses.replace(
                        point,
                        label=f"{point.label} [{_size_label(entries)}]",
                    )
                )
        return points

    points = run_once(benchmark, experiment)
    save_result("fig6c_capacity_and_sticky", render_tradeoff(points))

    by_label = {p.label: p for p in points}
    # Section 4.4: 8192-entry predictors perform comparably to
    # unbounded ones for these workloads.
    for policy in POLICIES:
        unbounded = by_label[f"{policy} [unbounded]"]
        bounded = by_label[f"{policy} [8k]"]
        assert bounded.indirection_pct <= unbounded.indirection_pct + 6.0
    # Our predictors match or beat StickySpatial(1) on at least one
    # axis (Section 4.4 "Comparison to previous predictors").
    sticky = by_label["sticky-spatial [8k]"]
    hybrid = by_label["owner-group [8k]"]
    assert (
        hybrid.request_messages_per_miss <= sticky.request_messages_per_miss
        or hybrid.indirection_pct <= sticky.indirection_pct
    )
