"""Ablation — Group's counter width (Table 3 sizes the entry at 2 bits
per processor).

1-bit counters flip into and out of the predicted set on single
events; wider counters add hysteresis at more storage.  This ablation
quantifies why the paper's 2 bits is the sweet spot.
"""

import dataclasses

from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_protocol
from repro.predictors.group import GroupPredictor
from repro.protocols.multicast import MulticastSnoopingProtocol

from benchmarks.conftest import run_once

COUNTER_BITS = (1, 2, 3)


class _WidthedGroupProtocol(MulticastSnoopingProtocol):
    """Multicast snooping with a counter-width-parameterised Group."""

    def __init__(self, config, predictor_config, counter_bits):
        super().__init__(config, "group", predictor_config)
        self.predictors = [
            GroupPredictor(
                config.n_processors,
                self.predictor_config,
                counter_bits=counter_bits,
            )
            for _ in range(config.n_processors)
        ]


def test_ablation_counter_width(benchmark, corpus, n_references,
                                save_result):
    trace = corpus.trace("oltp", n_references)
    system = SystemConfig()
    predictor_config = PredictorConfig()

    def experiment():
        points = []
        for bits in COUNTER_BITS:
            protocol = _WidthedGroupProtocol(
                system, predictor_config, bits
            )
            point = evaluate_protocol(
                protocol, trace, label=f"group {bits}-bit"
            )
            points.append(point)
        return points

    points = run_once(benchmark, experiment)
    save_result("ablation_group_counter_width", render_tradeoff(points))

    by_label = {p.label: p for p in points}
    one, two, three = (
        by_label[f"group {bits}-bit"] for bits in COUNTER_BITS
    )
    # The paper's 2 bits is a sweet spot against the rollover decay:
    # 1-bit counters flip out of the set on a single decrement, and
    # 3-bit counters take too long to train up past threshold, so both
    # neighbours indirect more than 2-bit.
    assert two.indirection_pct <= one.indirection_pct
    assert two.indirection_pct <= three.indirection_pct
