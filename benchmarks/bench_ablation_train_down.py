"""Ablation — Group's train-down (rollover) mechanism.

The paper credits Group's explicit train-down for removing inactive
processors from learned destination sets (Section 3.3) and criticises
StickySpatial for lacking one (Section 3.5).  This ablation runs Group
with and without the rollover decrement and with different rollover
periods, quantifying the bandwidth cost of stickiness.
"""

import dataclasses

from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.report import render_tradeoff
from repro.evaluation.tradeoff import evaluate_protocol
from repro.predictors.group import GroupPredictor
from repro.protocols.multicast import MulticastSnoopingProtocol

from benchmarks.conftest import run_once

VARIANTS = (
    ("rollover-8", 8, True),
    ("rollover-32", 32, True),
    ("rollover-128", 128, True),
    ("no-train-down", 32, False),
)


class _AblatedGroupProtocol(MulticastSnoopingProtocol):
    """Multicast snooping with a parameterised Group predictor."""

    def __init__(self, config, predictor_config, rollover, train_down):
        super().__init__(config, "group", predictor_config)
        self.predictors = [
            GroupPredictor(
                config.n_processors,
                self.predictor_config,
                rollover_period=rollover,
                train_down=train_down,
            )
            for _ in range(config.n_processors)
        ]


def test_ablation_train_down(benchmark, corpus, n_references, save_result):
    trace = corpus.trace("apache", n_references)
    system = SystemConfig()
    predictor_config = PredictorConfig()

    def experiment():
        points = []
        for label, rollover, train_down in VARIANTS:
            protocol = _AblatedGroupProtocol(
                system, predictor_config, rollover, train_down
            )
            point = evaluate_protocol(protocol, trace, label=label)
            points.append(dataclasses.replace(point, label=f"group {label}"))
        return points

    points = run_once(benchmark, experiment)
    save_result("ablation_group_train_down", render_tradeoff(points))

    by_label = {p.label: p for p in points}
    sticky = by_label["group no-train-down"]
    trained = by_label["group rollover-32"]
    # Stickiness never prunes stale members, so it must cost bandwidth.
    assert (
        sticky.request_messages_per_miss
        >= trained.request_messages_per_miss - 0.05
    )
