"""Figure 8 — runtime performance, detailed processor model.

Regenerates: the Figure 7 metrics for Apache, OLTP, and SPECjbb under
the detailed (multiple-outstanding-miss) processor model — the three
workloads the paper re-ran on its dynamically scheduled core model —
driven by one declarative :class:`ExperimentSpec`.
"""

from repro.evaluation.report import render_runtime
from repro.experiment import ExperimentSpec, Runner

from benchmarks.conftest import run_once

POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")
WORKLOADS = ("apache", "oltp", "specjbb")


def test_fig8(benchmark, corpus, n_references, save_result):
    spec = ExperimentSpec(
        name="fig8_runtime_detailed",
        kind="runtime",
        workloads=WORKLOADS,
        n_references=n_references,
        policies=POLICIES,
        processor_model="detailed",
        max_outstanding=4,
    )
    runner = Runner(corpus=corpus)

    results = run_once(benchmark, lambda: runner.run(spec))
    points = results.runtime_points()
    save_result("fig8_runtime_detailed", render_runtime(points))

    by_key = {(p.workload, p.label): p for p in points}
    for name in WORKLOADS:
        snooping = by_key[(name, "broadcast-snooping")]
        # Section 5.3: normalized results are similar to the simple
        # model — snooping still fastest, predictors in between.
        assert snooping.normalized_runtime < 100.0, name
        for policy in POLICIES:
            point = by_key[(name, policy)]
            assert point.normalized_runtime <= 102.0, (name, policy)
            assert (
                point.normalized_traffic_per_miss
                <= snooping.normalized_traffic_per_miss + 2.0
            ), (name, policy)
