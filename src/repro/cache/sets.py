"""A set-associative tag store with true-LRU replacement."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.common.types import Address


class SetAssociativeCache:
    """Tag-only set-associative cache model.

    Tracks block presence; data values are irrelevant to coherence
    studies.  ``probe`` checks without side effects, ``touch`` updates
    recency, ``insert`` fills a block and returns the victim (if any).
    """

    def __init__(self, size_bytes: int, associativity: int, block_size: int):
        for name, value in (
            ("size_bytes", size_bytes),
            ("block_size", block_size),
        ):
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        n_blocks = size_bytes // block_size
        if n_blocks % associativity:
            raise ValueError(
                "size/block_size must be divisible by associativity"
            )
        self._block_size = block_size
        self._assoc = associativity
        self._n_sets = n_blocks // associativity
        # Each set is an OrderedDict from block address to None; the
        # first entry is least recently used.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(self._n_sets)
        ]

    # ------------------------------------------------------------------
    @property
    def n_sets(self) -> int:
        return self._n_sets

    @property
    def raw_sets(self) -> List[OrderedDict]:
        """The per-set ordered tag stores (LRU first in each set).

        Exposed for the trace-collection chunk loop, which inlines
        probe/touch/insert over these dicts; treat as an internal
        structure everywhere else.
        """
        return self._sets

    @property
    def associativity(self) -> int:
        return self._assoc

    @property
    def block_size(self) -> int:
        return self._block_size

    def capacity_blocks(self) -> int:
        """Total number of blocks the cache can hold."""
        return self._n_sets * self._assoc

    # ------------------------------------------------------------------
    def probe(self, address: Address) -> bool:
        """True if the block containing ``address`` is present."""
        block = self._align(address)
        return block in self._sets[self._set_index(block)]

    def touch(self, address: Address) -> bool:
        """Mark the block most-recently-used.  Returns presence."""
        block = self._align(address)
        cache_set = self._sets[self._set_index(block)]
        if block not in cache_set:
            return False
        cache_set.move_to_end(block)
        return True

    def insert(self, address: Address) -> Optional[Address]:
        """Fill the block; return the evicted block address, if any.

        If the block is already present this is equivalent to
        :meth:`touch` and returns ``None``.
        """
        block = self._align(address)
        cache_set = self._sets[self._set_index(block)]
        if block in cache_set:
            cache_set.move_to_end(block)
            return None
        victim = None
        if len(cache_set) >= self._assoc:
            victim, _ = cache_set.popitem(last=False)
        cache_set[block] = None
        return victim

    def invalidate(self, address: Address) -> bool:
        """Remove the block if present.  Returns True if it was."""
        block = self._align(address)
        cache_set = self._sets[self._set_index(block)]
        if block in cache_set:
            del cache_set[block]
            return True
        return False

    def occupied_blocks(self) -> int:
        """Number of blocks currently resident."""
        return sum(len(s) for s in self._sets)

    # ------------------------------------------------------------------
    def _align(self, address: Address) -> Address:
        return address & ~(self._block_size - 1)

    def _set_index(self, block: Address) -> int:
        return (block // self._block_size) % self._n_sets
