"""The trace-collection pipeline: references in, L2 miss trace out.

Reproduces the paper's methodology (Section 2.1): run the workload's
memory references through per-processor cache hierarchies under a MOSI
protocol and record every L2 miss as a coherence-request trace record.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List

from repro.common.params import SystemConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.reference import MemoryReference
from repro.coherence.state import GlobalCoherenceState
from repro.trace import columns as _columns
from repro.trace.trace import Trace


@dataclasses.dataclass
class CollectionResult:
    """Output of a trace-collection run."""

    trace: Trace
    instructions: Dict[int, int]
    references: int

    @property
    def total_instructions(self) -> int:
        """Instructions executed across all processors."""
        return sum(self.instructions.values())

    @property
    def misses_per_kilo_instruction(self) -> float:
        """L2 misses per 1,000 instructions (Table 2, column 6)."""
        total = self.total_instructions
        return 1000.0 * len(self.trace) / total if total else 0.0


class TraceCollector:
    """Filters memory references through caches into an L2 miss trace.

    A reference *hits* only when the block is resident in the issuing
    processor's hierarchy **and** the global MOSI state grants the
    required permission (any valid copy for loads; ownership for
    stores).  Everything else becomes a GETS/GETX coherence request.
    Stores to blocks held shared therefore produce GETX upgrades, and
    external GETX requests invalidate remote copies — the behaviours
    that create the cache-to-cache misses this paper studies.
    """

    def __init__(self, config: SystemConfig, name: str = ""):
        self._config = config
        self._name = name
        self._hierarchies: List[CacheHierarchy] = [
            CacheHierarchy(config) for _ in range(config.n_processors)
        ]
        self._global = GlobalCoherenceState(
            config.n_processors, config.block_size
        )
        self._trace = Trace(n_processors=config.n_processors, name=name)
        self._instructions: Dict[int, int] = {
            node: 0 for node in range(config.n_processors)
        }
        self._instructions_at_last_miss: Dict[int, int] = {
            node: 0 for node in range(config.n_processors)
        }
        self._references = 0
        # Native chunk-collector session (repro.kernels): created
        # lazily on the first chunk; False = probed and unavailable.
        self._kernel_session = None

    # ------------------------------------------------------------------
    @property
    def global_state(self) -> GlobalCoherenceState:
        """The live global MOSI state (useful for inspection/tests)."""
        self._flush_kernel()
        return self._global

    def hierarchy(self, node: int) -> CacheHierarchy:
        """The cache hierarchy of processor ``node``."""
        self._flush_kernel()
        return self._hierarchies[node]

    def _flush_kernel(self) -> None:
        # Sync native session state back before any Python-side API
        # observes (or mutates) the cache/MOSI/counter structures.
        session = self._kernel_session
        if session:
            session.flush()

    # ------------------------------------------------------------------
    def process(self, reference: MemoryReference) -> bool:
        """Process one reference.  Returns True if it missed."""
        self._flush_kernel()
        node = reference.node
        if not 0 <= node < self._config.n_processors:
            raise ValueError(
                f"node {node} outside [0, {self._config.n_processors})"
            )
        self._instructions[node] += reference.instructions
        self._references += 1

        hierarchy = self._hierarchies[node]
        owner, sharers = self._global.lookup_fast(reference.address)
        if reference.is_write:
            # Stores need *exclusive* ownership (M state): a write by
            # the owner while sharers hold S copies is an upgrade that
            # must issue a GETX and invalidate them.
            permitted = owner == node and not sharers
        else:
            permitted = owner == node or sharers >> node & 1

        if permitted and hierarchy.access(reference.address):
            return False

        self._record_miss(reference)
        return True

    def run(self, references: Iterable[MemoryReference]) -> CollectionResult:
        """Process a full reference stream and return the result."""
        for reference in references:
            self.process(reference)
        return self.result()

    def run_chunks(self, chunks) -> CollectionResult:
        """Process a stream of :class:`ReferenceChunk` columns.

        The chunk-consuming fast path: behaviourally identical to
        feeding the same references through :meth:`process` one at a
        time (the generation-equivalence suite asserts byte-identical
        traces), but with the cache/MOSI filtering inlined over flat
        set arrays, tag/set-index columns precomputed per chunk
        (vectorized under numpy), and misses appended to the trace in
        bulk.
        """
        for chunk in chunks:
            self.process_chunk(chunk)
        return self.result()

    def process_chunk(self, chunk) -> int:
        """Process one column chunk.  Returns the number of misses."""
        config = self._config
        n_procs = config.n_processors
        nodes = chunk.nodes
        length = len(nodes)
        if length == 0:
            return 0
        session = self._kernel_session
        if session is None:
            from repro import kernels

            session = kernels.collector_session(self)
            self._kernel_session = session if session else False
        if session:
            n_miss = session.process_chunk(chunk)
            if n_miss is not None:
                return n_miss
            # Envelope miss: the session flushed itself; fall through
            # to the Python loop for this chunk.
        if min(nodes) < 0 or max(nodes) >= n_procs:
            raise ValueError(
                f"chunk contains nodes outside [0, {n_procs})"
            )
        pcs = chunk.pcs
        writes = chunk.writes
        gaps = chunk.instructions

        block_size = config.block_size
        shift = block_size.bit_length() - 1
        mask = ~(block_size - 1)
        hierarchies = self._hierarchies
        l1_sets = [h.l1.raw_sets for h in hierarchies]
        l2_sets = [h.l2.raw_sets for h in hierarchies]
        n1 = hierarchies[0].l1.n_sets
        n2 = hierarchies[0].l2.n_sets
        l1_assoc = hierarchies[0].l1.associativity
        l2_assoc = hierarchies[0].l2.associativity

        np_ = _columns.numpy_module()
        addresses_np = getattr(chunk, "addresses_np", None)
        if np_ is not None and addresses_np is not None:
            blocks_np = addresses_np & np_.int64(mask)
            sets_np = blocks_np >> np_.int64(shift)
            blocks = blocks_np.tolist()
            l1_index = (sets_np % n1).tolist()
            l2_index = (sets_np % n2).tolist()
        else:
            blocks = [a & mask for a in chunk.addresses]
            l1_index = [(b >> shift) % n1 for b in blocks]
            l2_index = [(b >> shift) % n2 for b in blocks]

        executed = [self._instructions[node] for node in range(n_procs)]
        at_last_miss = [
            self._instructions_at_last_miss[node]
            for node in range(n_procs)
        ]
        state_blocks = self._global._blocks
        state_get = state_blocks.get

        out_blocks: List[int] = []
        out_pcs: List[int] = []
        out_nodes: List[int] = []
        out_codes: List[int] = []
        out_gaps: List[int] = []

        for i in range(length):
            node = nodes[i]
            executed[node] += gaps[i]
            block = blocks[i]
            is_write = writes[i]
            entry = state_get(block)
            owner, sharers = entry if entry is not None else (-1, 0)
            if is_write:
                permitted = owner == node and not sharers
            else:
                permitted = owner == node or sharers >> node & 1

            if permitted:
                l1_set = l1_sets[node][l1_index[i]]
                if block in l1_set:
                    l1_set.move_to_end(block)
                    l2_set = l2_sets[node][l2_index[i]]
                    if block in l2_set:
                        l2_set.move_to_end(block)
                    continue
                l2_set = l2_sets[node][l2_index[i]]
                if block in l2_set:
                    l2_set.move_to_end(block)
                    if len(l1_set) >= l1_assoc:
                        l1_set.popitem(last=False)
                    l1_set[block] = None
                    continue

            # -- miss: record, apply MOSI, invalidate, fill ----------
            done = executed[node]
            out_gaps.append(done - at_last_miss[node])
            at_last_miss[node] = done
            if owner >= 0 and owner != node:
                required = 1 << owner
            else:
                required = 0
            if is_write:
                required |= sharers & ~(1 << node)
                state_blocks[block] = (node, 0)
            elif owner != node:
                state_blocks[block] = (owner, sharers | 1 << node)
            out_blocks.append(block)
            out_pcs.append(pcs[i])
            out_nodes.append(node)
            out_codes.append(1 if is_write else 0)

            if is_write and required:
                l1_i = l1_index[i]
                l2_i = l2_index[i]
                remaining = required
                while remaining:
                    low = remaining & -remaining
                    victim_node = low.bit_length() - 1
                    victim_set = l1_sets[victim_node][l1_i]
                    if block in victim_set:
                        del victim_set[block]
                    victim_set = l2_sets[victim_node][l2_i]
                    if block in victim_set:
                        del victim_set[block]
                    remaining ^= low

            l2_set = l2_sets[node][l2_index[i]]
            if block in l2_set:
                l2_set.move_to_end(block)
            else:
                if len(l2_set) >= l2_assoc:
                    victim, _ = l2_set.popitem(last=False)
                    victim_l1 = l1_sets[node][(victim >> shift) % n1]
                    if victim in victim_l1:
                        del victim_l1[victim]
                    entry = state_get(victim)
                    if entry is not None:
                        victim_owner, victim_sharers = entry
                        if victim_owner == node:
                            state_blocks[victim] = (-1, victim_sharers)
                        elif victim_sharers >> node & 1:
                            state_blocks[victim] = (
                                victim_owner,
                                victim_sharers & ~(1 << node),
                            )
                l2_set[block] = None
            l1_set = l1_sets[node][l1_index[i]]
            if block in l1_set:
                l1_set.move_to_end(block)
            else:
                if len(l1_set) >= l1_assoc:
                    l1_set.popitem(last=False)
                l1_set[block] = None

        for node in range(n_procs):
            self._instructions[node] = executed[node]
            self._instructions_at_last_miss[node] = at_last_miss[node]
        self._references += length
        self._trace.extend_fields(
            out_blocks, out_pcs, out_nodes, out_codes, out_gaps
        )
        return len(out_blocks)

    def result(self) -> CollectionResult:
        """The trace and counters accumulated so far."""
        self._flush_kernel()
        return CollectionResult(
            trace=self._trace,
            instructions=dict(self._instructions),
            references=self._references,
        )

    # ------------------------------------------------------------------
    def _record_miss(self, reference: MemoryReference) -> None:
        is_write = reference.is_write
        block = reference.address & ~(self._config.block_size - 1)
        node = reference.node
        executed = self._instructions[node]
        gap = executed - self._instructions_at_last_miss[node]
        self._instructions_at_last_miss[node] = executed
        # Generator-side fast path: fields are produced by validated
        # machinery, so the trace columns are appended directly instead
        # of round-tripping through a checked TraceRecord.
        required = self._global.apply_fast(block, node, is_write)[3]
        self._trace.append_fields(
            block, reference.pc, node, 1 if is_write else 0, gap
        )

        if is_write and required:
            # Invalidate remote copies (owner and sharers lose them).
            hierarchies = self._hierarchies
            while required:
                low = required & -required
                hierarchies[low.bit_length() - 1].invalidate(block)
                required ^= low

        for victim in self._hierarchies[node].fill(block):
            self._global.evict(node, victim)
