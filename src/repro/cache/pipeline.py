"""The trace-collection pipeline: references in, L2 miss trace out.

Reproduces the paper's methodology (Section 2.1): run the workload's
memory references through per-processor cache hierarchies under a MOSI
protocol and record every L2 miss as a coherence-request trace record.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List

from repro.common.params import SystemConfig
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.reference import MemoryReference
from repro.coherence.state import GlobalCoherenceState
from repro.trace.trace import Trace


@dataclasses.dataclass
class CollectionResult:
    """Output of a trace-collection run."""

    trace: Trace
    instructions: Dict[int, int]
    references: int

    @property
    def total_instructions(self) -> int:
        """Instructions executed across all processors."""
        return sum(self.instructions.values())

    @property
    def misses_per_kilo_instruction(self) -> float:
        """L2 misses per 1,000 instructions (Table 2, column 6)."""
        total = self.total_instructions
        return 1000.0 * len(self.trace) / total if total else 0.0


class TraceCollector:
    """Filters memory references through caches into an L2 miss trace.

    A reference *hits* only when the block is resident in the issuing
    processor's hierarchy **and** the global MOSI state grants the
    required permission (any valid copy for loads; ownership for
    stores).  Everything else becomes a GETS/GETX coherence request.
    Stores to blocks held shared therefore produce GETX upgrades, and
    external GETX requests invalidate remote copies — the behaviours
    that create the cache-to-cache misses this paper studies.
    """

    def __init__(self, config: SystemConfig, name: str = ""):
        self._config = config
        self._name = name
        self._hierarchies: List[CacheHierarchy] = [
            CacheHierarchy(config) for _ in range(config.n_processors)
        ]
        self._global = GlobalCoherenceState(
            config.n_processors, config.block_size
        )
        self._trace = Trace(n_processors=config.n_processors, name=name)
        self._instructions: Dict[int, int] = {
            node: 0 for node in range(config.n_processors)
        }
        self._instructions_at_last_miss: Dict[int, int] = {
            node: 0 for node in range(config.n_processors)
        }
        self._references = 0

    # ------------------------------------------------------------------
    @property
    def global_state(self) -> GlobalCoherenceState:
        """The live global MOSI state (useful for inspection/tests)."""
        return self._global

    def hierarchy(self, node: int) -> CacheHierarchy:
        """The cache hierarchy of processor ``node``."""
        return self._hierarchies[node]

    # ------------------------------------------------------------------
    def process(self, reference: MemoryReference) -> bool:
        """Process one reference.  Returns True if it missed."""
        node = reference.node
        if not 0 <= node < self._config.n_processors:
            raise ValueError(
                f"node {node} outside [0, {self._config.n_processors})"
            )
        self._instructions[node] += reference.instructions
        self._references += 1

        hierarchy = self._hierarchies[node]
        owner, sharers = self._global.lookup_fast(reference.address)
        if reference.is_write:
            # Stores need *exclusive* ownership (M state): a write by
            # the owner while sharers hold S copies is an upgrade that
            # must issue a GETX and invalidate them.
            permitted = owner == node and not sharers
        else:
            permitted = owner == node or sharers >> node & 1

        if permitted and hierarchy.access(reference.address):
            return False

        self._record_miss(reference)
        return True

    def run(self, references: Iterable[MemoryReference]) -> CollectionResult:
        """Process a full reference stream and return the result."""
        for reference in references:
            self.process(reference)
        return self.result()

    def result(self) -> CollectionResult:
        """The trace and counters accumulated so far."""
        return CollectionResult(
            trace=self._trace,
            instructions=dict(self._instructions),
            references=self._references,
        )

    # ------------------------------------------------------------------
    def _record_miss(self, reference: MemoryReference) -> None:
        is_write = reference.is_write
        block = reference.address & ~(self._config.block_size - 1)
        node = reference.node
        executed = self._instructions[node]
        gap = executed - self._instructions_at_last_miss[node]
        self._instructions_at_last_miss[node] = executed
        # Generator-side fast path: fields are produced by validated
        # machinery, so the trace columns are appended directly instead
        # of round-tripping through a checked TraceRecord.
        required = self._global.apply_fast(block, node, is_write)[3]
        self._trace.append_fields(
            block, reference.pc, node, 1 if is_write else 0, gap
        )

        if is_write and required:
            # Invalidate remote copies (owner and sharers lose them).
            hierarchies = self._hierarchies
            while required:
                low = required & -required
                hierarchies[low.bit_length() - 1].invalidate(block)
                required ^= low

        for victim in self._hierarchies[node].fill(block):
            self._global.evict(node, victim)
