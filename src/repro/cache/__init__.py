"""Cache substrate: set-associative caches and the trace pipeline.

The paper collects traces of second-level cache misses from a 4 MB
4-way L2 behind 128 kB 4-way L1s (Table 4), under a MOSI protocol.
This subpackage provides the same machinery:

- :class:`SetAssociativeCache` — a tag store with LRU replacement.
- :class:`CacheHierarchy` — L1D + unified L2 for one processor.
- :class:`TraceCollector` — runs per-processor memory-reference
  streams through the hierarchies while maintaining the global MOSI
  state, producing the L2-miss coherence-request trace the rest of the
  system consumes.
"""

from repro.cache.reference import MemoryReference
from repro.cache.sets import SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.pipeline import CollectionResult, TraceCollector

__all__ = [
    "CacheHierarchy",
    "CollectionResult",
    "MemoryReference",
    "SetAssociativeCache",
    "TraceCollector",
]
