"""Per-processor L1/L2 cache hierarchy (inclusive)."""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import SystemConfig
from repro.common.types import Address
from repro.cache.sets import SetAssociativeCache


class CacheHierarchy:
    """An L1 data cache in front of a unified L2, kept inclusive.

    Only presence is modelled; coherence permission is the business of
    the global state tracker, which is consulted by the pipeline.  The
    hierarchy answers "would this reference reach the coherence layer?"
    — references that hit in L1 or L2 with a valid copy do not.
    """

    def __init__(self, config: SystemConfig):
        self._config = config
        self._l1 = SetAssociativeCache(
            config.l1d_size, config.l1d_assoc, config.block_size
        )
        self._l2 = SetAssociativeCache(
            config.l2_size, config.l2_assoc, config.block_size
        )

    # ------------------------------------------------------------------
    @property
    def l1(self) -> SetAssociativeCache:
        return self._l1

    @property
    def l2(self) -> SetAssociativeCache:
        return self._l2

    # ------------------------------------------------------------------
    def lookup(self, address: Address) -> bool:
        """True if the block is resident in L1 or L2 (no recency update)."""
        return self._l1.probe(address) or self._l2.probe(address)

    def access(self, address: Address) -> bool:
        """Reference the block, updating recency.  True on hit.

        L1 hits refresh L1 recency only; L2 hits refill L1 (modelling
        the normal fill path) and may evict an L1 block, which is
        harmless because the hierarchy is inclusive.
        """
        if self._l1.touch(address):
            self._l2.touch(address)
            return True
        if self._l2.touch(address):
            self._l1.insert(address)
            return True
        return False

    def fill(self, address: Address) -> List[Address]:
        """Install the block after a miss; return evicted L2 blocks.

        Inclusion is enforced: an L2 victim is also removed from L1.
        L1-only victims are not reported (they stay resident in L2 so
        the processor still holds a copy).
        """
        evicted: List[Address] = []
        l2_victim = self._l2.insert(address)
        if l2_victim is not None:
            self._l1.invalidate(l2_victim)
            evicted.append(l2_victim)
        self._l1.insert(address)
        return evicted

    def invalidate(self, address: Address) -> bool:
        """Drop the block from both levels (external invalidation)."""
        in_l1 = self._l1.invalidate(address)
        in_l2 = self._l2.invalidate(address)
        return in_l1 or in_l2
