"""A single processor memory reference (pre-cache-filtering)."""

from __future__ import annotations

import dataclasses

from repro.common.types import Address, NodeId


@dataclasses.dataclass(frozen=True)
class MemoryReference:
    """One load or store issued by a processor.

    Attributes:
        node: issuing processor.
        address: data address referenced.
        pc: program counter of the instruction.
        is_write: True for stores.
        instructions: instructions executed by ``node`` since its
            previous memory reference (used to compute misses per
            1,000 instructions for Table 2 and to pace the timing
            simulation).
    """

    node: NodeId
    address: Address
    pc: Address
    is_write: bool
    instructions: int = 1

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError("node must be non-negative")
        if self.address < 0 or self.pc < 0:
            raise ValueError("addresses must be non-negative")
        if self.instructions < 0:
            raise ValueError("instructions must be non-negative")
