"""Persistent on-disk trace cache.

The paper collects each workload trace once and reuses it for every
protocol/predictor experiment.  :class:`TraceCache` extends that reuse
across processes and runs: a collected trace is written to disk keyed
by a hash of everything that determines its content — workload name,
reference count, seed, the full :class:`SystemConfig`, and a format
version salted with the package version.  Any configuration change
produces a different key, so stale traces are never replayed.

:class:`PersistentTraceCorpus` layers the disk cache under the
in-memory :class:`~repro.evaluation.corpus.TraceCorpus`, so a sweep's
worker processes (and repeated invocations of ``repro sweep``) skip
trace regeneration entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import threading
from typing import Optional, Union

from repro.cache.pipeline import CollectionResult
from repro.common.atomicio import tmp_sibling, write_text_atomic
from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.corpus import TraceCorpus
from repro.trace.io import (
    read_trace,
    read_trace_binary,
    read_trace_v2,
    write_trace,
    write_trace_binary,
    write_trace_v2,
)

#: Bump when the on-disk layout or trace semantics change.
#: Format 2: traces come from the chunked (columnar) generation
#: engine, whose counter-based draw streams differ from the scalar
#: Mersenne-Twister path that produced format-1 entries.
CACHE_FORMAT = 2

#: Version salt baked into every trace key.  Historically this was the
#: package version, which invalidated the whole corpus on every
#: release even when trace generation was untouched; it is now pinned
#: at the last value that shipped that scheme and bumped — together
#: with :data:`CACHE_FORMAT` — only when generated trace content
#: actually changes.
TRACE_KEY_VERSION = "1.4.0"

#: ``SystemConfig`` fields that shape *timing* but never trace
#: content, excluded from trace keys: interconnect choice and hop
#: latency alter when transactions complete, not which references
#: miss.  (``link_bandwidth_bytes_per_ns`` is equally timing-only but
#: predates the split and stays in the key for backward
#: compatibility with existing corpora.)
_TIMING_ONLY_FIELDS = ("interconnect", "hop_latency_ns")

PathLike = Union[str, "os.PathLike[str]"]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def derived_config(config: SystemConfig) -> dict:
    """The v2 sidecar's persisted derived-column configuration.

    Derived replay columns are a pure function of the base columns
    plus these constants, so persisting them versions the *sidecar*,
    never the trace key (:data:`CACHE_FORMAT` stays put).  The index
    granularity is the paper's reference predictor indexing
    (:class:`PredictorConfig` default); sweeps that override it still
    load the v2 base columns zero-copy and recompute the index keys.
    """
    return {
        "block_size": config.block_size,
        "macroblock_size": config.macroblock_size,
        "n_processors": config.n_processors,
        "index_granularity": PredictorConfig().index_granularity,
    }


def default_cache_dir() -> pathlib.Path:
    """The trace-cache directory (``$REPRO_CACHE_DIR`` or ~/.cache)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg) if xdg else pathlib.Path.home() / ".cache"
    return base / "repro" / "traces"


@dataclasses.dataclass
class CacheStats:
    """Hit/miss counters for one cache instance."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        """Total load attempts."""
        return self.hits + self.misses

    def merge(self, other: "CacheStats") -> None:
        """Fold another instance's counters into this one."""
        self.hits += other.hits
        self.misses += other.misses

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses}

    def __str__(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es)"


class TraceCache:
    """Content-addressed trace storage under one directory.

    Each entry is a ``<key>.trace`` file in the standard text format
    plus a ``<key>.json`` sidecar holding the collection counters and
    the human-readable key fields (for inspection and debugging), a
    ``<key>.bin`` binary sidecar, and a ``<key>.bin2`` v2 columnar
    sidecar served zero-copy via ``mmap`` (the preferred load path;
    fallback chain ``.bin2 → .bin → .trace``, with missing sidecars
    healed on the next load).  Writes go through a temporary file and
    :func:`os.replace`, so concurrent workers storing the same key
    race benignly.

    ``derived`` configures which derived replay columns the v2
    sidecar persists (see :func:`derived_config`); None writes base
    columns only.
    """

    def __init__(self, root: PathLike, derived: Optional[dict] = None):
        self.root = pathlib.Path(root)
        self.derived = derived
        self.stats = CacheStats()
        # Threaded sweeps share one cache across cells; the counter
        # read-modify-writes below are not atomic once kernels drop
        # the GIL, so they serialize here.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    @staticmethod
    def key(
        workload: str,
        n_references: int,
        seed: int,
        config: SystemConfig,
    ) -> str:
        """Deterministic digest of everything that shapes the trace.

        Timing-only configuration (interconnect kind, hop latency) is
        excluded: traces record *which* references miss, not when the
        resulting transactions complete, so one cached trace serves
        every interconnect/bandwidth cell of a sweep — and keys minted
        before those fields existed still resolve.
        """
        system = dataclasses.asdict(config)
        for field in _TIMING_ONLY_FIELDS:
            system.pop(field, None)
        payload = json.dumps(
            {
                "format": CACHE_FORMAT,
                "version": TRACE_KEY_VERSION,
                "workload": workload,
                "n_references": n_references,
                "seed": seed,
                "system": system,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:24]

    def _paths(self, key: str) -> tuple:
        return (
            self.root / f"{key}.trace",
            self.root / f"{key}.json",
            self.root / f"{key}.bin",
            self.root / f"{key}.bin2",
        )

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[CollectionResult]:
        """The stored collection for ``key``, or None (counts stats)."""
        trace_path, meta_path, binary_path, v2_path = self._paths(key)
        try:
            meta = json.loads(meta_path.read_text(encoding="ascii"))
            # Fallback chain .bin2 → .bin → .trace: the v2 sidecar is
            # served zero-copy over mmap (same-host workers share the
            # page cache); the binary sidecar loads the columns
            # verbatim; the text format is the trusted last resort
            # (write_trace produced it).  A missing/torn sidecar is
            # healed from whichever slower tier succeeded, so the next
            # load takes the fast path again.
            try:
                trace = read_trace_v2(v2_path)
            except (OSError, ValueError):
                try:
                    trace = read_trace_binary(binary_path)
                except (OSError, ValueError):
                    trace = read_trace(trace_path, trusted=True)
                    self._heal_binary(trace, binary_path)
                self._heal_v2(trace, v2_path)
        except (OSError, ValueError, KeyError):
            with self._stats_lock:
                self.stats.misses += 1
            return None
        with self._stats_lock:
            self.stats.hits += 1
        return CollectionResult(
            trace=trace,
            instructions={
                int(node): count
                for node, count in meta["instructions"].items()
            },
            references=meta["references"],
        )

    def _heal_binary(self, trace, binary_path) -> None:
        """Best-effort rewrite of a missing/stale binary sidecar.

        Sidecars are derived data (e.g. not shipped with a committed
        corpus, or dropped by an old cache); the first text-format
        load regenerates one so subsequent loads take the fast path.
        """
        tmp = tmp_sibling(binary_path)
        try:
            write_trace_binary(trace, tmp)
            os.replace(tmp, binary_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _heal_v2(self, trace, v2_path) -> None:
        """Best-effort rewrite of a missing/stale/torn v2 sidecar."""
        tmp = tmp_sibling(v2_path)
        try:
            write_trace_v2(trace, tmp, self.derived)
            os.replace(tmp, v2_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def store(
        self,
        key: str,
        result: CollectionResult,
        describe: Optional[dict] = None,
    ) -> None:
        """Persist ``result`` under ``key`` (atomically)."""
        self.root.mkdir(parents=True, exist_ok=True)
        trace_path, meta_path, binary_path, v2_path = self._paths(key)
        meta = {
            "instructions": {
                str(node): count
                for node, count in result.instructions.items()
            },
            "references": result.references,
            "describe": describe or {},
        }
        tmp_trace = tmp_sibling(trace_path)
        tmp_binary = tmp_sibling(binary_path)
        tmp_v2 = tmp_sibling(v2_path)
        try:
            write_trace(result.trace, tmp_trace)
            write_trace_binary(result.trace, tmp_binary)
            write_trace_v2(result.trace, tmp_v2, self.derived)
            # Trace columns first: a reader needs trace + sidecar, and
            # load() opens the JSON sidecar before the trace files, so
            # a concurrent reader either misses (regenerates, benign)
            # or sees a complete entry — never a torn one.
            os.replace(tmp_v2, v2_path)
            os.replace(tmp_binary, binary_path)
            os.replace(tmp_trace, trace_path)
            write_text_atomic(meta_path, json.dumps(meta, sort_keys=True))
        finally:
            for leftover in (tmp_trace, tmp_binary, tmp_v2):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.iterdir():
                if path.suffix in (".trace", ".json", ".bin", ".bin2"):
                    path.unlink()
                    removed += 1
        return removed


class PersistentTraceCorpus(TraceCorpus):
    """A :class:`TraceCorpus` backed by an on-disk :class:`TraceCache`.

    In-memory memoization still applies within a process; on a memory
    miss the disk cache is consulted before the (expensive) workload
    model regenerates the trace.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        cache_dir: Optional[PathLike] = None,
    ):
        super().__init__(config)
        self.disk = TraceCache(
            cache_dir if cache_dir is not None else default_cache_dir(),
            derived=derived_config(self.config),
        )

    @property
    def cache_stats(self) -> CacheStats:
        """Disk-level hit/miss counters for this corpus."""
        return self.disk.stats

    def _generate(
        self, workload: str, n_references: int, seed: int
    ) -> CollectionResult:
        key = self.disk.key(workload, n_references, seed, self.config)
        cached = self.disk.load(key)
        if cached is not None:
            return cached
        result = super()._generate(workload, n_references, seed)
        self.disk.store(
            key,
            result,
            describe={
                "workload": workload,
                "n_references": n_references,
                "seed": seed,
            },
        )
        return result


def make_corpus(
    config: Optional[SystemConfig] = None,
    cache_dir: Optional[PathLike] = None,
) -> TraceCorpus:
    """A corpus with (``cache_dir`` set) or without disk persistence."""
    if cache_dir is None:
        return TraceCorpus(config)
    return PersistentTraceCorpus(config, cache_dir)
