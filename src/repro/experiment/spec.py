"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a frozen, JSON-serializable declaration
of a study: which workloads (and trace sizes/seeds), which protocols
and predictor policies, which configuration overrides, and which
metric kind to produce.  Every figure and table in the paper is a
cross-product of these axes; the spec makes that cross-product a
value that can be saved, diffed, and re-run.

Specs expand into independent :class:`Job` cells — one per
(workload, seed, configuration label) — which the
:mod:`repro.experiment.runner` executes serially or across processes.
Per-label cells keep the process pool saturated even for
single-workload sweeps (one Figure 5 panel is six independent cells);
the workers share one memoized trace per (workload, seed) through the
trace cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.common.params import PredictorConfig, SystemConfig
from repro.predictors.registry import PAPER_POLICIES, PREDICTOR_NAMES
from repro.timing.registry import resolve_interconnect
from repro.workloads.registry import WORKLOAD_NAMES

#: The metric kinds a spec can request, mapping to the paper's planes:
#: ``tradeoff`` — Figures 5/6 (indirections vs. request messages),
#: ``runtime`` — Figures 7/8 (normalized runtime vs. traffic), and
#: ``accuracy`` — per-policy destination-set coverage/precision.
EXPERIMENT_KINDS = ("tradeoff", "runtime", "accuracy")

#: Default trace length (references per workload) for sweeps.
DEFAULT_REFERENCES = 100_000


#: Baseline labels always evaluated by tradeoff/runtime sweeps.
BASELINE_LABELS = ("directory", "broadcast-snooping")

#: Default link-bandwidth points (bytes/ns == GB/s) for
#: :func:`bandwidth_sweep`: the paper's ample 10 GB/s down to links a
#: fortieth the size, where broadcast fan-out congests its own links.
DEFAULT_BANDWIDTHS = (10.0, 2.5, 1.0, 0.25)

#: Salt baked into every per-cell key (:meth:`ExperimentSpec.cell_key`).
#: Bump when the *meaning* of a cell's stored result changes — new
#: metrics, changed evaluation semantics — so fabric result stores
#: never serve stale artifacts across an upgrade.  Trace-content
#: versioning rides along separately (the key also folds in the trace
#: cache's format/version salts).
CELL_KEY_VERSION = 1


@dataclasses.dataclass(frozen=True)
class Job:
    """One independent cell of a spec's cross-product.

    ``label`` names the protocol configuration the cell evaluates: a
    baseline protocol (``"directory"``/``"broadcast-snooping"``) or a
    predictor policy run under multicast snooping.  ``bandwidth`` is
    the cell's link bandwidth override (bytes/ns) when the spec sweeps
    ``link_bandwidths``; ``None`` means the spec's ``system_config``
    value.
    """

    index: int
    workload: str
    seed: int
    label: str = ""
    bandwidth: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """Frozen declaration of one study over the design space.

    The cross-product of ``workloads`` × ``seeds`` (× each
    ``link_bandwidths`` point, when that timing axis is swept) becomes
    the job list; every job evaluates all ``policies`` (plus the
    directory and snooping baselines when ``include_baselines``) on
    its trace.
    """

    workloads: Tuple[str, ...]
    kind: str = "tradeoff"
    name: str = ""
    n_references: int = DEFAULT_REFERENCES
    seeds: Tuple[int, ...] = (42,)
    policies: Tuple[str, ...] = PAPER_POLICIES
    include_baselines: bool = True
    processor_model: str = "simple"
    max_outstanding: int = 4
    warmup_fraction: float = 0.25
    #: Link-bandwidth sweep axis (bytes/ns), ``kind="runtime"`` only.
    #: Empty means no sweep: every cell uses ``system_config``'s
    #: bandwidth.  Each point replaces
    #: ``system_config.link_bandwidth_bytes_per_ns`` for its cells;
    #: traces are shared across points (generation is timing-blind).
    link_bandwidths: Tuple[float, ...] = ()
    predictor_config: PredictorConfig = PredictorConfig()
    system_config: SystemConfig = SystemConfig()

    def __post_init__(self) -> None:
        # Normalize sequence fields so list-built specs compare equal
        # to tuple-built ones and hash/serialize canonically.
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "seeds", tuple(self.seeds))
        object.__setattr__(self, "policies", tuple(self.policies))
        object.__setattr__(
            self, "link_bandwidths", tuple(self.link_bandwidths)
        )
        if self.kind not in EXPERIMENT_KINDS:
            known = ", ".join(EXPERIMENT_KINDS)
            raise ValueError(f"unknown kind {self.kind!r}; known: {known}")
        if not self.workloads:
            raise ValueError("spec needs at least one workload")
        for workload in self.workloads:
            if workload not in WORKLOAD_NAMES:
                known = ", ".join(WORKLOAD_NAMES)
                raise ValueError(
                    f"unknown workload {workload!r}; known: {known}"
                )
        if not self.seeds:
            raise ValueError("spec needs at least one seed")
        for policy in self.policies:
            if policy not in PREDICTOR_NAMES:
                known = ", ".join(PREDICTOR_NAMES)
                raise ValueError(
                    f"unknown policy {policy!r}; known: {known}"
                )
        if self.n_references <= 0:
            raise ValueError("n_references must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.processor_model not in ("simple", "detailed"):
            raise ValueError("processor_model must be simple or detailed")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if self.link_bandwidths:
            if self.kind != "runtime":
                raise ValueError(
                    "link_bandwidths is a timing axis; it requires "
                    "kind='runtime' (message-count metrics are "
                    "bandwidth-independent)"
                )
            for bandwidth in self.link_bandwidths:
                if bandwidth <= 0:
                    raise ValueError("link bandwidths must be positive")
        # Fail on unknown interconnect kinds at spec construction
        # (same diagnostic the timing layer would raise much later).
        resolve_interconnect(self.system_config.interconnect)

    # ------------------------------------------------------------------
    def cell_labels(self) -> Tuple[str, ...]:
        """The configuration labels each (workload, seed) evaluates.

        Tradeoff sweeps honour ``include_baselines``; runtime sweeps
        always include both baselines because their metrics are
        normalized to them; accuracy scores only the policies.
        """
        if self.kind == "accuracy":
            return self.policies
        if self.kind == "runtime" or self.include_baselines:
            return BASELINE_LABELS + self.policies
        return self.policies

    def expand(self) -> Tuple[Job, ...]:
        """The independent jobs this spec describes, in canonical order.

        One job per (workload, seed[, bandwidth], label): the
        finest-grained cells that are still deterministic in
        isolation, so a parallel runner saturates its pool even on
        single-workload sweeps.
        """
        jobs = []
        bandwidths = self.link_bandwidths or (None,)
        for workload in self.workloads:
            for seed in self.seeds:
                for bandwidth in bandwidths:
                    for label in self.cell_labels():
                        jobs.append(
                            Job(len(jobs), workload, seed, label, bandwidth)
                        )
        return tuple(jobs)

    @property
    def n_jobs(self) -> int:
        """Number of independent jobs in the expansion."""
        return (
            len(self.workloads)
            * len(self.seeds)
            * max(1, len(self.link_bandwidths))
            * len(self.cell_labels())
        )

    def job_config(self, job: Job) -> SystemConfig:
        """The system configuration ``job``'s cell simulates.

        The spec's ``system_config`` with the job's bandwidth point
        substituted (identity for jobs outside a bandwidth sweep, so
        default-axis runs stay byte-identical to pre-axis ones).
        """
        if job.bandwidth is None:
            return self.system_config
        return dataclasses.replace(
            self.system_config, link_bandwidth_bytes_per_ns=job.bandwidth
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-compatible dictionary describing this spec."""
        data = dataclasses.asdict(self)
        data["workloads"] = list(self.workloads)
        data["seeds"] = list(self.seeds)
        data["policies"] = list(self.policies)
        data["link_bandwidths"] = list(self.link_bandwidths)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a (possibly partial) dictionary.

        The nested ``predictor_config`` and ``system_config`` mappings
        may name only the fields they override; the remainder keep the
        paper's defaults.  Unknown keys are an error, so typos in spec
        files fail loudly instead of silently sweeping the default.
        """
        fields = {f.name: f for f in dataclasses.fields(cls)}
        kwargs: Dict[str, Any] = {}
        for key, value in data.items():
            if key not in fields:
                known = ", ".join(sorted(fields))
                raise ValueError(f"unknown spec field {key!r}; known: {known}")
            if key == "predictor_config":
                value = _config_from_dict(PredictorConfig, value)
            elif key == "system_config":
                value = _config_from_dict(SystemConfig, value)
            elif key in ("workloads", "seeds", "policies",
                         "link_bandwidths"):
                value = tuple(value)
            kwargs[key] = value
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        """Canonical JSON text for this spec."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a spec from JSON text (inverse of :meth:`to_json`)."""
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Stable short hash of the spec's canonical JSON form."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:16]

    def cell_key(self, job: Job) -> str:
        """Content hash of one cell's *result*, stable across specs.

        Folds in everything that determines the cell's raw records —
        the job coordinates (workload, seed, label, bandwidth point)
        and every spec field that shapes evaluation (kind, trace size,
        warmup, processor model, configs) — and deliberately nothing
        else: the surrounding sweep's other workloads, seeds, and
        policies don't change this cell, so two overlapping specs
        share fabric result-store artifacts for their common cells.
        ``job.bandwidth`` enters the key on its own (not just folded
        into the config) because the stored records carry the sweep
        point verbatim, ``None`` included.
        """
        from repro.experiment.cache import CACHE_FORMAT, TRACE_KEY_VERSION

        payload = json.dumps(
            {
                "cell_version": CELL_KEY_VERSION,
                "trace_format": CACHE_FORMAT,
                "trace_version": TRACE_KEY_VERSION,
                "kind": self.kind,
                "workload": job.workload,
                "seed": job.seed,
                "label": job.label,
                "bandwidth": job.bandwidth,
                "n_references": self.n_references,
                "warmup_fraction": self.warmup_fraction,
                "processor_model": self.processor_model,
                "max_outstanding": self.max_outstanding,
                "predictor_config": dataclasses.asdict(
                    self.predictor_config
                ),
                "system_config": dataclasses.asdict(self.system_config),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("ascii")).hexdigest()[:24]


def bandwidth_sweep(
    workloads: Sequence[str],
    bandwidths: Sequence[float] = DEFAULT_BANDWIDTHS,
    **overrides: Any,
) -> ExperimentSpec:
    """A runtime spec sweeping link bandwidth as a first-class axis.

    Produces the paper's Figure 7/8 plane *per bandwidth point*: for
    each protocol configuration, a latency/bandwidth tradeoff curve
    instead of the single ample-bandwidth point the paper reports
    (its Section 5.3 notes the winner "depends upon ... the available
    interconnect bandwidth"; this is that dependency, measured).
    Additional :class:`ExperimentSpec` fields — ``policies``,
    ``seeds``, ``system_config`` (e.g. a ``tree`` interconnect), … —
    pass through ``overrides``.
    """
    overrides.setdefault("kind", "runtime")
    return ExperimentSpec(
        workloads=tuple(workloads),
        link_bandwidths=tuple(bandwidths),
        **overrides,
    )


def _config_from_dict(cls, value):
    """Rebuild a config dataclass from a (partial) mapping."""
    if isinstance(value, cls):
        return value
    if value is None:
        return cls()
    fields = {f.name for f in dataclasses.fields(cls)}
    unknown = set(value) - fields
    if unknown:
        known = ", ".join(sorted(fields))
        raise ValueError(
            f"unknown {cls.__name__} field(s) "
            f"{', '.join(sorted(map(repr, unknown)))}; known: {known}"
        )
    return cls(**value)
