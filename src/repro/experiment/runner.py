"""Spec execution: serial or process-parallel fan-out.

:class:`Runner` expands an :class:`ExperimentSpec` into independent
jobs (one per workload × seed cell) and executes them either in
process (``jobs=1`` — bit-identical to the historical hand-rolled
loops) or across a :class:`concurrent.futures.ProcessPoolExecutor`.
Both paths run the same :func:`execute_job` function, and results are
reassembled in canonical job order, so a parallel run produces a
:class:`ResultSet` equal to the serial one.

Workers share traces through the persistent on-disk cache when a
``cache_dir`` is configured; without one, each worker regenerates the
traces it needs (still deterministic, just slower).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.accuracy import prediction_accuracy
from repro.evaluation.corpus import TraceCorpus
from repro.evaluation.runtime import evaluate_runtime
from repro.evaluation.tradeoff import evaluate_design_space
from repro.experiment.cache import (
    CacheStats,
    PersistentTraceCorpus,
    make_corpus,
)
from repro.experiment.results import PerfStats, ResultRecord, ResultSet
from repro.experiment.spec import ExperimentSpec, Job

PathLike = Union[str, "os.PathLike[str]"]


def job_records_processed(spec: ExperimentSpec, trace_length: int) -> int:
    """Trace records replayed by one job (length × configurations).

    Each evaluated configuration replays the full trace (warmup plus
    measurement), so sweep throughput counts every replayed record.
    """
    n_configs = len(spec.policies)
    if spec.kind in ("tradeoff", "runtime") and spec.include_baselines:
        n_configs += 2
    return trace_length * n_configs


def execute_job(
    spec: ExperimentSpec, job: Job, corpus: TraceCorpus
) -> "Tuple[List[ResultRecord], int]":
    """Evaluate one (workload, seed) cell of ``spec``.

    This is the single execution path shared by the serial runner and
    the process-pool workers; determinism of the whole sweep reduces
    to determinism of this function.  Returns the cell's result records
    plus the number of trace records it replayed.
    """
    trace = corpus.trace(job.workload, spec.n_references, job.seed)
    records: List[ResultRecord] = []
    if spec.kind == "tradeoff":
        points = evaluate_design_space(
            trace,
            config=spec.system_config,
            predictors=spec.policies,
            predictor_config=spec.predictor_config,
            include_baselines=spec.include_baselines,
            warmup_fraction=spec.warmup_fraction,
        )
        for point in points:
            records.append(
                ResultRecord(
                    workload=job.workload,
                    seed=job.seed,
                    label=point.label,
                    metrics={
                        "indirection_pct": point.indirection_pct,
                        "request_messages_per_miss": (
                            point.request_messages_per_miss
                        ),
                        "traffic_bytes_per_miss": (
                            point.traffic_bytes_per_miss
                        ),
                        "average_latency_ns": point.average_latency_ns,
                        "misses": point.misses,
                        "retries": point.retries,
                    },
                )
            )
    elif spec.kind == "runtime":
        points = evaluate_runtime(
            trace,
            config=spec.system_config,
            predictors=spec.policies,
            predictor_config=spec.predictor_config,
            processor_model=spec.processor_model,
            max_outstanding=spec.max_outstanding,
            warmup_fraction=spec.warmup_fraction,
        )
        for point in points:
            records.append(
                ResultRecord(
                    workload=job.workload,
                    seed=job.seed,
                    label=point.label,
                    metrics={
                        "normalized_runtime": point.normalized_runtime,
                        "normalized_traffic_per_miss": (
                            point.normalized_traffic_per_miss
                        ),
                        "runtime_ns": point.runtime_ns,
                        "traffic_bytes_per_miss": (
                            point.traffic_bytes_per_miss
                        ),
                        "indirection_pct": point.indirection_pct,
                    },
                )
            )
    else:  # accuracy
        for policy in spec.policies:
            report = prediction_accuracy(
                trace,
                policy,
                config=spec.system_config,
                predictor_config=spec.predictor_config,
                warmup_fraction=spec.warmup_fraction,
            )
            records.append(
                ResultRecord(
                    workload=job.workload,
                    seed=job.seed,
                    label=policy,
                    metrics={
                        "coverage_pct": report.coverage_pct,
                        "precision_pct": report.precision_pct,
                        "predictions": report.predictions,
                        **{
                            f"{outcome.value}_pct": report.outcome_pct(
                                outcome
                            )
                            for outcome in report.outcomes
                        },
                    },
                )
            )
    return records, job_records_processed(spec, len(trace))


def _run_job_worker(
    spec_dict: dict, index: int, cache_dir: Optional[str]
) -> Tuple[int, List[dict], Dict[str, int], int]:
    """Process-pool entry point (module-level, hence picklable)."""
    spec = ExperimentSpec.from_dict(spec_dict)
    corpus = make_corpus(spec.system_config, cache_dir)
    records, processed = execute_job(spec, spec.expand()[index], corpus)
    stats = (
        corpus.cache_stats.to_dict()
        if isinstance(corpus, PersistentTraceCorpus)
        else {"hits": 0, "misses": 0}
    )
    return index, [r.to_dict() for r in records], stats, processed


class Runner:
    """Executes :class:`ExperimentSpec` instances.

    ``jobs=1`` runs everything in the calling process; ``jobs>1`` fans
    the spec's cells out over worker processes.  Pass ``cache_dir`` to
    persist (and reuse) collected traces on disk, or a pre-built
    ``corpus`` to share in-memory traces with other serial work.  An
    injected corpus is a single-process object, so it requires
    ``jobs=1``; multi-process runs share traces through ``cache_dir``.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[PathLike] = None,
        corpus: Optional[TraceCorpus] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_dir = (
            os.fspath(cache_dir) if cache_dir is not None else None
        )
        self.corpus = corpus

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> ResultSet:
        """Execute ``spec`` and return its :class:`ResultSet`."""
        jobs = spec.expand()
        if self.jobs == 1 or len(jobs) <= 1:
            return self._run_serial(spec, jobs)
        if self.corpus is not None:
            raise ValueError(
                "an injected corpus cannot be shared across worker "
                "processes; use cache_dir (or jobs=1) instead"
            )
        return self._run_parallel(spec, jobs)

    # ------------------------------------------------------------------
    def _make_corpus(self, spec: ExperimentSpec) -> TraceCorpus:
        if self.corpus is not None:
            return self.corpus
        return make_corpus(spec.system_config, self.cache_dir)

    def _run_serial(
        self, spec: ExperimentSpec, jobs: Tuple[Job, ...]
    ) -> ResultSet:
        corpus = self._make_corpus(spec)
        records: List[ResultRecord] = []
        processed = 0
        started = time.perf_counter()
        for job in jobs:
            job_records, job_processed = execute_job(spec, job, corpus)
            records.extend(job_records)
            processed += job_processed
        elapsed = time.perf_counter() - started
        stats = CacheStats()
        if isinstance(corpus, PersistentTraceCorpus):
            stats.merge(corpus.cache_stats)
        return ResultSet(
            spec, records, stats, PerfStats(processed, elapsed)
        )

    def _run_parallel(
        self, spec: ExperimentSpec, jobs: Tuple[Job, ...]
    ) -> ResultSet:
        spec_dict = spec.to_dict()
        by_index: Dict[int, List[ResultRecord]] = {}
        stats = CacheStats()
        processed = 0
        started = time.perf_counter()
        max_workers = min(self.jobs, len(jobs))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            futures = [
                pool.submit(
                    _run_job_worker, spec_dict, job.index, self.cache_dir
                )
                for job in jobs
            ]
            for future in concurrent.futures.as_completed(futures):
                index, record_dicts, worker_stats, job_processed = (
                    future.result()
                )
                by_index[index] = [
                    ResultRecord.from_dict(r) for r in record_dicts
                ]
                stats.merge(CacheStats(**worker_stats))
                processed += job_processed
        elapsed = time.perf_counter() - started
        records: List[ResultRecord] = []
        for job in jobs:  # reassemble in canonical order
            records.extend(by_index[job.index])
        return ResultSet(
            spec, records, stats, PerfStats(processed, elapsed)
        )


def run_experiment(
    spec: ExperimentSpec,
    jobs: int = 1,
    cache_dir: Optional[PathLike] = None,
) -> ResultSet:
    """One-call convenience wrapper around :class:`Runner`."""
    return Runner(jobs=jobs, cache_dir=cache_dir).run(spec)
