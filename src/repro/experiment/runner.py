"""Spec execution: serial, thread-parallel, or process-parallel fan-out.

:class:`Runner` expands an :class:`ExperimentSpec` into independent
jobs — one per (workload, seed, configuration label) cell — and
executes them in process (``jobs=1`` — bit-identical to the
historical hand-rolled loops), across a
:class:`concurrent.futures.ThreadPoolExecutor`
(``executor="threads"``), or across a
:class:`concurrent.futures.ProcessPoolExecutor`
(``executor="processes"``).  Every path runs the same
:func:`execute_job` function, and results are reassembled in
canonical job order, so a parallel run produces a :class:`ResultSet`
equal to the serial one.

Threads vs processes: the native kernels release the GIL around their
compute phases, so with the native backend active threaded cells run
concurrently on one shared in-memory :class:`TraceCorpus` — zero
pickling, zero per-cell disk loads — and ``executor=None`` resolves
to threads in that case.  The pure/numpy tiers hold the GIL for the
whole replay, so they default to the process pool, which shares
traces through the on-disk cache instead (a warm phase generates one
task per unique (workload, seed), then the label cells load the
memoized trace).  Runtime sweeps evaluate raw per-label results in
the cells and normalize (directory=100, snooping=100) during
reassembly.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import shutil
import tempfile
import time
import traceback as traceback_module
from typing import Dict, List, Optional, Tuple, Union

from repro import kernels as _kernels
from repro.analysis.accuracy import prediction_accuracy
from repro.common import backend as _backend
from repro.evaluation.corpus import TraceCorpus
from repro.evaluation.runtime import (
    evaluate_runtime_raw,
    make_protocol,
    normalized_runtime_metrics,
)
from repro.evaluation.tradeoff import evaluate_protocol
from repro.experiment.cache import (
    CacheStats,
    PersistentTraceCorpus,
    make_corpus,
)
from repro.experiment.results import (
    CellFailure,
    PerfStats,
    ResultRecord,
    ResultSet,
)
from repro.experiment.spec import ExperimentSpec, Job

PathLike = Union[str, "os.PathLike[str]"]


def default_jobs() -> int:
    """The adaptive worker count used when ``jobs`` is ``None``.

    One worker per CPU core *available to this process* — the
    scheduling affinity where the platform reports it (so cgroup- or
    ``taskset``-restricted environments are not oversubscribed),
    falling back to ``os.cpu_count()``.  Single-core boxes (and
    platforms where the count is unknown) resolve to the serial
    runner.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - platform specific
            pass
    return max(1, os.cpu_count() or 1)


def execute_job(
    spec: ExperimentSpec, job: Job, corpus: TraceCorpus
) -> "Tuple[List[ResultRecord], int]":
    """Evaluate one (workload, seed, label) cell of ``spec``.

    This is the single execution path shared by the serial runner and
    the process-pool workers; determinism of the whole sweep reduces
    to determinism of this function.  Returns the cell's result
    records plus the number of trace records it replayed.  Runtime
    cells return *raw* metrics; the runner normalizes each
    (workload, seed) group once all of its cells are in.
    """
    trace = corpus.trace(job.workload, spec.n_references, job.seed)
    label = job.label
    records: List[ResultRecord] = []
    if spec.kind == "tradeoff":
        protocol = make_protocol(
            label, spec.system_config, spec.predictor_config
        )
        point = evaluate_protocol(
            protocol,
            trace,
            label=label,
            warmup_fraction=spec.warmup_fraction,
        )
        records.append(
            ResultRecord(
                workload=job.workload,
                seed=job.seed,
                label=label,
                metrics={
                    "indirection_pct": point.indirection_pct,
                    "request_messages_per_miss": (
                        point.request_messages_per_miss
                    ),
                    "traffic_bytes_per_miss": point.traffic_bytes_per_miss,
                    "average_latency_ns": point.average_latency_ns,
                    "misses": point.misses,
                    "retries": point.retries,
                },
            )
        )
    elif spec.kind == "runtime":
        # Timing cells honour the job's bandwidth point (identity
        # outside a bandwidth sweep); the trace above is always loaded
        # under the spec's base config, because trace generation is
        # timing-blind — every bandwidth cell shares one trace.
        result = evaluate_runtime_raw(
            trace,
            label,
            config=spec.job_config(job),
            predictor_config=spec.predictor_config,
            processor_model=spec.processor_model,
            max_outstanding=spec.max_outstanding,
            warmup_fraction=spec.warmup_fraction,
        )
        records.append(
            ResultRecord(
                workload=job.workload,
                seed=job.seed,
                label=label,
                bandwidth=job.bandwidth,
                metrics={
                    "runtime_ns": result.runtime_ns,
                    "traffic_bytes_per_miss": (
                        result.traffic_bytes_per_miss
                    ),
                    "indirection_pct": result.indirection_pct,
                    "queue_ns_per_miss": result.queue_ns_per_miss,
                },
            )
        )
    else:  # accuracy
        report = prediction_accuracy(
            trace,
            label,
            config=spec.system_config,
            predictor_config=spec.predictor_config,
            warmup_fraction=spec.warmup_fraction,
        )
        records.append(
            ResultRecord(
                workload=job.workload,
                seed=job.seed,
                label=label,
                metrics={
                    "coverage_pct": report.coverage_pct,
                    "precision_pct": report.precision_pct,
                    "predictions": report.predictions,
                    **{
                        f"{outcome.value}_pct": report.outcome_pct(outcome)
                        for outcome in report.outcomes
                    },
                },
            )
        )
    return records, len(trace)


def run_cell(
    spec: ExperimentSpec, job: Job, corpus: TraceCorpus
) -> "Tuple[List[ResultRecord], int, Optional[CellFailure]]":
    """:func:`execute_job` with the runner's graceful-failure contract.

    A cell that raises is retried once (transient trouble — a racing
    cache writer, a flaky mount — usually clears); a second failure
    is converted into a :class:`CellFailure` carrying the traceback,
    so one bad cell no longer aborts a whole sweep mid-pool.
    """
    failure: Optional[CellFailure] = None
    for attempt in (1, 2):
        try:
            records, processed = execute_job(spec, job, corpus)
            return records, processed, None
        except Exception as exc:  # noqa: BLE001 - reported, not hidden
            failure = CellFailure(
                workload=job.workload,
                seed=job.seed,
                label=job.label,
                bandwidth=job.bandwidth,
                error=f"{type(exc).__name__}: {exc}",
                traceback=traceback_module.format_exc(),
                attempts=attempt,
            )
    return [], 0, failure


def _normalize_runtime_records(
    spec: ExperimentSpec, records: List[ResultRecord]
) -> List[ResultRecord]:
    """Normalize raw runtime cells per (workload, seed, bandwidth).

    Applies :func:`repro.evaluation.runtime.normalized_runtime_metrics`
    (the same formulas :func:`normalize_runtime_points` uses):
    runtime normalized to directory=100, traffic per miss to
    broadcast-snooping=100.  Bandwidth-sweep cells normalize against
    the baselines *at their own bandwidth point*, so each point of a
    curve answers "who wins at this link size".
    """
    if spec.kind != "runtime":
        return records
    Key = Tuple[str, int, Optional[float]]
    baselines: Dict[Key, Tuple[float, float]] = {}
    for record in records:
        cell = (record.workload, record.seed, record.bandwidth)
        if record.label == "directory":
            runtime = record["runtime_ns"]
            baselines[cell] = (
                runtime, baselines.get(cell, (0.0, 0.0))[1]
            )
        elif record.label == "broadcast-snooping":
            traffic = record["traffic_bytes_per_miss"]
            baselines[cell] = (
                baselines.get(cell, (0.0, 0.0))[0], traffic
            )
    normalized = []
    for record in records:
        # A failed baseline cell leaves its group without a reference
        # point; the group's records then normalize to 0.0 (the
        # helper's "no baseline" convention) instead of crashing the
        # reassembly of every other cell.
        directory_runtime, snooping_traffic = baselines.get(
            (record.workload, record.seed, record.bandwidth), (0.0, 0.0)
        )
        metrics = record.metrics
        normalized_runtime, normalized_traffic = (
            normalized_runtime_metrics(
                metrics["runtime_ns"],
                metrics["traffic_bytes_per_miss"],
                directory_runtime,
                snooping_traffic,
            )
        )
        normalized.append(
            ResultRecord(
                workload=record.workload,
                seed=record.seed,
                label=record.label,
                bandwidth=record.bandwidth,
                metrics={
                    "normalized_runtime": normalized_runtime,
                    "normalized_traffic_per_miss": normalized_traffic,
                    "runtime_ns": metrics["runtime_ns"],
                    "traffic_bytes_per_miss": (
                        metrics["traffic_bytes_per_miss"]
                    ),
                    "indirection_pct": metrics["indirection_pct"],
                    "queue_ns_per_miss": metrics["queue_ns_per_miss"],
                },
            )
        )
    return normalized


def normalize_records(
    spec: ExperimentSpec, records: List[ResultRecord]
) -> List[ResultRecord]:
    """Public reassembly hook: canonical-order records → final records.

    The runner and the distributed fabric share this one path, so a
    sweep reassembled from fabric result-store artifacts is
    byte-identical to a serial in-process run of the same spec.
    """
    return _normalize_runtime_records(spec, records)


def _run_job_worker(
    spec_dict: dict, index: int, cache_dir: Optional[str]
) -> Tuple[int, List[dict], int, Optional[dict]]:
    """Process-pool entry point (module-level, hence picklable)."""
    spec = ExperimentSpec.from_dict(spec_dict)
    corpus = make_corpus(spec.system_config, cache_dir)
    records, processed, failure = run_cell(
        spec, spec.expand()[index], corpus
    )
    return (
        index,
        [r.to_dict() for r in records],
        processed,
        dataclasses.asdict(failure) if failure is not None else None,
    )


def _warm_trace_worker(
    spec_dict: dict, workload: str, seed: int, cache_dir: str
) -> Dict[str, int]:
    """Ensure one (workload, seed) trace is in the disk cache.

    A generation failure here is swallowed: the label cells that need
    the trace will hit the same error and report it through the
    graceful per-cell path, instead of the warm phase aborting the
    pool before any cell has run.
    """
    spec = ExperimentSpec.from_dict(spec_dict)
    corpus = make_corpus(spec.system_config, cache_dir)
    try:
        corpus.trace(workload, spec.n_references, seed)
    except Exception:  # noqa: BLE001 - the cells re-raise and report
        pass
    assert isinstance(corpus, PersistentTraceCorpus)
    return corpus.cache_stats.to_dict()


class Runner:
    """Executes :class:`ExperimentSpec` instances.

    ``jobs=1`` runs everything in the calling process; ``jobs>1`` fans
    the spec's per-label cells out over workers; ``jobs=None``
    resolves adaptively to one worker per CPU core
    (:func:`default_jobs`).

    ``executor`` picks the worker kind: ``"threads"`` shares one
    in-memory :class:`TraceCorpus` across a thread pool (scales only
    when the native backend is active — its kernels release the GIL
    around compute), ``"processes"`` is the historical process pool,
    and ``None`` resolves to threads when the native backend is
    active and to processes otherwise.

    Pass ``cache_dir`` to persist (and reuse) collected traces on
    disk, or a pre-built ``corpus`` to share in-memory traces with
    other work.  An injected corpus is a single-process object: the
    thread executor shares it directly, while the process executor
    rejects it — multi-process runs share traces through ``cache_dir``
    (an ephemeral directory is used when none is configured, so traces
    are still generated only once per run).
    """

    def __init__(
        self,
        jobs: Optional[int] = 1,
        cache_dir: Optional[PathLike] = None,
        corpus: Optional[TraceCorpus] = None,
        executor: Optional[str] = None,
    ):
        if jobs is None:
            jobs = default_jobs()
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if executor not in (None, "auto", "threads", "processes"):
            raise ValueError(
                "executor must be 'threads', 'processes', or None"
            )
        self.jobs = jobs
        self.cache_dir = (
            os.fspath(cache_dir) if cache_dir is not None else None
        )
        self.corpus = corpus
        self.executor = None if executor == "auto" else executor

    # ------------------------------------------------------------------
    def resolved_executor(self) -> str:
        """The worker kind ``run`` will use when ``jobs > 1``."""
        if self.executor is not None:
            return self.executor
        return "threads" if _backend.native_active() else "processes"

    def run(self, spec: ExperimentSpec) -> ResultSet:
        """Execute ``spec`` and return its :class:`ResultSet`."""
        jobs = spec.expand()
        if self.jobs == 1 or len(jobs) <= 1:
            return self._run_serial(spec, jobs)
        if self.resolved_executor() == "threads":
            return self._run_threads(spec, jobs)
        if self.corpus is not None:
            raise ValueError(
                "an injected corpus cannot be shared across worker "
                "processes; use cache_dir, jobs=1, or "
                "executor='threads' instead"
            )
        return self._run_parallel(spec, jobs)

    # ------------------------------------------------------------------
    def _make_corpus(self, spec: ExperimentSpec) -> TraceCorpus:
        if self.corpus is not None:
            return self.corpus
        return make_corpus(spec.system_config, self.cache_dir)

    def _run_serial(
        self, spec: ExperimentSpec, jobs: Tuple[Job, ...]
    ) -> ResultSet:
        corpus = self._make_corpus(spec)
        records: List[ResultRecord] = []
        failures: List[CellFailure] = []
        processed = 0
        started = time.perf_counter()
        _kernels.reset_decline_counts()
        for job in jobs:
            job_records, job_processed, failure = run_cell(
                spec, job, corpus
            )
            records.extend(job_records)
            processed += job_processed
            if failure is not None:
                failures.append(failure)
        records = _normalize_runtime_records(spec, records)
        elapsed = time.perf_counter() - started
        stats = CacheStats()
        if isinstance(corpus, PersistentTraceCorpus):
            stats.merge(corpus.cache_stats)
        return ResultSet(
            spec, records, stats,
            PerfStats(
                processed, elapsed, _backend.backend_name(),
                _kernels.decline_counts(),
            ),
            failures=failures,
        )

    def _run_threads(
        self, spec: ExperimentSpec, jobs: Tuple[Job, ...]
    ) -> ResultSet:
        """Fan cells out over threads sharing one in-memory corpus.

        Every thread replays against the same :class:`TraceCorpus`
        object — no pickling, no per-cell disk loads.  Generate-once
        is enforced by the corpus' per-key locks; a warm phase still
        submits one task per unique (workload, seed) first so
        distinct traces generate concurrently instead of the label
        cells serializing behind whichever generation a thread picked
        up first.  Reassembly is in canonical job order, so the
        result set equals the serial one byte for byte.
        """
        corpus = self._make_corpus(spec)
        by_index: Dict[int, List[ResultRecord]] = {}
        failures_by_index: Dict[int, CellFailure] = {}
        processed = 0
        started = time.perf_counter()
        _kernels.reset_decline_counts()
        cells = []  # unique (workload, seed), canonical order
        for job in jobs:
            if (job.workload, job.seed) not in cells:
                cells.append((job.workload, job.seed))

        def warm(workload: str, seed: int) -> None:
            # Generation failures surface through the per-cell path.
            try:
                corpus.trace(workload, spec.n_references, seed)
            except Exception:  # noqa: BLE001 - the cells re-raise
                pass

        max_workers = min(self.jobs, len(jobs))
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers
        ) as pool:
            warm_futures = [
                pool.submit(warm, workload, seed)
                for workload, seed in cells
            ]
            concurrent.futures.wait(warm_futures)
            futures = {
                pool.submit(run_cell, spec, job, corpus): job.index
                for job in jobs
            }
            for future in concurrent.futures.as_completed(futures):
                index = futures[future]
                job_records, job_processed, failure = future.result()
                by_index[index] = job_records
                if failure is not None:
                    failures_by_index[index] = failure
                processed += job_processed
        elapsed = time.perf_counter() - started
        records: List[ResultRecord] = []
        failures: List[CellFailure] = []
        for job in jobs:  # reassemble in canonical order
            records.extend(by_index[job.index])
            if job.index in failures_by_index:
                failures.append(failures_by_index[job.index])
        records = _normalize_runtime_records(spec, records)
        stats = CacheStats()
        if isinstance(corpus, PersistentTraceCorpus):
            stats.merge(corpus.cache_stats)
        # Threads share the process-wide decline tally (now
        # lock-guarded), so unlike the process pool this parallel
        # path reports native declines exactly like the serial one.
        return ResultSet(
            spec, records, stats,
            PerfStats(
                processed, elapsed, _backend.backend_name(),
                _kernels.decline_counts(),
            ),
            failures=failures,
        )

    def _run_parallel(
        self, spec: ExperimentSpec, jobs: Tuple[Job, ...]
    ) -> ResultSet:
        if self.cache_dir is not None:
            return self._run_parallel_cached(spec, jobs, self.cache_dir)
        # No configured cache: share traces through an ephemeral
        # directory so per-label cells never regenerate them, while
        # reporting zero cache traffic (the user asked for no cache).
        scratch = tempfile.mkdtemp(prefix="repro-run-")
        try:
            results = self._run_parallel_cached(spec, jobs, scratch)
            results.cache_stats = CacheStats()
            return results
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    def _run_parallel_cached(
        self, spec: ExperimentSpec, jobs: Tuple[Job, ...], cache_dir: str
    ) -> ResultSet:
        spec_dict = spec.to_dict()
        by_index: Dict[int, List[ResultRecord]] = {}
        failures_by_index: Dict[int, CellFailure] = {}
        stats = CacheStats()
        processed = 0
        started = time.perf_counter()
        cells = []  # unique (workload, seed), canonical order
        for job in jobs:
            if (job.workload, job.seed) not in cells:
                cells.append((job.workload, job.seed))
        max_workers = min(self.jobs, len(jobs))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            # Phase 1: one warm task per unique trace, so label cells
            # share memoized generation instead of racing to collect.
            warm = [
                pool.submit(
                    _warm_trace_worker, spec_dict, workload, seed,
                    cache_dir,
                )
                for workload, seed in cells
            ]
            for future in concurrent.futures.as_completed(warm):
                stats.merge(CacheStats(**future.result()))
            # Phase 2: the per-label cells (cache hits by now).
            futures = [
                pool.submit(
                    _run_job_worker, spec_dict, job.index, cache_dir
                )
                for job in jobs
            ]
            for future in concurrent.futures.as_completed(futures):
                index, record_dicts, job_processed, failure = (
                    future.result()
                )
                by_index[index] = [
                    ResultRecord.from_dict(r) for r in record_dicts
                ]
                if failure is not None:
                    failures_by_index[index] = CellFailure(**failure)
                processed += job_processed
        elapsed = time.perf_counter() - started
        records: List[ResultRecord] = []
        failures: List[CellFailure] = []
        for job in jobs:  # reassemble in canonical order
            records.extend(by_index[job.index])
            if job.index in failures_by_index:
                failures.append(failures_by_index[job.index])
        records = _normalize_runtime_records(spec, records)
        # Worker processes keep their own decline tallies; only the
        # serial path can report them (PerfStats.native_declines stays
        # empty here by design).
        return ResultSet(
            spec, records, stats, PerfStats(processed, elapsed, _backend.backend_name()),
            failures=failures,
        )


def run_experiment(
    spec: ExperimentSpec,
    jobs: Optional[int] = 1,
    cache_dir: Optional[PathLike] = None,
    executor: Optional[str] = None,
) -> ResultSet:
    """One-call convenience wrapper around :class:`Runner`.

    ``jobs=None`` resolves to :func:`default_jobs` (one worker per
    CPU core); ``executor`` as on :class:`Runner`.
    """
    return Runner(
        jobs=jobs, cache_dir=cache_dir, executor=executor
    ).run(spec)
