"""Structured sweep results.

A :class:`ResultSet` holds one record per evaluated configuration —
(workload, seed, label) plus a flat metrics mapping — together with
the spec that produced it and the trace-cache statistics of the run.
It renders as a tidy table, exports to JSON/CSV, round-trips through
JSON, and converts back to the evaluation layer's point dataclasses
for the existing ASCII plots.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import os
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.evaluation.report import format_table
from repro.evaluation.runtime import RuntimePoint
from repro.evaluation.tradeoff import TradeoffPoint
from repro.experiment.cache import CacheStats
from repro.experiment.spec import ExperimentSpec

PathLike = Union[str, "os.PathLike[str]"]

#: Serialization format version for saved result files.
RESULTS_FORMAT = 1


@dataclasses.dataclass
class PerfStats:
    """Observed throughput of one sweep execution.

    Deliberately *excluded* from serialization and equality: two runs
    of the same spec produce equal result sets regardless of how fast
    they ran (or whether the trace cache was warm).
    """

    records_processed: int = 0
    wall_seconds: float = 0.0
    #: Unified simulation backend the sweep executed under
    #: (``pure``/``numpy``/``native``; see :mod:`repro.common.backend`).
    backend: str = ""
    #: Native-kernel declines observed during the run, keyed
    #: ``"<kernel>:<reason>"`` (see
    #: :func:`repro.kernels.decline_counts`).  Empty on the Python
    #: backends, and for parallel sweeps (workers count in their own
    #: processes).  A nonzero tally explains a native run executing at
    #: Python-tier speed.
    native_declines: Dict[str, int] = dataclasses.field(
        default_factory=dict
    )

    @property
    def records_per_sec(self) -> float:
        """Trace records replayed per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.records_processed / self.wall_seconds

    def __str__(self) -> str:
        suffix = f", {self.backend} backend" if self.backend else ""
        text = (
            f"{self.records_processed:,} records in "
            f"{self.wall_seconds:.2f}s "
            f"({self.records_per_sec:,.0f} records/sec{suffix})"
        )
        if self.native_declines:
            tallies = ", ".join(
                f"{key} x{count}"
                for key, count in sorted(self.native_declines.items())
            )
            text += f"\nnative kernel declines: {tallies}"
        return text


@dataclasses.dataclass(frozen=True)
class CellFailure:
    """One sweep cell that exhausted its retries.

    Like :class:`PerfStats`, failures are run metadata, not results:
    they are excluded from serialization and equality, and a rerun
    that succeeds produces a result set equal to one that never
    failed.  ``error`` is the final exception's one-line description;
    ``traceback`` the full formatted traceback (empty when the
    executing worker only reported a message, e.g. across the fabric).
    """

    workload: str
    seed: int
    label: str
    error: str
    bandwidth: Optional[float] = None
    traceback: str = ""
    attempts: int = 1

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "workload": self.workload,
            "seed": self.seed,
            "label": self.label,
            "error": self.error,
            "attempts": self.attempts,
        }
        if self.bandwidth is not None:
            data["bandwidth"] = self.bandwidth
        if self.traceback:
            data["traceback"] = self.traceback
        return data

    def __str__(self) -> str:
        point = (
            f" @{self.bandwidth:g}GB/s" if self.bandwidth is not None
            else ""
        )
        return (
            f"{self.workload}/seed={self.seed}/{self.label}{point}: "
            f"{self.error} (after {self.attempts} attempt(s))"
        )


@dataclasses.dataclass(frozen=True)
class ResultRecord:
    """One evaluated configuration's metrics.

    ``bandwidth`` is the cell's link-bandwidth point (bytes/ns) when
    the producing spec swept ``link_bandwidths``; ``None`` — and
    absent from the serialized form, keeping pre-axis result files
    byte-stable — otherwise.
    """

    workload: str
    seed: int
    label: str
    metrics: Mapping[str, float]
    bandwidth: Optional[float] = None

    def __post_init__(self) -> None:
        # Freeze the mapping's canonical form so records compare and
        # serialize deterministically.
        object.__setattr__(self, "metrics", dict(self.metrics))

    def __getitem__(self, metric: str) -> float:
        return self.metrics[metric]

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "workload": self.workload,
            "seed": self.seed,
            "label": self.label,
            "metrics": dict(self.metrics),
        }
        if self.bandwidth is not None:
            data["bandwidth"] = self.bandwidth
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultRecord":
        return cls(
            workload=data["workload"],
            seed=data["seed"],
            label=data["label"],
            metrics=data["metrics"],
            bandwidth=data.get("bandwidth"),
        )


class ResultSet:
    """The outcome of running one :class:`ExperimentSpec`."""

    def __init__(
        self,
        spec: ExperimentSpec,
        records: Sequence[ResultRecord],
        cache_stats: Optional[CacheStats] = None,
        perf: Optional[PerfStats] = None,
        failures: Optional[Sequence[CellFailure]] = None,
    ):
        self.spec = spec
        self.records: List[ResultRecord] = list(records)
        self.cache_stats = (
            cache_stats if cache_stats is not None else CacheStats()
        )
        #: Throughput of the run that produced this set (not serialized;
        #: see :class:`PerfStats`).
        self.perf = perf if perf is not None else PerfStats()
        #: Cells that exhausted their retries this run — their records
        #: are absent above.  Run metadata like ``perf``: excluded
        #: from serialization and equality.
        self.failures: List[CellFailure] = list(failures or ())

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __eq__(self, other: object) -> bool:
        """Equality of results: same spec, same records.

        Cache statistics are deliberately excluded — a warm-cache rerun
        of the same spec produces an *equal* result set.
        """
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.spec == other.spec and self.records == other.records

    def __repr__(self) -> str:
        failed = (
            f", failures={len(self.failures)}" if self.failures else ""
        )
        return (
            f"ResultSet(kind={self.spec.kind!r}, "
            f"records={len(self.records)}, cache={self.cache_stats}"
            f"{failed})"
        )

    # ------------------------------------------------------------------
    def labels(self) -> List[str]:
        """Distinct configuration labels, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.label)
        return list(seen)

    def for_workload(self, workload: str) -> List[ResultRecord]:
        """Records for one workload (all seeds/labels)."""
        return [r for r in self.records if r.workload == workload]

    def metric_names(self) -> List[str]:
        """Union of metric keys across records, in first-seen order."""
        names: Dict[str, None] = {}
        for record in self.records:
            for key in record.metrics:
                names.setdefault(key)
        return list(names)

    def has_bandwidth_axis(self) -> bool:
        """True when any record carries a bandwidth-sweep point."""
        return any(r.bandwidth is not None for r in self.records)

    def rows(self) -> List[Dict[str, Any]]:
        """Tidy-table rows: one flat dict per record.

        Bandwidth-sweep records contribute a ``bandwidth`` column;
        result sets without the axis keep the pre-axis row shape.
        """
        rows = []
        for r in self.records:
            row: Dict[str, Any] = {
                "workload": r.workload,
                "seed": r.seed,
                "label": r.label,
            }
            if r.bandwidth is not None:
                row["bandwidth"] = r.bandwidth
            row.update(r.metrics)
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    def table(self) -> str:
        """An aligned plain-text table of all records."""
        metrics = self.metric_names()
        with_bandwidth = self.has_bandwidth_axis()
        headers = ["workload", "seed", "config", *metrics]
        if with_bandwidth:
            headers.insert(3, "bandwidth")
        body = []
        for record in self.records:
            row = [record.workload, record.seed, record.label]
            if with_bandwidth:
                bandwidth = record.bandwidth
                row.append("" if bandwidth is None else f"{bandwidth:g}")
            for name in metrics:
                value = record.metrics.get(name, "")
                if isinstance(value, float):
                    value = f"{value:.2f}"
                row.append(value)
            body.append(row)
        return format_table(headers, body)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": RESULTS_FORMAT,
            "spec": self.spec.to_dict(),
            "records": [r.to_dict() for r in self.records],
            "cache": self.cache_stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultSet":
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            records=[
                ResultRecord.from_dict(r) for r in data["records"]
            ],
            cache_stats=CacheStats(**data.get("cache", {})),
        )

    def to_json(self, path: Optional[PathLike] = None, indent: int = 2) -> str:
        """JSON text of this result set; also written to ``path`` if given."""
        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            with open(path, "w", encoding="ascii") as handle:
                handle.write(text + "\n")
        return text

    @classmethod
    def from_json(cls, source: Union[str, PathLike]) -> "ResultSet":
        """Load a result set from JSON text or a saved file path."""
        if isinstance(source, str) and source.lstrip().startswith("{"):
            return cls.from_dict(json.loads(source))
        with open(source, "r", encoding="ascii") as handle:
            return cls.from_dict(json.load(handle))

    def to_csv(self, path: PathLike) -> None:
        """Write the tidy table as CSV (one row per record)."""
        metrics = self.metric_names()
        fieldnames = ["workload", "seed", "label", *metrics]
        if self.has_bandwidth_axis():
            fieldnames.insert(3, "bandwidth")
        with open(path, "w", encoding="ascii", newline="") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=fieldnames, restval=""
            )
            writer.writeheader()
            for row in self.rows():
                writer.writerow(row)

    # ------------------------------------------------------------------
    def tradeoff_points(self) -> List[TradeoffPoint]:
        """Records as :class:`TradeoffPoint` (``kind="tradeoff"`` only)."""
        points = []
        for r in self.records:
            m = r.metrics
            points.append(
                TradeoffPoint(
                    label=r.label,
                    workload=r.workload,
                    indirection_pct=m["indirection_pct"],
                    request_messages_per_miss=m["request_messages_per_miss"],
                    traffic_bytes_per_miss=m["traffic_bytes_per_miss"],
                    average_latency_ns=m["average_latency_ns"],
                    misses=int(m["misses"]),
                    retries=int(m["retries"]),
                )
            )
        return points

    def bandwidth_curves(
        self,
        metric: str = "runtime_ns",
        workload: Optional[str] = None,
    ) -> Dict[str, List[Tuple[float, float]]]:
        """Per-label ``(bandwidth, metric)`` curves from a sweep.

        The paper's Figure 7/8 plane collapsed along one protocol
        axis: for each configuration label, how ``metric`` (default
        absolute runtime) moves as link bandwidth shrinks.  Records
        sharing a (label, bandwidth) point — multiple seeds, or
        multiple workloads unless ``workload`` narrows the selection
        to one panel — are averaged, so each curve has exactly one
        value per bandwidth.  Points are sorted by bandwidth; records
        without a bandwidth point (non-sweep runs) are skipped, so
        the result is empty for specs without the axis.
        """
        samples: Dict[str, Dict[float, List[float]]] = {}
        for record in self.records:
            if record.bandwidth is None:
                continue
            if workload is not None and record.workload != workload:
                continue
            samples.setdefault(record.label, {}).setdefault(
                record.bandwidth, []
            ).append(record.metrics[metric])
        return {
            label: [
                (bandwidth, sum(values) / len(values))
                for bandwidth, values in sorted(by_bandwidth.items())
            ]
            for label, by_bandwidth in samples.items()
        }

    def runtime_points(self) -> List[RuntimePoint]:
        """Records as :class:`RuntimePoint` (``kind="runtime"`` only)."""
        points = []
        for r in self.records:
            m = r.metrics
            points.append(
                RuntimePoint(
                    label=r.label,
                    workload=r.workload,
                    normalized_runtime=m["normalized_runtime"],
                    normalized_traffic_per_miss=(
                        m["normalized_traffic_per_miss"]
                    ),
                    runtime_ns=m["runtime_ns"],
                    traffic_bytes_per_miss=m["traffic_bytes_per_miss"],
                    indirection_pct=m["indirection_pct"],
                )
            )
        return points
