"""Unified experiment API: declarative sweeps over the design space.

The paper's figures and tables are all cross-products of workloads ×
protocols × predictor configurations.  This package makes that
cross-product a first-class value:

- :class:`ExperimentSpec` — a frozen, JSON-serializable declaration of
  a study (workloads, trace sizes/seeds, policies, config overrides,
  metric kind).
- :class:`Runner` — expands a spec into independent jobs and executes
  them serially or across worker processes; ``jobs=1`` and ``jobs=N``
  produce identical results.
- :class:`TraceCache` / :class:`PersistentTraceCorpus` — on-disk trace
  storage keyed by workload/refs/seed/config hash, so repeated sweeps
  skip trace regeneration across processes and invocations.
- :class:`ResultSet` — structured results with tidy-table access,
  JSON/CSV export, and round-trip loading.

Quick start::

    from repro.experiment import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        workloads=("oltp", "apache"), kind="tradeoff",
        n_references=100_000,
    )
    results = run_experiment(spec, jobs=4, cache_dir=".trace-cache")
    print(results.table())
    results.to_json("results.json")
"""

from repro.experiment.cache import (
    CacheStats,
    PersistentTraceCorpus,
    TraceCache,
    default_cache_dir,
    make_corpus,
)
from repro.experiment.results import (
    CellFailure,
    PerfStats,
    ResultRecord,
    ResultSet,
)
from repro.experiment.runner import (
    Runner,
    default_jobs,
    execute_job,
    normalize_records,
    run_cell,
    run_experiment,
)
from repro.experiment.spec import (
    DEFAULT_BANDWIDTHS,
    EXPERIMENT_KINDS,
    ExperimentSpec,
    Job,
    bandwidth_sweep,
)

__all__ = [
    "CacheStats",
    "CellFailure",
    "DEFAULT_BANDWIDTHS",
    "EXPERIMENT_KINDS",
    "ExperimentSpec",
    "Job",
    "bandwidth_sweep",
    "PerfStats",
    "PersistentTraceCorpus",
    "ResultRecord",
    "ResultSet",
    "Runner",
    "TraceCache",
    "default_cache_dir",
    "default_jobs",
    "execute_job",
    "make_corpus",
    "normalize_records",
    "run_cell",
    "run_experiment",
]
