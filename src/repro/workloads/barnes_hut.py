"""Barnes-Hut — SPLASH-2 N-body simulation (paper Table 1).

Modelled behaviours: body records that migrate between the processors
computing forces on them, the widely read octree, and small private
accumulators.  The paper's Table 2 row: 11 MB footprint (the smallest),
0.4 misses/1k instructions (compute bound), and 96% directory
indirections — nearly every miss is a sharing miss because the whole
data set fits in the aggregate cache.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.base import PaperProperties, WeightedRegion, WorkloadModel
from repro.workloads.patterns import (
    AddressSpaceAllocator,
    MigratoryRegion,
    PrivateRegion,
    ReadMostlyRegion,
)

KB = 1024
MB = 1024 * KB


class BarnesHutWorkload(WorkloadModel):
    """SPLASH-2 barnes: migratory bodies plus a read-shared octree."""

    name = "barnes-hut"
    description = "SPLASH-2 Barnes-Hut N-body, 64k bodies"
    paper = PaperProperties(
        footprint_mb=11,
        macroblock_footprint_mb=13,
        static_miss_pcs=7912,
        total_misses_millions=3,
        misses_per_kilo_instr=0.4,
        directory_indirection_pct=96,
    )
    instructions_per_reference = 1250

    def _build(
        self, alloc: AddressSpaceAllocator
    ) -> Sequence[WeightedRegion]:
        config = self.config
        n = config.n_processors
        regions: List[WeightedRegion] = []

        # Body records: migratory among the small sets of processors
        # whose partitions border each body.
        for index in range(96):
            pool = self.node_pool("bodies", 2 + index % 3, index)
            blocks = self.scaled_blocks(64 * KB)
            regions.append(
                (
                    MigratoryRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        pool=pool,
                        pc_base=alloc.allocate_pc_range(),
                    ),
                    0.85 / 96 * len(pool),
                )
            )

        # The octree: read by everyone, rebuilt (written) occasionally.
        for index in range(4):
            blocks = self.scaled_blocks(512 * KB)
            regions.append(
                (
                    ReadMostlyRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        members=range(n),
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.06,
                    ),
                    0.22 / 4,
                )
            )

        # Private accumulators: small, cache resident.
        for node in range(n):
            blocks = self.scaled_blocks(256 * KB)
            regions.append(
                (
                    PrivateRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        owner=node,
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.4,
                        streaming_fraction=0.05,
                    ),
                    0.06,
                )
            )
        return regions
