"""Ocean — SPLASH-2 column-blocked stencil (paper Table 1).

Modelled behaviours: each processor sweeps its private interior grid
columns (streaming capacity misses satisfied by memory) and exchanges
boundary columns with its two ring neighbours (pairwise
producer-consumer sharing).  The paper highlights Ocean's
column-blocked layout as the reason most of its misses touch blocks
shared by four or fewer processors (Figure 3b) and why Owner/Group is
especially effective on it (Section 4.3).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.base import PaperProperties, WeightedRegion, WorkloadModel
from repro.workloads.patterns import (
    AddressSpaceAllocator,
    PrivateRegion,
    ProducerConsumerRegion,
)

KB = 1024
MB = 1024 * KB


class OceanWorkload(WorkloadModel):
    """SPLASH-2 ocean: streaming interiors, nearest-neighbour borders."""

    name = "ocean"
    description = "SPLASH-2 Ocean, 514x514 grid, column-blocked"
    paper = PaperProperties(
        footprint_mb=52,
        macroblock_footprint_mb=61,
        static_miss_pcs=11384,
        total_misses_millions=5,
        misses_per_kilo_instr=0.5,
        directory_indirection_pct=58,
    )
    instructions_per_reference = 1700

    def _build(
        self, alloc: AddressSpaceAllocator
    ) -> Sequence[WeightedRegion]:
        config = self.config
        n = config.n_processors
        regions: List[WeightedRegion] = []

        # Interior grid columns: bigger than the (scaled) L2, swept
        # sequentially every iteration -> LRU capacity misses that
        # memory satisfies.  This is the paper's 42% of Ocean misses
        # with no directory indirection.
        for node in range(n):
            blocks = self.scaled_blocks(4.5 * MB)
            regions.append(
                (
                    PrivateRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        owner=node,
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.45,
                        streaming_fraction=0.97,
                    ),
                    0.75,
                )
            )

        # Boundary columns exchanged with ring neighbours, one region
        # per direction, giving pure pairwise sharing.
        for node in range(n):
            for direction in (1, n - 1):
                neighbour = (node + direction) % n
                blocks = self.scaled_blocks(128 * KB)
                regions.append(
                    (
                        ProducerConsumerRegion(
                            base=alloc.allocate(blocks * config.block_size),
                            n_blocks=blocks,
                            block_size=config.block_size,
                            producer=node,
                            consumers=[neighbour],
                            pc_base=alloc.allocate_pc_range(),
                        ),
                        0.19,
                    )
                )
        return regions
