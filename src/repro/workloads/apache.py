"""Apache — static web content serving (paper Table 1).

Modelled behaviours: pthread-lock migratory data, widely shared
read-mostly metadata (file/dirent caches), per-connection
producer-consumer network buffers, per-worker private heaps, and a
small logging/scratch streaming component.  Calibration target is the
paper's Table 2 row: 46 MB footprint, 5.9 misses/1k instructions, 89%
directory indirections — the most sharing-intensive commercial
workload in the study.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.base import PaperProperties, WeightedRegion, WorkloadModel
from repro.workloads.patterns import (
    AddressSpaceAllocator,
    MigratoryRegion,
    PrivateRegion,
    ProducerConsumerRegion,
    ReadMostlyRegion,
)

KB = 1024
MB = 1024 * KB


class ApacheWorkload(WorkloadModel):
    """Static web serving: lock-heavy, widely shared metadata."""

    name = "apache"
    description = "Static web content serving (Apache 2.0, 160 users)"
    paper = PaperProperties(
        footprint_mb=46,
        macroblock_footprint_mb=71,
        static_miss_pcs=18745,
        total_misses_millions=22,
        misses_per_kilo_instr=5.9,
        directory_indirection_pct=89,
    )
    instructions_per_reference = 110

    def _build(
        self, alloc: AddressSpaceAllocator
    ) -> Sequence[WeightedRegion]:
        config = self.config
        n = config.n_processors
        regions: List[WeightedRegion] = []

        # Per-worker private heaps: cache resident after warmup.
        for node in range(n):
            blocks = self.scaled_blocks(1.0 * MB)
            regions.append(
                (
                    PrivateRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        owner=node,
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.35,
                        streaming_fraction=0.08,
                    ),
                    0.13,
                )
            )

        # pthread locks and the request queues they guard: migratory.
        for index in range(64):
            pool = self.node_pool("locks", 2 + index % 4, index)
            regions.append(
                (
                    MigratoryRegion(
                        base=alloc.allocate(2 * config.block_size),
                        n_blocks=2,
                        block_size=config.block_size,
                        pool=pool,
                        pc_base=alloc.allocate_pc_range(),
                    ),
                    0.50 / 64 * len(pool),
                )
            )

        # File/dirent metadata caches: widely shared, rarely written.
        for index in range(6):
            blocks = self.scaled_blocks(512 * KB)
            regions.append(
                (
                    ReadMostlyRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        members=range(n),
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.02,
                    ),
                    0.26 / 6,
                )
            )

        # Network/response buffers handed between workers.
        for node in range(n):
            consumers = [c for c in self.node_pool("buf", 3, node) if c != node][:2]
            if not consumers:
                consumers = [(node + 1) % n]
            blocks = self.scaled_blocks(256 * KB)
            regions.append(
                (
                    ProducerConsumerRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        producer=node,
                        consumers=consumers,
                        pc_base=alloc.allocate_pc_range(),
                    ),
                    0.16,
                )
            )

        # Logging / scratch: streaming, memory-sourced capacity misses.
        for node in range(n):
            blocks = self.scaled_blocks(1.2 * MB)
            regions.append(
                (
                    PrivateRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        owner=node,
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.5,
                        streaming_fraction=1.0,
                    ),
                    0.02,
                )
            )
        return regions
