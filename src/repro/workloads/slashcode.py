"""Slashcode — dynamic web message board (paper Table 1).

Modelled behaviours: large per-process Perl/MySQL heaps streamed with
low reuse (the paper's largest commercial footprint at 181 MB and the
lowest indirection rate at 35% — most misses are capacity misses that
memory satisfies), plus moderate read-mostly message caches and a few
migratory locks.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.base import PaperProperties, WeightedRegion, WorkloadModel
from repro.workloads.patterns import (
    AddressSpaceAllocator,
    MigratoryRegion,
    PrivateRegion,
    ReadMostlyRegion,
)

KB = 1024
MB = 1024 * KB


class SlashcodeWorkload(WorkloadModel):
    """Dynamic web serving: big cold heaps, light sharing."""

    name = "slashcode"
    description = "Slashcode 2.0 + Apache/mod_perl + MySQL, 48 users"
    paper = PaperProperties(
        footprint_mb=181,
        macroblock_footprint_mb=316,
        static_miss_pcs=42770,
        total_misses_millions=13,
        misses_per_kilo_instr=1.0,
        directory_indirection_pct=35,
    )
    instructions_per_reference = 800

    def _build(
        self, alloc: AddressSpaceAllocator
    ) -> Sequence[WeightedRegion]:
        config = self.config
        n = config.n_processors
        regions: List[WeightedRegion] = []

        # Per-process interpreter heaps: large and streamed.
        for node in range(n):
            blocks = self.scaled_blocks(10 * MB)
            regions.append(
                (
                    PrivateRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        owner=node,
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.3,
                        streaming_fraction=0.75,
                    ),
                    0.48,
                )
            )

        # Rendered-message caches: read-mostly, shared by all.
        for index in range(8):
            blocks = self.scaled_blocks(1 * MB)
            regions.append(
                (
                    ReadMostlyRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        members=range(n),
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.02,
                    ),
                    0.30 / 8,
                )
            )

        # Database row locks: migratory among small pools.
        for index in range(48):
            pool = self.node_pool("locks", 2 + index % 5, index)
            regions.append(
                (
                    MigratoryRegion(
                        base=alloc.allocate(2 * config.block_size),
                        n_blocks=2,
                        block_size=config.block_size,
                        pool=pool,
                        pc_base=alloc.allocate_pc_range(),
                    ),
                    0.32 / 48 * len(pool),
                )
            )
        return regions
