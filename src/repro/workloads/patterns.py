"""Sharing-pattern primitives used to compose workload models.

Each :class:`Region` models one kind of data structure identified by
the paper's sharing analysis (Section 2) and the coherence-prediction
literature it cites:

- :class:`PrivateRegion` — data touched by a single processor; tunable
  between reuse-heavy (cache resident, few misses) and streaming
  (capacity misses that memory, not a remote cache, satisfies).
- :class:`MigratoryRegion` — lock-protected data that migrates between
  processors with read-modify-write sequences (Gupta/Weber migratory
  sharing; the dominant pattern behind "1 other processor" misses).
- :class:`ProducerConsumerRegion` — one writer streaming a buffer that
  one or more readers then consume (the paper's Section 3.4 motivating
  example for macroblock indexing).
- :class:`ReadMostlyRegion` — widely shared, rarely written data whose
  occasional writes trigger wide invalidations ("3+" write misses in
  Figure 2).

A region is a stateful generator: ``access(node, rng)`` returns the
next :class:`Access` that processor would make to the region.
"""

from __future__ import annotations

import abc
import dataclasses
import itertools
import random
from typing import Dict, Optional, Sequence, Tuple

from repro.common.rng import zipf_rank
from repro.common.types import Address, NodeId

#: Byte distance between synthetic static instructions (SPARC-like).
_PC_STRIDE = 4


@dataclasses.dataclass(frozen=True)
class Access:
    """One memory access produced by a region."""

    address: Address
    is_write: bool
    pc: Address


class Region(abc.ABC):
    """A contiguous address range with a characteristic sharing pattern.

    Attributes:
        base: first byte of the region (block aligned by construction).
        n_blocks: region length in cache blocks.
        members: processors that access the region.
    """

    def __init__(
        self,
        base: Address,
        n_blocks: int,
        block_size: int,
        members: Sequence[NodeId],
        pc_base: Address,
        n_pc_sites: int = 8,
    ):
        if n_blocks <= 0:
            raise ValueError("n_blocks must be positive")
        if not members:
            raise ValueError("a region needs at least one member")
        self.base = base
        self.n_blocks = n_blocks
        self.block_size = block_size
        self.members: Tuple[NodeId, ...] = tuple(sorted(set(members)))
        self._pc_base = pc_base
        self._n_pc_sites = max(1, n_pc_sites)

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Region length in bytes."""
        return self.n_blocks * self.block_size

    @property
    def end(self) -> Address:
        """One past the last byte of the region."""
        return self.base + self.size_bytes

    def block_address(self, block_index: int) -> Address:
        """Address of the region's ``block_index``-th block."""
        return self.base + (block_index % self.n_blocks) * self.block_size

    def pc_site(self, site: int) -> Address:
        """PC of the region's ``site``-th static instruction."""
        return self._pc_base + (site % self._n_pc_sites) * _PC_STRIDE

    @property
    def pc_base(self) -> Address:
        """First PC of the region's static-instruction range."""
        return self._pc_base

    @property
    def n_pc_sites(self) -> int:
        """Number of distinct static instructions in the region."""
        return self._n_pc_sites

    @abc.abstractmethod
    def access(self, node: NodeId, rng: random.Random) -> Access:
        """Produce ``node``'s next access to this region."""

    @abc.abstractmethod
    def batch_spec(self) -> Tuple[str, dict]:
        """``(kind, params)`` for the batched generation layer.

        ``kind`` selects the column sampler in
        :mod:`repro.workloads.genchunks`; ``params`` carries the
        region's sampling constants.  The batched layer keeps its own
        cursor state, so generating chunks never perturbs this
        region's scalar (record-at-a-time) generator.
        """

    def _check_member(self, node: NodeId) -> None:
        if node not in self.members:
            raise ValueError(
                f"node {node} is not a member of region at {self.base:#x}"
            )


class PrivateRegion(Region):
    """Data accessed by exactly one processor.

    ``streaming_fraction`` controls the access pattern mixture:
    sequential sweeps (which defeat LRU once the region exceeds the
    cache, producing memory-sourced capacity misses) versus Zipf reuse
    of hot blocks (which stay cache resident).  ``write_fraction`` sets
    the store ratio.
    """

    #: Hot-block skew of the non-streaming draws (shared by the scalar
    #: and batched samplers).
    zipf_exponent = 1.0

    def __init__(
        self,
        base: Address,
        n_blocks: int,
        block_size: int,
        owner: NodeId,
        pc_base: Address,
        write_fraction: float = 0.3,
        streaming_fraction: float = 0.3,
        n_pc_sites: int = 8,
    ):
        super().__init__(
            base, n_blocks, block_size, (owner,), pc_base, n_pc_sites
        )
        self.owner = owner
        self.write_fraction = write_fraction
        self.streaming_fraction = streaming_fraction
        self._cursor = 0

    def access(self, node: NodeId, rng: random.Random) -> Access:
        self._check_member(node)
        if rng.random() < self.streaming_fraction:
            block = self._cursor
            self._cursor = (self._cursor + 1) % self.n_blocks
        else:
            block = zipf_rank(rng, self.n_blocks, self.zipf_exponent)
        is_write = rng.random() < self.write_fraction
        site = 0 if is_write else 1
        if block == self._cursor:
            site += 2  # streaming loop has its own static instructions
        return Access(
            address=self.block_address(block),
            is_write=is_write,
            pc=self.pc_site(site + rng.randrange(2) * 4),
        )

    def batch_spec(self) -> Tuple[str, dict]:
        return (
            "private",
            {
                "streaming_fraction": self.streaming_fraction,
                "write_fraction": self.write_fraction,
                "exponent": self.zipf_exponent,
            },
        )


class MigratoryRegion(Region):
    """Lock-protected data migrating among a pool of processors.

    Whenever a member that is not the current holder accesses the
    region, the region migrates to it and the node performs a
    read-modify-write: a load miss (finding the previous owner's dirty
    copy) followed by a store (upgrading and invalidating it).  This is
    the canonical migratory/pairwise pattern: both the read and the
    write need exactly one other processor.
    """

    #: Skew of the per-visit block draw (shared by the scalar and
    #: batched samplers; milder than private reuse).
    zipf_exponent = 0.8

    def __init__(
        self,
        base: Address,
        n_blocks: int,
        block_size: int,
        pool: Sequence[NodeId],
        pc_base: Address,
        blocks_per_visit: int = 2,
        n_pc_sites: int = 8,
    ):
        super().__init__(base, n_blocks, block_size, pool, pc_base, n_pc_sites)
        self._holder: Optional[NodeId] = None
        self._pending_writes: Dict[NodeId, Address] = {}
        self.blocks_per_visit = max(1, blocks_per_visit)

    def access(self, node: NodeId, rng: random.Random) -> Access:
        self._check_member(node)
        pending = self._pending_writes.pop(node, None)
        if pending is not None and self._holder == node:
            return Access(address=pending, is_write=True, pc=self.pc_site(1))
        self._holder = node
        block = zipf_rank(rng, self.n_blocks, exponent=self.zipf_exponent)
        address = self.block_address(block)
        self._pending_writes[node] = address
        return Access(address=address, is_write=False, pc=self.pc_site(0))

    def batch_spec(self) -> Tuple[str, dict]:
        return ("migratory", {"exponent": self.zipf_exponent})


class ProducerConsumerRegion(Region):
    """A buffer written sequentially by a producer, read by consumers.

    The producer's writes invalidate the consumers' copies; consumer
    reads then find the producer's dirty blocks (cache-to-cache
    misses).  Sequential cursors give the pattern strong spatial
    locality — a macroblock predictor that sees one block supplied by
    the producer can predict the rest of the buffer.
    """

    def __init__(
        self,
        base: Address,
        n_blocks: int,
        block_size: int,
        producer: NodeId,
        consumers: Sequence[NodeId],
        pc_base: Address,
        n_pc_sites: int = 6,
    ):
        members = [producer, *consumers]
        super().__init__(
            base, n_blocks, block_size, members, pc_base, n_pc_sites
        )
        self.producer = producer
        self.consumers = tuple(consumers)
        self._write_cursor = 0
        self._read_cursors: Dict[NodeId, int] = {
            consumer: 0 for consumer in self.consumers
        }

    def access(self, node: NodeId, rng: random.Random) -> Access:
        self._check_member(node)
        if node == self.producer:
            block = self._write_cursor
            self._write_cursor = (self._write_cursor + 1) % self.n_blocks
            return Access(
                address=self.block_address(block),
                is_write=True,
                pc=self.pc_site(0),
            )
        cursor = self._read_cursors[node]
        # Consumers chase the producer but never read ahead of it.
        if cursor == self._write_cursor:
            cursor = (self._write_cursor - 1) % self.n_blocks
        self._read_cursors[node] = (cursor + 1) % self.n_blocks
        return Access(
            address=self.block_address(cursor),
            is_write=False,
            pc=self.pc_site(1 + self.consumers.index(node) % 4),
        )

    def batch_spec(self) -> Tuple[str, dict]:
        return (
            "producer-consumer",
            {"producer": self.producer, "consumers": self.consumers},
        )


class ReadMostlyRegion(Region):
    """Widely shared data with rare writes.

    Reads hit once a node has a copy, so steady-state misses cluster
    just after each write: the writer's GETX invalidates every sharer
    (a wide destination set) and the sharers' re-reads each find the
    writer's copy.
    """

    def __init__(
        self,
        base: Address,
        n_blocks: int,
        block_size: int,
        members: Sequence[NodeId],
        pc_base: Address,
        write_fraction: float = 0.02,
        hot_exponent: float = 1.0,
        n_pc_sites: int = 8,
    ):
        super().__init__(
            base, n_blocks, block_size, members, pc_base, n_pc_sites
        )
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        self.write_fraction = write_fraction
        self.hot_exponent = hot_exponent

    def access(self, node: NodeId, rng: random.Random) -> Access:
        self._check_member(node)
        block = zipf_rank(rng, self.n_blocks, exponent=self.hot_exponent)
        is_write = rng.random() < self.write_fraction
        return Access(
            address=self.block_address(block),
            is_write=is_write,
            pc=self.pc_site(0 if is_write else 1 + block % 3),
        )

    def batch_spec(self) -> Tuple[str, dict]:
        return (
            "read-mostly",
            {
                "exponent": self.hot_exponent,
                "write_fraction": self.write_fraction,
            },
        )


class AddressSpaceAllocator:
    """Hands out non-overlapping, macroblock-aligned address ranges.

    Keeps region placement deterministic and collision free; regions
    are aligned to 1024-byte macroblocks so that macroblock-indexed
    predictors never see two regions aliasing into one entry.
    """

    def __init__(self, alignment: int = 1024, start: Address = 0x1000_0000):
        self._alignment = alignment
        self._next = self._align_up(start)
        self._pc_counter = itertools.count()
        self._pc_base = 0x40_0000

    def allocate(self, size_bytes: int) -> Address:
        """Reserve ``size_bytes`` and return the base address."""
        if size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        base = self._next
        self._next = self._align_up(base + size_bytes)
        return base

    def allocate_pc_range(self, n_sites: int = 16) -> Address:
        """Reserve a PC range for a region's static instructions."""
        index = next(self._pc_counter)
        return self._pc_base + index * n_sites * _PC_STRIDE * 16

    def _align_up(self, address: Address) -> Address:
        mask = self._alignment - 1
        return (address + mask) & ~mask
