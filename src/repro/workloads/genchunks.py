"""Batched (chunked, columnar) workload-reference generation.

The scalar path (:meth:`WorkloadModel.references`) draws one record at
a time from a Mersenne-Twister stream; it remains the readable
specification and the equivalence oracle.  This module is the cold
path's fast engine: references are synthesized in *chunks of columns*
(nodes, addresses, pcs, write flags, instruction gaps) so the cache
pipeline and trace container can consume them without per-record
object allocation.

Determinism contract
--------------------

Every random decision is a pure function of ``(seed, workload name,
stream label, counter)``:

- a **counter-based generator** (splitmix64 over a
  :func:`~repro.common.rng.derive_seed`-derived key) replaces the
  sequential Mersenne Twister, so any index of any stream can be
  computed independently — which is what makes the draws vectorizable;
- region selection and bounded-Zipf address draws go through
  precomputed **threshold tables** searched with
  ``bisect_right``/``searchsorted``, and fraction checks compare
  53-bit integers against integer thresholds, so the numpy and
  pure-Python backends produce *bit-identical* integers;
- all cross-chunk state (streaming cursors, migratory run parity,
  producer/consumer cursors) lives in per-region sampler objects keyed
  only by per-region access counters, so the chunk size never affects
  the generated stream.

``REPRO_PURE_PYTHON=1`` (or
:func:`repro.trace.columns.set_backend`) selects the backend at call
time; the generation-equivalence suite asserts byte-identical traces
across backends for every workload in the registry.
"""

from __future__ import annotations

import itertools
from bisect import bisect_right
from math import log
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.common.rng import derive_seed
from repro.trace import columns as _columns
from repro.workloads.patterns import _PC_STRIDE

#: splitmix64 sequence constant.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1
#: Draws are 53-bit integers; scaling by 2**-53 yields a float64 in
#: [0, 1) exactly representable in both backends.
_U53 = 53
_U53_SCALE = 2.0 ** -53
_TWO53 = 1 << 53

#: Default generation chunk size (references per chunk).
DEFAULT_CHUNK_SIZE = 65_536


def _fraction_threshold(fraction: float) -> int:
    """``fraction`` as an integer threshold against 53-bit draws."""
    threshold = int(fraction * _TWO53)
    return min(max(threshold, 0), _TWO53)


def _draws53_py(key: int, start: int, count: int) -> List[int]:
    """``count`` 53-bit splitmix64 draws at ``start`` (pure Python)."""
    out = []
    append = out.append
    state = (key + (start + 1) * _GOLDEN) & _MASK64
    for _ in range(count):
        z = state
        z ^= z >> 30
        z = (z * 0xBF58476D1CE4E5B9) & _MASK64
        z ^= z >> 27
        z = (z * 0x94D049BB133111EB) & _MASK64
        z ^= z >> 31
        append(z >> 11)
        state = (state + _GOLDEN) & _MASK64
    return out


def _draws53_np(np_, key: int, start: int, count: int):
    """``count`` 53-bit splitmix64 draws at ``start`` (vectorized)."""
    counters = np_.arange(start + 1, start + 1 + count, dtype=np_.uint64)
    z = counters * np_.uint64(_GOLDEN) + np_.uint64(key)
    z ^= z >> np_.uint64(30)
    z *= np_.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np_.uint64(27)
    z *= np_.uint64(0x94D049BB133111EB)
    z ^= z >> np_.uint64(31)
    return (z >> np_.uint64(11)).astype(np_.int64)


class _ZipfThresholds:
    """Inverse-CDF thresholds for the bounded-Zipf address draw.

    Reproduces the distribution of :func:`repro.common.rng.zipf_rank`
    (the same closed-form approximate inversion) as a monotone
    threshold table over the uniform draw, so both backends sample by
    table search instead of transcendental math — table values are
    computed once in pure Python floats and shared, which is what
    makes numpy and pure-Python samples bit-identical.
    """

    __slots__ = ("n", "uniform", "_thresholds", "_thresholds_np")

    def __init__(self, n: int, exponent: float):
        self.n = n
        self.uniform = exponent <= 0
        self._thresholds_np = None
        if self.uniform or n <= 1:
            self._thresholds: List[float] = []
            return
        if abs(exponent - 1.0) < 1e-9:
            log_np1 = log(n + 1.0)
            self._thresholds = [
                log(rank + 1.0) / log_np1 for rank in range(1, n)
            ]
        else:
            h = 1.0 - exponent
            norm = ((n + 1.0) ** h - 1.0) / h
            scale = norm * h
            self._thresholds = [
                ((rank + 1.0) ** h - 1.0) / scale for rank in range(1, n)
            ]

    def sample_py(self, u53: int) -> int:
        if self.uniform:
            return u53 % self.n
        if not self._thresholds:
            return 0
        return bisect_right(self._thresholds, u53 * _U53_SCALE)

    def sample_np(self, np_, u53):
        if self.uniform:
            return u53 % self.n
        if not self._thresholds:
            return np_.zeros(len(u53), dtype=np_.int64)
        if self._thresholds_np is None:
            self._thresholds_np = np_.asarray(
                self._thresholds, dtype=np_.float64
            )
        u = u53.astype(np_.float64) * _U53_SCALE
        return np_.searchsorted(
            self._thresholds_np, u, side="right"
        ).astype(np_.int64)


class ReferenceChunk:
    """One chunk of generated references, as parallel columns.

    All columns are plain Python lists of ints (``writes`` holds
    0/1), identical across backends; ``addresses_np`` additionally
    carries the numpy address column when the numpy backend produced
    the chunk, so downstream consumers (the collector's set-index
    precompute) can stay vectorized.  The boxed ``addresses`` list is
    materialized lazily in that case — the numpy collector path never
    reads it, so the boxing cost is skipped on the hot path.
    """

    __slots__ = (
        "nodes", "_addresses", "pcs", "writes", "instructions",
        "addresses_np",
    )

    def __init__(
        self, nodes, addresses, pcs, writes, instructions,
        addresses_np=None,
    ):
        self.nodes = nodes
        self._addresses = addresses
        self.pcs = pcs
        self.writes = writes
        self.instructions = instructions
        self.addresses_np = addresses_np

    @property
    def addresses(self):
        if self._addresses is None:
            self._addresses = self.addresses_np.tolist()
        return self._addresses

    def __len__(self) -> int:
        return len(self.nodes)


def chunks_from_references(
    references: Iterable, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> Iterator[ReferenceChunk]:
    """Column chunks from a scalar :class:`MemoryReference` stream.

    Bridges record-oriented generators (the scalar oracle path, saved
    streams) onto the chunk-consuming collector fast path.
    """
    iterator = iter(references)
    while True:
        batch = list(itertools.islice(iterator, chunk_size))
        if not batch:
            return
        yield ReferenceChunk(
            [r.node for r in batch],
            [r.address for r in batch],
            [r.pc for r in batch],
            [1 if r.is_write else 0 for r in batch],
            [r.instructions for r in batch],
        )


# ----------------------------------------------------------------------
# Per-region column samplers
# ----------------------------------------------------------------------
class _Sampler:
    """Base: draw-key management and the per-region access counter."""

    def __init__(self, region, keys: Tuple[int, int, int, int]):
        self.base = region.base
        self.n_blocks = region.n_blocks
        self.block_size = region.block_size
        self.pc_base = region.pc_base
        self.n_pc_sites = region.n_pc_sites
        self.keys = keys
        self.counter = 0

    def _advance(self, count: int) -> int:
        j0 = self.counter
        self.counter += count
        return j0

    def _pc_site(self, site: int) -> int:
        return self.pc_base + (site % self.n_pc_sites) * _PC_STRIDE


class _PrivateSampler(_Sampler):
    """Streaming-or-Zipf private data (see ``PrivateRegion``)."""

    def __init__(self, region, keys, params):
        super().__init__(region, keys)
        self.t_stream = _fraction_threshold(params["streaming_fraction"])
        self.t_write = _fraction_threshold(params["write_fraction"])
        self.zipf = _ZipfThresholds(self.n_blocks, params["exponent"])
        self.cursor = 0

    def sample_py(self, nodes, m):
        j0 = self._advance(m)
        k0, k1, k2, k3 = self.keys
        s53 = _draws53_py(k0, j0, m)
        a53 = _draws53_py(k1, j0, m)
        w53 = _draws53_py(k2, j0, m)
        x53 = _draws53_py(k3, j0, m)
        cursor, nb = self.cursor, self.n_blocks
        base, bs = self.base, self.block_size
        zipf_sample = self.zipf.sample_py
        addrs, writes, pcs = [], [], []
        for i in range(m):
            if s53[i] < self.t_stream:
                block = cursor
                cursor = (cursor + 1) % nb
            else:
                block = zipf_sample(a53[i])
            write = 1 if w53[i] < self.t_write else 0
            site = (0 if write else 1) + (x53[i] & 1) * 4
            if block == cursor:
                site += 2
            addrs.append(base + block * bs)
            writes.append(write)
            pcs.append(self._pc_site(site))
        self.cursor = cursor
        return addrs, writes, pcs

    def sample_np(self, np_, nodes, m):
        j0 = self._advance(m)
        k0, k1, k2, k3 = self.keys
        streaming = _draws53_np(np_, k0, j0, m) < self.t_stream
        a53 = _draws53_np(np_, k1, j0, m)
        writes = (_draws53_np(np_, k2, j0, m) < self.t_write).astype(
            np_.int64
        )
        jitter = _draws53_np(np_, k3, j0, m) & 1
        nb = self.n_blocks
        streamed = np_.cumsum(streaming)
        cursor_at = (self.cursor + streamed) % nb
        block = np_.where(
            streaming,
            (self.cursor + streamed - 1) % nb,
            self.zipf.sample_np(np_, a53),
        )
        site = (
            1 - writes
            + jitter * 4
            + 2 * (block == cursor_at)
        )
        pcs = self.pc_base + (site % self.n_pc_sites) * _PC_STRIDE
        self.cursor = int(cursor_at[-1]) if m else self.cursor
        return self.base + block * self.block_size, writes, pcs


class _MigratorySampler(_Sampler):
    """Read-modify-write data migrating along same-node runs.

    A write happens exactly when the previous access to the region was
    a read by the same node, so write flags alternate within each
    maximal run of equal consecutive nodes (starting with a read) —
    which vectorizes as run-relative parity.
    """

    def __init__(self, region, keys, params):
        super().__init__(region, keys)
        self.zipf = _ZipfThresholds(self.n_blocks, params["exponent"])
        self.last_node = -1
        self.last_was_write = False
        self.last_addr = 0

    def sample_py(self, nodes, m):
        j0 = self._advance(m)
        a53 = _draws53_py(self.keys[1], j0, m)
        base, bs = self.base, self.block_size
        pc_read, pc_write = self._pc_site(0), self._pc_site(1)
        zipf_sample = self.zipf.sample_py
        last_node = self.last_node
        last_was_write = self.last_was_write
        last_addr = self.last_addr
        addrs, writes, pcs = [], [], []
        for i in range(m):
            node = nodes[i]
            if node == last_node and not last_was_write:
                addr = last_addr
                writes.append(1)
                pcs.append(pc_write)
                last_was_write = True
            else:
                addr = base + zipf_sample(a53[i]) * bs
                writes.append(0)
                pcs.append(pc_read)
                last_was_write = False
            addrs.append(addr)
            last_node, last_addr = node, addr
        self.last_node = last_node
        self.last_was_write = last_was_write
        self.last_addr = last_addr
        return addrs, writes, pcs

    def sample_np(self, np_, nodes, m):
        j0 = self._advance(m)
        a53 = _draws53_np(np_, self.keys[1], j0, m)
        same = np_.empty(m, dtype=bool)
        same[0] = nodes[0] == self.last_node
        same[1:] = nodes[1:] == nodes[:-1]
        index = np_.arange(m)
        run_start = np_.maximum.accumulate(np_.where(~same, index, 0))
        offset = index - run_start
        write = (offset & 1) == 1
        if same[0] and not self.last_was_write:
            # The first run continues a run whose last access was a
            # read, so its parity is flipped: it opens with a write.
            starts = np_.flatnonzero(~same)
            first_len = int(starts[0]) if len(starts) else m
            write[:first_len] = (offset[:first_len] & 1) == 0
        read_addr = self.base + self.zipf.sample_np(np_, a53) * (
            self.block_size
        )
        prev_addr = np_.empty(m, dtype=np_.int64)
        prev_addr[0] = self.last_addr
        prev_addr[1:] = read_addr[:-1]
        addrs = np_.where(write, prev_addr, read_addr)
        pcs = np_.where(write, self._pc_site(1), self._pc_site(0))
        self.last_node = int(nodes[-1])
        self.last_was_write = bool(write[-1])
        self.last_addr = int(addrs[-1])
        return addrs, write.astype(np_.int64), pcs


class _ProducerConsumerSampler(_Sampler):
    """Sequential producer/consumer cursors.

    Draw free; the consumer clamp (never read past the producer)
    couples each read cursor to the live write cursor, so both
    backends share one integer state loop — identical by construction
    and cheap because no random draws are consumed.
    """

    def __init__(self, region, keys, params):
        super().__init__(region, keys)
        self.producer = params["producer"]
        consumers = params["consumers"]
        self.write_cursor = 0
        self.read_cursors: Dict[int, int] = {c: 0 for c in consumers}
        self.consumer_pc = {
            consumer: self._pc_site(1 + rank % 4)
            for rank, consumer in enumerate(consumers)
        }

    def _sample_seq(self, nodes, m):
        self._advance(m)
        nb = self.n_blocks
        base, bs = self.base, self.block_size
        producer = self.producer
        pc_write = self._pc_site(0)
        write_cursor = self.write_cursor
        read_cursors = self.read_cursors
        addrs, writes, pcs = [], [], []
        for i in range(m):
            node = nodes[i]
            if node == producer:
                block = write_cursor
                write_cursor = (write_cursor + 1) % nb
                writes.append(1)
                pcs.append(pc_write)
            else:
                cursor = read_cursors[node]
                if cursor == write_cursor:
                    cursor = (write_cursor - 1) % nb
                read_cursors[node] = (cursor + 1) % nb
                block = cursor
                writes.append(0)
                pcs.append(self.consumer_pc[node])
            addrs.append(base + block * bs)
        self.write_cursor = write_cursor
        return addrs, writes, pcs

    def sample_py(self, nodes, m):
        return self._sample_seq(nodes, m)

    def sample_np(self, np_, nodes, m):
        return self._sample_seq(nodes.tolist(), m)


class _ReadMostlySampler(_Sampler):
    """Widely shared hot-block data with rare writes."""

    def __init__(self, region, keys, params):
        super().__init__(region, keys)
        self.t_write = _fraction_threshold(params["write_fraction"])
        self.zipf = _ZipfThresholds(self.n_blocks, params["exponent"])

    def sample_py(self, nodes, m):
        j0 = self._advance(m)
        a53 = _draws53_py(self.keys[1], j0, m)
        w53 = _draws53_py(self.keys[2], j0, m)
        base, bs = self.base, self.block_size
        zipf_sample = self.zipf.sample_py
        pc_write = self._pc_site(0)
        addrs, writes, pcs = [], [], []
        for i in range(m):
            block = zipf_sample(a53[i])
            addrs.append(base + block * bs)
            if w53[i] < self.t_write:
                writes.append(1)
                pcs.append(pc_write)
            else:
                writes.append(0)
                pcs.append(self._pc_site(1 + block % 3))
        return addrs, writes, pcs

    def sample_np(self, np_, nodes, m):
        j0 = self._advance(m)
        block = self.zipf.sample_np(
            np_, _draws53_np(np_, self.keys[1], j0, m)
        )
        write = _draws53_np(np_, self.keys[2], j0, m) < self.t_write
        site = np_.where(write, 0, (1 + block % 3) % self.n_pc_sites)
        pcs = self.pc_base + site * _PC_STRIDE
        return (
            self.base + block * self.block_size,
            write.astype(np_.int64),
            pcs,
        )


_SAMPLERS = {
    "private": _PrivateSampler,
    "migratory": _MigratorySampler,
    "producer-consumer": _ProducerConsumerSampler,
    "read-mostly": _ReadMostlySampler,
}


# ----------------------------------------------------------------------
# The chunked source
# ----------------------------------------------------------------------
class ChunkedReferenceSource:
    """Generates a workload's reference stream as column chunks.

    Construct one per generation run: samplers carry cross-chunk
    region state, so a source must not be reused for a second stream.
    """

    def __init__(self, model):
        config = model.config
        self.n_processors = config.n_processors
        ipr = model.instructions_per_reference
        self.gap_lo = max(1, ipr // 2)
        self.gap_span = max(1, ipr + ipr // 2) - self.gap_lo + 1
        seed, name = model.seed, model.name
        self.key_select = derive_seed(seed, name, "chunks", "select")
        self.key_gap = derive_seed(seed, name, "chunks", "gap")

        regions = [region for region, _ in model.regions]
        self.samplers = []
        for index, region in enumerate(regions):
            kind, params = region.batch_spec()
            keys = tuple(
                derive_seed(seed, name, "chunks", "region", index, lane)
                for lane in range(4)
            )
            self.samplers.append(_SAMPLERS[kind](region, keys, params))

        # Per-node region-selection threshold tables (floats in [0, 1),
        # built once in pure Python so both backends share bits), plus
        # the eligible regions' global indices — both derived from the
        # model's canonical eligibility tables.
        self.node_thresholds: List[List[float]] = []
        self.node_region_ids: List[List[int]] = []
        for indices, cumulative in model.node_region_tables():
            total = cumulative[-1]
            self.node_thresholds.append(
                [value / total for value in cumulative[:-1]]
            )
            self.node_region_ids.append(list(indices))
        self._node_thresholds_np = None
        self._node_region_ids_np = None

    # ------------------------------------------------------------------
    def chunks(
        self,
        n_references: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Iterator[ReferenceChunk]:
        """Yield the stream's column chunks, in order."""
        if n_references < 0:
            raise ValueError("n_references must be non-negative")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        start = 0
        while start < n_references:
            size = min(chunk_size, n_references - start)
            np_ = _columns.numpy_module()
            if np_ is not None:
                yield self._chunk_np(np_, start, size)
            else:
                yield self._chunk_py(start, size)
            start += size

    # ------------------------------------------------------------------
    def _chunk_np(self, np_, start: int, m: int) -> ReferenceChunk:
        if self._node_thresholds_np is None:
            self._node_thresholds_np = [
                np_.asarray(t, dtype=np_.float64)
                for t in self.node_thresholds
            ]
            self._node_region_ids_np = [
                np_.asarray(ids, dtype=np_.int64)
                for ids in self.node_region_ids
            ]
        n_procs = self.n_processors
        select_u = (
            _draws53_np(np_, self.key_select, start, m).astype(
                np_.float64
            )
            * _U53_SCALE
        )
        gaps = (
            self.gap_lo
            + _draws53_np(np_, self.key_gap, start, m) % self.gap_span
        )
        nodes = np_.arange(start, start + m, dtype=np_.int64) % n_procs
        region_ids = np_.empty(m, dtype=np_.int64)
        for node in range(n_procs):
            lanes = slice((node - start) % n_procs, m, n_procs)
            local = np_.searchsorted(
                self._node_thresholds_np[node],
                select_u[lanes],
                side="right",
            )
            region_ids[lanes] = self._node_region_ids_np[node][local]

        # Group positions by region (stable: ascending within each
        # group) and let each region fill its slice of the columns.
        order = np_.argsort(region_ids, kind="stable")
        sorted_ids = region_ids[order]
        breaks = np_.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
        starts = np_.concatenate(([0], breaks))
        ends = np_.concatenate((breaks, [m]))
        addresses = np_.empty(m, dtype=np_.int64)
        pcs = np_.empty(m, dtype=np_.int64)
        writes = np_.empty(m, dtype=np_.int64)
        for lo, hi in zip(starts, ends):
            positions = order[lo:hi]
            sampler = self.samplers[int(sorted_ids[lo])]
            addr, write, pc = sampler.sample_np(
                np_, nodes[positions], int(hi - lo)
            )
            addresses[positions] = addr
            writes[positions] = write
            pcs[positions] = pc
        return ReferenceChunk(
            nodes.tolist(),
            None,
            pcs.tolist(),
            writes.tolist(),
            gaps.tolist(),
            addresses_np=addresses,
        )

    # ------------------------------------------------------------------
    def _chunk_py(self, start: int, m: int) -> ReferenceChunk:
        n_procs = self.n_processors
        select = _draws53_py(self.key_select, start, m)
        gap53 = _draws53_py(self.key_gap, start, m)
        gap_lo, gap_span = self.gap_lo, self.gap_span
        thresholds = self.node_thresholds
        region_ids_by_node = self.node_region_ids
        by_region: Dict[int, List[int]] = {}
        nodes = []
        for i in range(m):
            node = (start + i) % n_procs
            nodes.append(node)
            local = bisect_right(
                thresholds[node], select[i] * _U53_SCALE
            )
            region = region_ids_by_node[node][local]
            positions = by_region.get(region)
            if positions is None:
                by_region[region] = [i]
            else:
                positions.append(i)

        addresses = [0] * m
        pcs = [0] * m
        writes = [0] * m
        for region in sorted(by_region):
            positions = by_region[region]
            addr, write, pc = self.samplers[region].sample_py(
                [nodes[i] for i in positions], len(positions)
            )
            for offset, i in enumerate(positions):
                addresses[i] = addr[offset]
                writes[i] = write[offset]
                pcs[i] = pc[offset]
        return ReferenceChunk(
            nodes,
            addresses,
            pcs,
            writes,
            [gap_lo + value % gap_span for value in gap53],
        )
