"""Workload registry: name -> model factory."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Type

from repro.common.params import SystemConfig
from repro.workloads.apache import ApacheWorkload
from repro.workloads.barnes_hut import BarnesHutWorkload
from repro.workloads.base import WorkloadModel
from repro.workloads.ocean import OceanWorkload
from repro.workloads.oltp import OltpWorkload
from repro.workloads.slashcode import SlashcodeWorkload
from repro.workloads.specjbb import SpecJbbWorkload

_REGISTRY: Dict[str, Type[WorkloadModel]] = {
    cls.name: cls
    for cls in (
        ApacheWorkload,
        BarnesHutWorkload,
        OceanWorkload,
        OltpWorkload,
        SlashcodeWorkload,
        SpecJbbWorkload,
    )
}

#: Workload names in the paper's presentation order.
WORKLOAD_NAMES = tuple(
    sorted(_REGISTRY, key=lambda name: name)
)


def create_workload(
    name: str,
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    scale: float = 1.0 / 32.0,
) -> WorkloadModel:
    """Instantiate the workload model registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown workload {name!r}; known: {known}")
    return factory(config=config, seed=seed, scale=scale)


def iter_workloads(
    config: Optional[SystemConfig] = None,
    seed: int = 42,
    scale: float = 1.0 / 32.0,
) -> Iterator[WorkloadModel]:
    """Instantiate every registered workload, in name order."""
    for name in WORKLOAD_NAMES:
        yield create_workload(name, config=config, seed=seed, scale=scale)
