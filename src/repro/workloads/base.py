"""Workload-model framework.

A :class:`WorkloadModel` composes weighted sharing-pattern regions
(:mod:`repro.workloads.patterns`) into per-processor memory-reference
streams.  Each model carries the paper's published properties
(Table 2) for its workload, so analyses can report
"paper vs. reproduced" side by side.

Scaling: the paper simulates 4 MB L2s and hundreds of megabytes of
footprint with a C simulator; a pure-Python pipeline reproduces the
same *ratios* at ``scale`` (default 1/32) — footprints and cache sizes
shrink together, preserving the capacity-miss/sharing-miss balance
that determines every result shape in the paper.  Weights are
calibrated at the default scale; other scales keep the qualitative
shapes but drift a few points.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.cache.pipeline import CollectionResult, TraceCollector
from repro.cache.reference import MemoryReference
from repro.common.params import SystemConfig
from repro.common.rng import make_rng
from repro.common.types import NodeId
from repro.workloads.patterns import AddressSpaceAllocator, Region

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.genchunks import ReferenceChunk


@dataclasses.dataclass(frozen=True)
class PaperProperties:
    """Published Table 2 row for a workload (the reproduction target)."""

    footprint_mb: float
    macroblock_footprint_mb: float
    static_miss_pcs: int
    total_misses_millions: float
    misses_per_kilo_instr: float
    directory_indirection_pct: float


#: A region together with its selection weight.  Weights are relative
#: per-member propensities: a node picks among its eligible regions
#: with probability proportional to weight.
WeightedRegion = Tuple[Region, float]


class WorkloadModel(abc.ABC):
    """Base class for the six synthetic workload models."""

    #: Workload name, e.g. ``"apache"``.
    name: str = ""
    #: One-line description of what is being modelled.
    description: str = ""
    #: The paper's Table 2 row for this workload.
    paper: PaperProperties
    #: Instructions between successive memory references (calibrated
    #: per workload so misses-per-1,000-instructions lands near the
    #: paper's value).
    instructions_per_reference: int = 10

    def __init__(
        self,
        config: SystemConfig | None = None,
        seed: int = 42,
        scale: float = 1.0 / 32.0,
    ):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.config = config if config is not None else SystemConfig()
        self.seed = seed
        self.scale = scale
        allocator = AddressSpaceAllocator(
            alignment=self.config.macroblock_size
        )
        self._regions: List[WeightedRegion] = list(self._build(allocator))
        if not self._regions:
            raise ValueError(f"workload {self.name!r} built no regions")
        self._node_tables = self._build_node_tables()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build(
        self, alloc: AddressSpaceAllocator
    ) -> Sequence[WeightedRegion]:
        """Construct the workload's weighted regions."""

    # ------------------------------------------------------------------
    @property
    def regions(self) -> List[WeightedRegion]:
        """The weighted regions composing this workload."""
        return list(self._regions)

    def scaled_blocks(self, paper_bytes: float) -> int:
        """Scale a paper-sized byte count to blocks at ``self.scale``."""
        blocks = int(paper_bytes * self.scale) // self.config.block_size
        return max(1, blocks)

    def scaled_config(self) -> SystemConfig:
        """A :class:`SystemConfig` with caches shrunk by ``scale``.

        Cache sizes are rounded to the nearest power of two at least
        ``associativity`` blocks so the set math stays valid.
        """
        return dataclasses.replace(
            self.config,
            l1d_size=self._scale_pow2(self.config.l1d_size),
            l1i_size=self._scale_pow2(self.config.l1i_size),
            l2_size=self._scale_pow2(self.config.l2_size),
        )

    def references(self, n_references: int) -> Iterator[MemoryReference]:
        """Generate ``n_references`` memory references, round-robin.

        Round-robin issue across processors models the paper's
        totally-ordered interconnect arbitrating among concurrently
        issuing processors.
        """
        rng = make_rng(self.seed, self.name, "references")
        n_procs = self.config.n_processors
        ipr = self.instructions_per_reference
        lo, hi = max(1, ipr // 2), max(1, ipr + ipr // 2)
        for i in range(n_references):
            node = i % n_procs
            regions, cum_weights = self._node_tables[node]
            region = rng.choices(regions, cum_weights=cum_weights, k=1)[0]
            access = region.access(node, rng)
            yield MemoryReference(
                node=node,
                address=access.address,
                pc=access.pc,
                is_write=access.is_write,
                instructions=rng.randint(lo, hi),
            )

    def reference_chunks(
        self, n_references: int, chunk_size: Optional[int] = None
    ) -> "Iterator[ReferenceChunk]":
        """Generate the reference stream as column chunks.

        The batched fast path: the same round-robin node schedule as
        :meth:`references`, but synthesized by the chunked engine
        (:mod:`repro.workloads.genchunks`) — vectorized region
        sampling and address draws under numpy, with a byte-identical
        pure-Python fallback (``REPRO_PURE_PYTHON=1``).  The chunked
        stream has its own ``make_rng``-style determinism contract
        (seed + workload name + stream label), so it is reproducible
        but not record-for-record equal to the scalar oracle stream.
        """
        from repro.workloads.genchunks import (
            DEFAULT_CHUNK_SIZE,
            ChunkedReferenceSource,
        )

        if chunk_size is None:
            chunk_size = DEFAULT_CHUNK_SIZE
        source = ChunkedReferenceSource(self)
        return source.chunks(n_references, chunk_size)

    def collect(
        self, n_references: int, batched: bool = True
    ) -> CollectionResult:
        """Run the reference stream through the scaled cache pipeline.

        Returns the L2-miss coherence trace plus instruction counters —
        the direct analogue of the paper's Simics trace collection.
        ``batched=True`` (the default) generates and filters the
        stream in column chunks; ``batched=False`` runs the original
        record-at-a-time oracle path.
        """
        collector = TraceCollector(self.scaled_config(), name=self.name)
        if batched:
            return collector.run_chunks(
                self.reference_chunks(n_references)
            )
        return collector.run(self.references(n_references))

    # ------------------------------------------------------------------
    def node_region_tables(
        self,
    ) -> List[Tuple[List[int], List[float]]]:
        """Per-node eligible region indices and cumulative weights.

        The single source of truth for region eligibility (membership
        and positive weight), shared by the scalar generator's
        ``rng.choices`` tables and the chunked engine's threshold
        tables.  Indices refer to :attr:`regions` order.
        """
        tables: List[Tuple[List[int], List[float]]] = []
        for node in range(self.config.n_processors):
            indices: List[int] = []
            cumulative: List[float] = []
            total = 0.0
            for index, (region, weight) in enumerate(self._regions):
                if node in region.members and weight > 0:
                    indices.append(index)
                    total += weight
                    cumulative.append(total)
            if not indices:
                raise ValueError(
                    f"workload {self.name!r}: node {node} has no regions"
                )
            tables.append((indices, cumulative))
        return tables

    def _build_node_tables(
        self,
    ) -> List[Tuple[List[Region], List[float]]]:
        return [
            ([self._regions[i][0] for i in indices], cumulative)
            for indices, cumulative in self.node_region_tables()
        ]

    def _scale_pow2(self, size: int) -> int:
        scaled = max(4096, int(size * self.scale))
        power = 1
        while power < scaled:
            power <<= 1
        return power

    # ------------------------------------------------------------------
    def node_pool(
        self, rng_label: str, pool_size: int, index: int
    ) -> List[NodeId]:
        """A deterministic pseudo-random pool of ``pool_size`` nodes."""
        rng = make_rng(self.seed, self.name, rng_label, index)
        nodes = list(range(self.config.n_processors))
        rng.shuffle(nodes)
        return sorted(nodes[:pool_size])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(seed={self.seed}, scale={self.scale}, "
            f"regions={len(self._regions)})"
        )
