"""Synthetic workload models.

The paper traces six workloads (Apache, Barnes-Hut, Ocean, OLTP,
Slashcode, SPECjbb) under Simics/Solaris — software stacks we cannot
run.  This subpackage substitutes *synthetic workload models*: each
model composes the sharing-pattern primitives that the paper's own
Section 2 identifies (private data, migratory locks, producer-consumer
buffers, widely shared read-mostly structures), with mixture weights
and footprints calibrated so the model reproduces the published
workload properties (Table 2) and sharing behaviour (Figures 2-4).

Destination-set predictors observe only the coherence-request stream,
so a stream with matched sharing statistics exercises the same
predictor/protocol behaviour as the original traces.
"""

from repro.workloads.base import PaperProperties, WorkloadModel
from repro.workloads.patterns import (
    Access,
    MigratoryRegion,
    PrivateRegion,
    ProducerConsumerRegion,
    ReadMostlyRegion,
    Region,
)
from repro.workloads.registry import (
    WORKLOAD_NAMES,
    create_workload,
    iter_workloads,
)

__all__ = [
    "Access",
    "MigratoryRegion",
    "PaperProperties",
    "PrivateRegion",
    "ProducerConsumerRegion",
    "ReadMostlyRegion",
    "Region",
    "WORKLOAD_NAMES",
    "WorkloadModel",
    "create_workload",
    "iter_workloads",
]
