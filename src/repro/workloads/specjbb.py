"""SPECjbb — server-side Java middleware benchmark (paper Table 1).

Modelled behaviours: per-warehouse object heaps (SPECjbb partitions
work into warehouses, one per driver thread, so most data is
effectively private but far larger than the cache — the paper's
largest footprint at 341 MB with 41% indirections), plus shared
read-mostly company-wide structures and migratory order records.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.base import PaperProperties, WeightedRegion, WorkloadModel
from repro.workloads.patterns import (
    AddressSpaceAllocator,
    MigratoryRegion,
    PrivateRegion,
    ReadMostlyRegion,
)

KB = 1024
MB = 1024 * KB


class SpecJbbWorkload(WorkloadModel):
    """Server-side Java: warehouse-partitioned heaps, modest sharing."""

    name = "specjbb"
    description = "SPECjbb2000, HotSpot JVM, 24 warehouses"
    paper = PaperProperties(
        footprint_mb=341,
        macroblock_footprint_mb=558,
        static_miss_pcs=24023,
        total_misses_millions=21,
        misses_per_kilo_instr=3.3,
        directory_indirection_pct=41,
    )
    instructions_per_reference = 200

    def _build(
        self, alloc: AddressSpaceAllocator
    ) -> Sequence[WeightedRegion]:
        config = self.config
        n = config.n_processors
        regions: List[WeightedRegion] = []

        # Warehouse heaps: one per node, much larger than the cache,
        # accessed with a mix of reuse and allocation-sweep streaming
        # (JVM allocation is sequential through the nursery).
        for node in range(n):
            blocks = self.scaled_blocks(19 * MB)
            regions.append(
                (
                    PrivateRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        owner=node,
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.4,
                        streaming_fraction=0.5,
                    ),
                    0.44,
                )
            )

        # Company-wide structures: read-mostly, shared by all.
        for index in range(6):
            blocks = self.scaled_blocks(1.5 * MB)
            regions.append(
                (
                    ReadMostlyRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        members=range(n),
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.03,
                    ),
                    0.30 / 6,
                )
            )

        # Order records handed between warehouses: migratory.
        for index in range(96):
            pool = self.node_pool("orders", 2 + index % 5, index)
            regions.append(
                (
                    MigratoryRegion(
                        base=alloc.allocate(4 * config.block_size),
                        n_blocks=4,
                        block_size=config.block_size,
                        pool=pool,
                        pc_base=alloc.allocate_pc_range(),
                    ),
                    0.32 / 96 * len(pool),
                )
            )
        return regions
