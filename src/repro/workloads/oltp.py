"""OLTP — DB2 running a TPC-C-like workload (paper Table 1).

Modelled behaviours: migratory row/lock data (transactions handing rows
between processors), a widely read B-tree index with occasional splits,
a shared log written by all and read by the log writer, and per-node
buffer-pool streaming.  Paper Table 2 row: 57 MB footprint, 7.0
misses/1k instructions (the highest miss rate), 73% directory
indirections.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.workloads.base import PaperProperties, WeightedRegion, WorkloadModel
from repro.workloads.patterns import (
    AddressSpaceAllocator,
    MigratoryRegion,
    PrivateRegion,
    ProducerConsumerRegion,
    ReadMostlyRegion,
)

KB = 1024
MB = 1024 * KB


class OltpWorkload(WorkloadModel):
    """TPC-C on DB2: migratory rows, shared index, streaming buffers."""

    name = "oltp"
    description = "OLTP: DB2 v7.2 with a TPC-C-like workload, 128 users"
    paper = PaperProperties(
        footprint_mb=57,
        macroblock_footprint_mb=125,
        static_miss_pcs=21921,
        total_misses_millions=18,
        misses_per_kilo_instr=7.0,
        directory_indirection_pct=73,
    )
    instructions_per_reference = 90

    def _build(
        self, alloc: AddressSpaceAllocator
    ) -> Sequence[WeightedRegion]:
        config = self.config
        n = config.n_processors
        regions: List[WeightedRegion] = []

        # Row/lock data: migratory among the transactions touching it.
        for index in range(192):
            pool = self.node_pool("rows", 2 + index % 3, index)
            regions.append(
                (
                    MigratoryRegion(
                        base=alloc.allocate(2 * config.block_size),
                        n_blocks=2,
                        block_size=config.block_size,
                        pool=pool,
                        pc_base=alloc.allocate_pc_range(),
                    ),
                    0.55 / 192 * len(pool),
                )
            )

        # B-tree index: read by all, occasionally split/updated.
        for index in range(8):
            blocks = self.scaled_blocks(800 * KB)
            regions.append(
                (
                    ReadMostlyRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        members=range(n),
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.04,
                    ),
                    0.28 / 8,
                )
            )

        # Log buffers: each node group appends, the log writer reads.
        for index in range(4):
            producer = (index * 4 + 1) % n
            consumers = [index * 4 % n]
            blocks = self.scaled_blocks(256 * KB)
            regions.append(
                (
                    ProducerConsumerRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        producer=producer,
                        consumers=consumers,
                        pc_base=alloc.allocate_pc_range(),
                    ),
                    0.12,
                )
            )

        # Buffer pool: per-node streaming scans -> capacity misses.
        for node in range(n):
            blocks = self.scaled_blocks(4.8 * MB)
            regions.append(
                (
                    PrivateRegion(
                        base=alloc.allocate(blocks * config.block_size),
                        n_blocks=blocks,
                        block_size=config.block_size,
                        owner=node,
                        pc_base=alloc.allocate_pc_range(),
                        write_fraction=0.2,
                        streaming_fraction=0.95,
                    ),
                    0.08,
                )
            )
        return regions
