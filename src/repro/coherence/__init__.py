"""Global MOSI coherence state.

The substrate beneath both the trace-driven evaluation (Section 4) and
the timing simulation (Section 5): an oracle view of which node owns
each block and which nodes share it.  From this state we derive

- the **required destination set** of each request (the processors that
  must observe it for the request to succeed),
- whether a directory protocol would **indirect** the request, and
- whether a multicast destination set is **sufficient** (paper
  Section 4.1).
"""

from repro.coherence.state import (
    BlockState,
    CoherenceOutcome,
    GlobalCoherenceState,
)
from repro.coherence.sufficiency import is_sufficient, minimal_set, required_set

__all__ = [
    "BlockState",
    "CoherenceOutcome",
    "GlobalCoherenceState",
    "is_sufficient",
    "minimal_set",
    "required_set",
]
