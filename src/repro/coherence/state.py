"""Global per-block MOSI ownership/sharing state.

In a MOSI write-invalidate protocol (paper Section 3) each block has at
most one **owner** — a processor holding the block in M (Modified) or O
(Owned) state, or the memory/home module when no processor does — and a
set of **sharers** holding read-only S copies.

:class:`GlobalCoherenceState` is the omniscient view a directory would
have if it were perfect, and is what the multicast-snooping home node
consults to decide whether a destination set was sufficient.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.common.destset import DestinationSet
from repro.common.types import (
    AccessType,
    Address,
    MEMORY_NODE,
    NodeId,
)
from repro.trace.record import TraceRecord


@dataclasses.dataclass
class BlockState:
    """Ownership state of one cache block.

    ``owner`` is ``MEMORY_NODE`` when memory owns the block (no M/O
    copy outstanding); ``sharers`` holds processors with S copies.  In
    MOSI an owning processor may simultaneously appear in ``sharers``
    conceptually; we keep the owner out of the sharer set and treat
    "holds a readable copy" as ``owner == p or p in sharers``.
    """

    owner: NodeId = MEMORY_NODE
    sharers: frozenset = frozenset()

    def holders(self) -> frozenset:
        """All processors with a valid copy (owner + sharers)."""
        if self.owner == MEMORY_NODE:
            return self.sharers
        return self.sharers | {self.owner}

    def is_cached(self, node: NodeId) -> bool:
        """True if ``node`` holds a readable copy."""
        return node == self.owner or node in self.sharers


@dataclasses.dataclass(frozen=True)
class CoherenceOutcome:
    """What happened when a request was applied to the global state.

    Attributes:
        record: the request.
        owner_before: owner at the time the request was ordered.
        sharers_before: sharers at that time (excluding the owner).
        responder: node that supplies the data (``MEMORY_NODE`` if the
            home memory responds).
        required: processors *other than the requester* that had to
            observe the request (the owner if it is a processor, plus
            all sharers for GETX).
        directory_indirection: True if a directory protocol would have
            had to forward this request to at least one processor —
            i.e. the miss is a cache-to-cache (or invalidation) miss.
    """

    record: TraceRecord
    owner_before: NodeId
    sharers_before: frozenset
    responder: NodeId
    required: DestinationSet
    directory_indirection: bool

    @property
    def is_cache_to_cache(self) -> bool:
        """True if the data came from another processor's cache."""
        return self.responder != MEMORY_NODE


class GlobalCoherenceState:
    """Tracks owner/sharers for every block and applies requests.

    This class is deliberately *protocol free*: it models the logical
    MOSI state transitions that any of the three protocols (snooping,
    directory, multicast snooping) would ultimately produce, because
    all three enforce the same write-invalidate semantics over the same
    totally-ordered request stream.
    """

    def __init__(self, n_processors: int, block_size: int = 64):
        if n_processors <= 0:
            raise ValueError("n_processors must be positive")
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        self._n = n_processors
        self._block_size = block_size
        self._blocks: Dict[Address, BlockState] = {}

    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        return self._n

    @property
    def block_size(self) -> int:
        return self._block_size

    def lookup(self, address: Address) -> BlockState:
        """Current state of the block containing ``address``."""
        return self._blocks.get(
            self._align(address), BlockState()
        )

    def n_tracked_blocks(self) -> int:
        """Number of blocks with non-default state."""
        return len(self._blocks)

    # ------------------------------------------------------------------
    def apply(self, record: TraceRecord) -> CoherenceOutcome:
        """Order ``record``, update state, and report the outcome."""
        if not 0 <= record.requester < self._n:
            raise ValueError(
                f"requester {record.requester} outside [0, {self._n})"
            )
        block = self._align(record.address)
        state = self._blocks.get(block, BlockState())
        requester = record.requester

        required_nodes = set()
        if state.owner != MEMORY_NODE and state.owner != requester:
            required_nodes.add(state.owner)
        if record.access is AccessType.GETX:
            required_nodes |= state.sharers - {requester}

        responder = self._responder(state, requester)

        if record.access is AccessType.GETS:
            new_state = self._apply_gets(state, requester)
        else:
            new_state = BlockState(owner=requester, sharers=frozenset())
        self._blocks[block] = new_state

        required = DestinationSet.from_nodes(self._n, required_nodes)
        return CoherenceOutcome(
            record=record,
            owner_before=state.owner,
            sharers_before=state.sharers,
            responder=responder,
            required=required,
            directory_indirection=not required.is_empty(),
        )

    def evict(self, node: NodeId, address: Address) -> None:
        """Model an L2 eviction of ``address`` by ``node``.

        Owner evictions write the block back to memory (owner becomes
        the memory module); sharer evictions silently drop the copy.
        """
        block = self._align(address)
        state = self._blocks.get(block)
        if state is None:
            return
        if state.owner == node:
            self._blocks[block] = BlockState(
                owner=MEMORY_NODE, sharers=state.sharers
            )
        elif node in state.sharers:
            self._blocks[block] = BlockState(
                owner=state.owner, sharers=state.sharers - {node}
            )

    # ------------------------------------------------------------------
    def _apply_gets(self, state: BlockState, requester: NodeId) -> BlockState:
        if state.owner == requester:
            # Refetch by the owner (e.g. after an upgrade race); no change.
            return state
        # MOSI: a processor owner keeps ownership (M -> O) and the
        # requester joins the sharers; a memory owner stays the owner.
        return BlockState(
            owner=state.owner, sharers=state.sharers | {requester}
        )

    @staticmethod
    def _responder(state: BlockState, requester: NodeId) -> NodeId:
        if state.owner == MEMORY_NODE or state.owner == requester:
            return MEMORY_NODE
        return state.owner

    def _align(self, address: Address) -> Address:
        return address & ~(self._block_size - 1)
