"""Global per-block MOSI ownership/sharing state.

In a MOSI write-invalidate protocol (paper Section 3) each block has at
most one **owner** — a processor holding the block in M (Modified) or O
(Owned) state, or the memory/home module when no processor does — and a
set of **sharers** holding read-only S copies.

:class:`GlobalCoherenceState` is the omniscient view a directory would
have if it were perfect, and is what the multicast-snooping home node
consults to decide whether a destination set was sufficient.

Storage is allocation-light: each tracked block maps to an
``(owner, sharers_bitmask)`` tuple, and the hot-path entry point
:meth:`GlobalCoherenceState.apply_fast` works entirely in scalars.
The record-oriented :meth:`apply`/:meth:`lookup` API is preserved on
top of it for analyses, tests, and hand-written consumers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

from repro.common.destset import DestinationSet
from repro.common.types import (
    AccessType,
    Address,
    MEMORY_NODE,
    NodeId,
)
from repro.trace.record import TraceRecord


def _bits_to_frozenset(bits: int) -> frozenset:
    nodes = []
    while bits:
        low = bits & -bits
        nodes.append(low.bit_length() - 1)
        bits ^= low
    return frozenset(nodes)


@dataclasses.dataclass
class BlockState:
    """Ownership state of one cache block.

    ``owner`` is ``MEMORY_NODE`` when memory owns the block (no M/O
    copy outstanding); ``sharers`` holds processors with S copies.  In
    MOSI an owning processor may simultaneously appear in ``sharers``
    conceptually; we keep the owner out of the sharer set and treat
    "holds a readable copy" as ``owner == p or p in sharers``.
    """

    owner: NodeId = MEMORY_NODE
    sharers: frozenset = frozenset()

    def holders(self) -> frozenset:
        """All processors with a valid copy (owner + sharers)."""
        if self.owner == MEMORY_NODE:
            return self.sharers
        return self.sharers | {self.owner}

    def is_cached(self, node: NodeId) -> bool:
        """True if ``node`` holds a readable copy."""
        return node == self.owner or node in self.sharers


@dataclasses.dataclass(frozen=True)
class CoherenceOutcome:
    """What happened when a request was applied to the global state.

    Attributes:
        record: the request.
        owner_before: owner at the time the request was ordered.
        sharers_before: sharers at that time (excluding the owner).
        responder: node that supplies the data (``MEMORY_NODE`` if the
            home memory responds).
        required: processors *other than the requester* that had to
            observe the request (the owner if it is a processor, plus
            all sharers for GETX).
        directory_indirection: True if a directory protocol would have
            had to forward this request to at least one processor —
            i.e. the miss is a cache-to-cache (or invalidation) miss.
    """

    record: TraceRecord
    owner_before: NodeId
    sharers_before: frozenset
    responder: NodeId
    required: DestinationSet
    directory_indirection: bool

    @property
    def is_cache_to_cache(self) -> bool:
        """True if the data came from another processor's cache."""
        return self.responder != MEMORY_NODE


class GlobalCoherenceState:
    """Tracks owner/sharers for every block and applies requests.

    This class is deliberately *protocol free*: it models the logical
    MOSI state transitions that any of the three protocols (snooping,
    directory, multicast snooping) would ultimately produce, because
    all three enforce the same write-invalidate semantics over the same
    totally-ordered request stream.
    """

    __slots__ = ("_n", "_block_size", "_blocks")

    def __init__(self, n_processors: int, block_size: int = 64):
        if n_processors <= 0:
            raise ValueError("n_processors must be positive")
        if block_size <= 0 or block_size & (block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        self._n = n_processors
        self._block_size = block_size
        #: block address -> (owner, sharers bitmask); owner is
        #: MEMORY_NODE (-1) when memory owns the block.
        self._blocks: Dict[Address, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        return self._n

    @property
    def block_size(self) -> int:
        return self._block_size

    def lookup(self, address: Address) -> BlockState:
        """Current state of the block containing ``address``."""
        entry = self._blocks.get(self._align(address))
        if entry is None:
            return BlockState()
        return BlockState(entry[0], _bits_to_frozenset(entry[1]))

    def lookup_fast(self, address: Address) -> Tuple[int, int]:
        """``(owner, sharers_bitmask)`` of the block (hot path)."""
        entry = self._blocks.get(self._align(address))
        return entry if entry is not None else (MEMORY_NODE, 0)

    def n_tracked_blocks(self) -> int:
        """Number of blocks with non-default state."""
        return len(self._blocks)

    # ------------------------------------------------------------------
    def apply_fast(
        self, block: Address, requester: NodeId, is_getx: int
    ) -> Tuple[int, int, int, int]:
        """Order one request on ``block`` and update state, in scalars.

        ``block`` must already be block-aligned and ``requester``
        already validated.  Returns ``(owner_before,
        sharers_before_bits, responder, required_bits)`` — the owner is
        ``MEMORY_NODE`` (-1) when memory owned the block, and the
        responder likewise when memory supplies the data.
        """
        blocks = self._blocks
        entry = blocks.get(block)
        if entry is None:
            owner, sharers = MEMORY_NODE, 0
        else:
            owner, sharers = entry

        if owner >= 0 and owner != requester:
            required = 1 << owner
            responder = owner
        else:
            required = 0
            responder = MEMORY_NODE
        if is_getx:
            required |= sharers & ~(1 << requester)
            blocks[block] = (requester, 0)
        elif owner != requester:
            # MOSI: a processor owner keeps ownership (M -> O) and the
            # requester joins the sharers; a memory owner stays owner.
            blocks[block] = (owner, sharers | 1 << requester)
        # (GETS by the current owner — e.g. a refetch after an upgrade
        # race — leaves the state unchanged.)
        return owner, sharers, responder, required

    def apply(self, record: TraceRecord) -> CoherenceOutcome:
        """Order ``record``, update state, and report the outcome."""
        if not 0 <= record.requester < self._n:
            raise ValueError(
                f"requester {record.requester} outside [0, {self._n})"
            )
        owner, sharers, responder, required = self.apply_fast(
            self._align(record.address),
            record.requester,
            record.access is AccessType.GETX,
        )
        return CoherenceOutcome(
            record=record,
            owner_before=owner,
            sharers_before=_bits_to_frozenset(sharers),
            responder=responder,
            required=DestinationSet._from_bits(self._n, required),
            directory_indirection=required != 0,
        )

    def evict(self, node: NodeId, address: Address) -> None:
        """Model an L2 eviction of ``address`` by ``node``.

        Owner evictions write the block back to memory (owner becomes
        the memory module); sharer evictions silently drop the copy.
        """
        block = self._align(address)
        entry = self._blocks.get(block)
        if entry is None:
            return
        owner, sharers = entry
        if owner == node:
            self._blocks[block] = (MEMORY_NODE, sharers)
        elif sharers >> node & 1:
            self._blocks[block] = (owner, sharers & ~(1 << node))

    # ------------------------------------------------------------------
    def _align(self, address: Address) -> Address:
        return address & ~(self._block_size - 1)
