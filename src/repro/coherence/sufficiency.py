"""Destination-set sufficiency (paper Section 4.1).

"A destination set is sufficient in multicast snooping if it includes
the requester, the home node, the owner of the block, and, if the
request is for write permission, all processors sharing the block."

The **minimal destination set** always includes the requester and the
home node, so sufficiency reduces to: does the multicast mask cover the
(processor) owner and, for GETX, all sharers?
"""

from __future__ import annotations

from repro.common.destset import DestinationSet
from repro.common.types import (
    AccessType,
    Address,
    MEMORY_NODE,
    NodeId,
    home_node,
)
from repro.coherence.state import BlockState


def minimal_set(
    requester: NodeId,
    address: Address,
    n_processors: int,
    block_size: int = 64,
) -> DestinationSet:
    """The minimal destination set: the requester plus the home node."""
    home = home_node(address, n_processors, block_size)
    return DestinationSet.of(n_processors, requester, home)


def required_set(
    state: BlockState,
    requester: NodeId,
    access: AccessType,
    n_processors: int,
) -> DestinationSet:
    """Processors (other than the requester) that must see the request."""
    nodes = set()
    if state.owner != MEMORY_NODE and state.owner != requester:
        nodes.add(state.owner)
    if access is AccessType.GETX:
        nodes |= state.sharers - {requester}
    return DestinationSet.from_nodes(n_processors, nodes)


def is_sufficient(
    destination: DestinationSet,
    state: BlockState,
    requester: NodeId,
    access: AccessType,
    address: Address,
    block_size: int = 64,
) -> bool:
    """True if ``destination`` would let the request succeed directly.

    ``destination`` is checked against the full Section 4.1 definition:
    it must contain the requester, the home node, the owner (when a
    processor owns the block) and, for GETX, every sharer.
    """
    n = destination.n_nodes
    home = home_node(address, n, block_size)
    if not destination.contains(requester) or not destination.contains(home):
        return False
    needed = required_set(state, requester, access, n)
    return destination.is_superset_of(needed)
