"""Unified simulation-backend selection (``REPRO_BACKEND``).

One switch selects how the hot loops execute:

- ``pure``   — pure-Python derived columns and replay loops (the
  dependency-free floor; what CI's baseline gate runs).
- ``numpy``  — vectorized derived-column computation; the replay
  loops themselves stay Python (PRs 2-4's fused loops).
- ``native`` — the compiled kernel tier (:mod:`repro.kernels`): the
  fused Group replay, the chunk collector, and the crossbar timing
  pass run inside a C extension, with numpy (when importable)
  producing the derived columns for everything else.

Resolution order:

1. ``REPRO_BACKEND`` (``pure``/``numpy``/``native``/``auto``),
2. ``REPRO_PURE_PYTHON=1`` — the **deprecated** back-compat alias for
   ``REPRO_BACKEND=pure`` (kept because PR 2-6 CI legs and user
   scripts set it; prefer ``REPRO_BACKEND`` in new code),
3. auto-detection: ``native`` when the compiled extension imports,
   else ``numpy`` when numpy imports, else ``pure``.

Every tier produces byte-identical results (ResultSet JSON, predictor
tables, hex-float timing goldens) — the equivalence suites enforce it
— so the switch is purely about speed.  Requesting an unavailable
tier warns once and falls back down the list rather than failing.

The module is also the single source of truth consulted by
:mod:`repro.trace.columns` (column computation), :mod:`repro.kernels`
(native kernel dispatch), the bench harness (``columns_backend`` in
BENCH.json) and ``ResultSet.perf``.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from typing import Iterator, Optional, Tuple

#: The unified backend environment variable.
BACKEND_ENV = "REPRO_BACKEND"

#: Deprecated alias: ``REPRO_PURE_PYTHON=1`` == ``REPRO_BACKEND=pure``.
PURE_PYTHON_ENV = "REPRO_PURE_PYTHON"

#: Registered backends, slowest floor first.
BACKENDS: Tuple[str, ...] = ("pure", "numpy", "native")

_active: Optional[str] = None
_warned_native_missing = False
_native_module = False  # sentinel: not probed yet


def _numpy_available() -> bool:
    from repro.trace import columns as _columns

    return _columns._import_numpy() is not None


def native_module():
    """The compiled kernel extension module, or None when unbuilt.

    Probed once per process; build it in a source checkout with
    ``python -m repro.kernels.build`` (or install a binary wheel).
    """
    global _native_module
    if _native_module is False:
        try:
            from repro.kernels import _native
        except ImportError:
            _native_module = None
        else:
            _native_module = _native
    return _native_module


def native_available() -> bool:
    """True when the compiled kernel extension is importable."""
    return native_module() is not None


def _warn_native_missing() -> None:
    global _warned_native_missing
    if _warned_native_missing:
        return
    _warned_native_missing = True
    warnings.warn(
        "REPRO_BACKEND=native requested but the compiled kernel "
        "extension is not built; falling back to the fastest "
        "available Python tier.  Build it with "
        "`python -m repro.kernels.build` (or install a binary wheel).",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_env() -> str:
    """Resolve the backend from the environment (no state change)."""
    value = os.environ.get(BACKEND_ENV, "").strip().lower()
    if value and value != "auto":
        if value == "python":  # tolerated spelling of the pure tier
            value = "pure"
        if value not in BACKENDS:
            raise ValueError(
                f"unknown {BACKEND_ENV}={value!r}; "
                f"expected one of {BACKENDS} or 'auto'"
            )
        if value == "native" and not native_available():
            _warn_native_missing()
            return "numpy" if _numpy_available() else "pure"
        if value == "numpy" and not _numpy_available():
            warnings.warn(
                f"{BACKEND_ENV}=numpy requested but numpy is not "
                "importable; falling back to the pure tier.",
                RuntimeWarning,
                stacklevel=2,
            )
            return "pure"
        return value
    if os.environ.get(PURE_PYTHON_ENV):
        # Deprecated alias; honoured indefinitely for existing CI
        # legs and scripts, but REPRO_BACKEND wins when both are set.
        return "pure"
    if native_available():
        return "native"
    return "numpy" if _numpy_available() else "pure"


def backend_name() -> str:
    """The active unified backend: ``pure``/``numpy``/``native``."""
    global _active
    if _active is None:
        set_backend("auto")
    return _active


def native_active() -> bool:
    """True when the native kernel tier should be dispatched."""
    return backend_name() == "native"


def set_backend(name: str) -> None:
    """Select the backend: ``pure``/``numpy``/``native``/``auto``.

    Keeps :mod:`repro.trace.columns` in sync: ``pure`` forces the
    pure-Python column path, everything else uses numpy columns when
    importable.  Raises when an explicitly requested tier is
    unavailable (``auto`` never raises).
    """
    global _active
    from repro.trace import columns as _columns

    name = name.strip().lower()
    if name == "python":
        name = "pure"
    if name == "auto":
        resolved = resolve_env()
        _active = resolved
        _columns._apply("python" if resolved == "pure" else "auto-numpy")
        return
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    if name == "native" and not native_available():
        raise RuntimeError(
            "native backend requested but the compiled kernel "
            "extension is not importable; build it with "
            "`python -m repro.kernels.build`"
        )
    if name == "numpy" and not _numpy_available():
        raise RuntimeError("numpy backend requested but not importable")
    _active = name
    _columns._apply("python" if name == "pure" else "numpy-if-available")


def _sync_from_columns(columns_name: str) -> None:
    """Track a legacy :func:`repro.trace.columns.set_backend` call.

    The column-level switch predates this module and is what the
    equivalence suites parametrize over; selecting a column backend
    there pins the matching Python tier here (so a suite comparing
    "python" vs "numpy" really compares the Python loops, never the
    native kernels), and ``auto`` re-runs the env resolution.
    """
    global _active
    if columns_name == "python":
        _active = "pure"
    elif columns_name == "numpy":
        _active = "numpy"
    else:  # "auto"
        _active = resolve_env()


@contextlib.contextmanager
def use(name: str) -> Iterator[str]:
    """Temporarily select a backend (bench/tests helper)."""
    previous = backend_name()
    set_backend(name)
    try:
        yield backend_name()
    finally:
        set_backend(previous)
