"""Shared primitive types, configuration and utilities.

This subpackage holds the vocabulary used throughout the reproduction:

- :mod:`repro.common.types` — node identifiers, addresses, access kinds.
- :mod:`repro.common.destset` — the :class:`DestinationSet` bitset, the
  paper's central data type (the set of processors that receive a
  coherence request).
- :mod:`repro.common.params` — system configuration mirroring the paper's
  Table 4 (16-node target system) and derived latency/traffic constants.
- :mod:`repro.common.rng` — deterministic random-number helpers so every
  experiment is exactly reproducible.
"""

from repro.common.destset import DestinationSet
from repro.common.params import (
    LatencyModel,
    PredictorConfig,
    SystemConfig,
    TrafficModel,
)
from repro.common.types import AccessType, Address, NodeId, MEMORY_NODE

__all__ = [
    "AccessType",
    "Address",
    "DestinationSet",
    "LatencyModel",
    "MEMORY_NODE",
    "NodeId",
    "PredictorConfig",
    "SystemConfig",
    "TrafficModel",
]
