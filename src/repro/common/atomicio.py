"""Atomic filesystem writes shared by every on-disk store.

One discipline, used by the trace cache, the fabric work queue, and
the fabric result store: build the artifact in a uniquely-named
temporary sibling, then :func:`os.replace` it into place.  Readers
therefore only ever observe a file that is either absent or complete
— concurrent writers of the same path race benignly (last complete
write wins), and a crash mid-write leaves at worst a stale ``.tmp*``
sibling, never a torn artifact under the final name.

Torn artifacts can still appear through outside interference (a
partially-copied shared mount, ``dd`` mishaps, disk-full followed by
manual cleanup); stores treat any unparsable artifact as a *miss* and
heal it, which is why every reader in this codebase validates before
trusting.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
from typing import Any, Optional, Union

PathLike = Union[str, "os.PathLike[str]"]

#: Per-process counter so concurrent threads of one process never
#: collide on a temporary name (the pid alone distinguishes
#: processes, including workers on different hosts sharing a mount
#: only per-host — the counter plus pid keeps names unique enough for
#: same-directory siblings, and os.replace makes collisions benign).
_SEQUENCE = itertools.count()


def tmp_sibling(path: PathLike) -> pathlib.Path:
    """A unique temporary path in the same directory as ``path``.

    Same-directory placement matters: :func:`os.replace` is only
    atomic within one filesystem, and sibling naming keeps the
    temporary visible to cleanup tooling next to its artifact.
    """
    path = pathlib.Path(path)
    suffix = f".tmp{os.getpid()}.{next(_SEQUENCE)}"
    return path.with_name(path.name + suffix)


def write_bytes_atomic(path: PathLike, payload: bytes) -> None:
    """Atomically publish ``payload`` at ``path`` (tmp + os.replace)."""
    path = pathlib.Path(path)
    tmp = tmp_sibling(path)
    try:
        tmp.write_bytes(payload)
        os.replace(tmp, path)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def write_text_atomic(
    path: PathLike, text: str, encoding: str = "ascii"
) -> None:
    """Atomically publish ``text`` at ``path``."""
    write_bytes_atomic(path, text.encode(encoding))


def write_json_atomic(path: PathLike, payload: Any) -> None:
    """Atomically publish ``payload`` as canonical JSON at ``path``."""
    write_text_atomic(path, json.dumps(payload, sort_keys=True))


def read_json(path: PathLike) -> Optional[Any]:
    """Parse the JSON artifact at ``path``; ``None`` if absent/torn.

    Any unreadable or unparsable artifact reads as a miss — the
    caller decides whether to regenerate, heal, or skip.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None
