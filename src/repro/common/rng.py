"""Deterministic random-number helpers.

Every stochastic component (workload generators, perturbation runs)
takes an explicit seed so that experiments are exactly reproducible.
``derive_seed`` gives stable, well-separated child seeds for
subcomponents without the classic "seed, seed+1, seed+2" correlation
pitfalls.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from ``base_seed`` and a label path.

    The derivation hashes the base seed together with the labels, so
    different label paths produce statistically independent streams and
    the same path always produces the same stream.
    """
    digest = hashlib.sha256(
        ("/".join([str(base_seed), *map(str, labels)])).encode()
    ).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(base_seed: int, *labels: object) -> random.Random:
    """A ``random.Random`` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(base_seed, *labels))


def weighted_choice(
    rng: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Pick one of ``items`` with the given (unnormalized) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    target = rng.random() * total
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if target < cumulative:
            return item
    return items[-1]


def zipf_rank(rng: random.Random, n: int, exponent: float = 1.0) -> int:
    """Sample a rank in ``[0, n)`` from a Zipf-like distribution.

    Ranks are drawn with probability proportional to
    ``1 / (rank + 1) ** exponent``, which matches the heavy-tailed
    "hot block" locality the paper observes in commercial workloads
    (Figure 4: a few thousand blocks account for most cache-to-cache
    misses).  Uses inverse-CDF sampling over a precomputed table-free
    approximation (rejection-free, O(log n) via bisection would need a
    table; for generator use we accept O(1) approximate inversion).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent <= 0:
        return rng.randrange(n)
    # Approximate inversion for the Zipf CDF: for exponent ~1 the CDF is
    # ~ log(rank)/log(n); invert by exponentiation.  This is the
    # standard "bounded Zipf via inverse transform" approximation.
    u = rng.random()
    if abs(exponent - 1.0) < 1e-9:
        rank = int((n + 1.0) ** u) - 1
    else:
        h = 1.0 - exponent
        norm = ((n + 1.0) ** h - 1.0) / h
        rank = int((u * norm * h + 1.0) ** (1.0 / h)) - 1
    if rank < 0:
        rank = 0
    if rank >= n:
        rank = n - 1
    return rank


def shuffled(rng: random.Random, items: Iterable[T]) -> list:
    """A shuffled copy of ``items``."""
    result = list(items)
    rng.shuffle(result)
    return result
