"""The :class:`DestinationSet` — a bitset of processor nodes.

The *destination set* is the collection of processors that receive a
particular coherence request (paper Section 1).  Snooping uses the
maximal set (all processors); directories use the minimal set (the home
node); destination-set predictors pick something in between.

The implementation is an immutable bitmask over ``n_nodes`` processors,
supporting the set algebra the protocols and predictors need.  Immutable
value semantics keep predictor/protocol interactions easy to reason
about and hashable for use in dictionaries.

Because protocols and predictors churn through millions of sets, the
common values are interned: the empty set, the broadcast set, and the
singletons are cached per ``n_nodes`` and shared.  Set algebra goes
through the unchecked :meth:`DestinationSet._from_bits` constructor, so
hot paths never revalidate masks they derived from valid sets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from repro.common.types import NodeId

if hasattr(int, "bit_count"):  # Python >= 3.10

    def popcount(bits: int) -> int:
        """Number of set bits in ``bits``."""
        return bits.bit_count()

else:  # pragma: no cover - exercised on Python 3.9 CI only

    def popcount(bits: int) -> int:
        """Number of set bits in ``bits``."""
        return bin(bits).count("1")


#: Interned full bitmasks, empty/broadcast/singleton instances.
_FULL_MASKS: Dict[int, int] = {}
_EMPTY: Dict[int, "DestinationSet"] = {}
_BROADCAST: Dict[int, "DestinationSet"] = {}
_SINGLETONS: Dict[Tuple[int, NodeId], "DestinationSet"] = {}


def full_mask(n_nodes: int) -> int:
    """The all-ones bitmask for ``n_nodes`` processors (cached)."""
    mask = _FULL_MASKS.get(n_nodes)
    if mask is None:
        mask = _FULL_MASKS[n_nodes] = (1 << n_nodes) - 1
    return mask


class DestinationSet:
    """An immutable set of processor node ids in ``[0, n_nodes)``.

    Instances are value objects: all "mutators" (:meth:`add`,
    :meth:`union`, ...) return new sets.
    """

    __slots__ = ("_bits", "_n_nodes")

    def __init__(self, n_nodes: int, bits: int = 0):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        if bits & ~full_mask(n_nodes):
            raise ValueError(
                f"bitmask {bits:#x} has nodes outside [0, {n_nodes})"
            )
        self._bits = bits
        self._n_nodes = n_nodes

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def _from_bits(n_nodes: int, bits: int) -> "DestinationSet":
        """Unchecked construction from a known-valid bitmask.

        Internal hot-path constructor: callers guarantee ``bits`` only
        names nodes in ``[0, n_nodes)`` (e.g. because it was derived
        from the algebra of valid sets).  Empty and broadcast results
        come from the interned caches.
        """
        if bits == 0:
            return DestinationSet.empty(n_nodes)
        if bits == _FULL_MASKS.get(n_nodes):
            return DestinationSet.broadcast(n_nodes)
        self = object.__new__(DestinationSet)
        self._bits = bits
        self._n_nodes = n_nodes
        return self

    @classmethod
    def empty(cls, n_nodes: int) -> "DestinationSet":
        """The empty destination set (interned per ``n_nodes``)."""
        cached = _EMPTY.get(n_nodes)
        if cached is None:
            cached = _EMPTY[n_nodes] = cls(n_nodes, 0)
        return cached

    @classmethod
    def broadcast(cls, n_nodes: int) -> "DestinationSet":
        """The maximal destination set — all processors (interned)."""
        cached = _BROADCAST.get(n_nodes)
        if cached is None:
            cached = _BROADCAST[n_nodes] = cls(n_nodes, full_mask(n_nodes))
        return cached

    @classmethod
    def of(cls, n_nodes: int, *nodes: NodeId) -> "DestinationSet":
        """A destination set containing exactly ``nodes``."""
        if len(nodes) == 1:
            node = nodes[0]
            cached = _SINGLETONS.get((n_nodes, node))
            if cached is not None:
                return cached
            single = cls.from_nodes(n_nodes, nodes)
            _SINGLETONS[(n_nodes, node)] = single
            return single
        return cls.from_nodes(n_nodes, nodes)

    @classmethod
    def from_nodes(
        cls, n_nodes: int, nodes: Iterable[NodeId]
    ) -> "DestinationSet":
        """A destination set containing ``nodes`` (duplicates allowed)."""
        bits = 0
        for node in nodes:
            cls._check_node(node, n_nodes)
            bits |= 1 << node
        return cls(n_nodes, bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """The size of the node universe (system processor count)."""
        return self._n_nodes

    @property
    def bits(self) -> int:
        """The raw bitmask (bit ``i`` set means node ``i`` is a member)."""
        return self._bits

    def contains(self, node: NodeId) -> bool:
        """True if ``node`` is a member."""
        self._check_node(node, self._n_nodes)
        return bool(self._bits >> node & 1)

    def count(self) -> int:
        """Number of member nodes."""
        return popcount(self._bits)

    def is_empty(self) -> bool:
        """True if no nodes are members."""
        return self._bits == 0

    def is_broadcast(self) -> bool:
        """True if every node is a member (maximal set)."""
        return self._bits == full_mask(self._n_nodes)

    def is_superset_of(self, other: "DestinationSet") -> bool:
        """True if every member of ``other`` is also a member of self."""
        self._check_compatible(other)
        return other._bits & ~self._bits == 0

    def nodes(self) -> Tuple[NodeId, ...]:
        """The member node ids, ascending."""
        return tuple(self)

    # ------------------------------------------------------------------
    # Algebra (all return new sets)
    # ------------------------------------------------------------------
    def add(self, node: NodeId) -> "DestinationSet":
        """Return a set that also contains ``node``."""
        self._check_node(node, self._n_nodes)
        bits = self._bits | 1 << node
        if bits == self._bits:
            return self
        return DestinationSet._from_bits(self._n_nodes, bits)

    def remove(self, node: NodeId) -> "DestinationSet":
        """Return a set without ``node`` (no-op if absent)."""
        self._check_node(node, self._n_nodes)
        bits = self._bits & ~(1 << node)
        if bits == self._bits:
            return self
        return DestinationSet._from_bits(self._n_nodes, bits)

    def union(self, other: "DestinationSet") -> "DestinationSet":
        """Set union."""
        self._check_compatible(other)
        return DestinationSet._from_bits(
            self._n_nodes, self._bits | other._bits
        )

    def intersection(self, other: "DestinationSet") -> "DestinationSet":
        """Set intersection."""
        self._check_compatible(other)
        return DestinationSet._from_bits(
            self._n_nodes, self._bits & other._bits
        )

    def difference(self, other: "DestinationSet") -> "DestinationSet":
        """Members of self that are not members of ``other``."""
        self._check_compatible(other)
        return DestinationSet._from_bits(
            self._n_nodes, self._bits & ~other._bits
        )

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[NodeId]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def __len__(self) -> int:
        return popcount(self._bits)

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < self._n_nodes and bool(
            self._bits >> node & 1
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DestinationSet)
            and self._bits == other._bits
            and self._n_nodes == other._n_nodes
        )

    def __hash__(self) -> int:
        return hash((self._bits, self._n_nodes))

    def __repr__(self) -> str:
        return f"DestinationSet({list(self)!r}, n_nodes={self._n_nodes})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _check_node(node: NodeId, n_nodes: int) -> None:
        if not 0 <= node < n_nodes:
            raise ValueError(f"node {node} outside [0, {n_nodes})")

    def _check_compatible(self, other: "DestinationSet") -> None:
        if self._n_nodes != other._n_nodes:
            raise ValueError(
                "destination sets from different systems: "
                f"{self._n_nodes} vs {other._n_nodes} nodes"
            )
