"""The :class:`DestinationSet` — a bitset of processor nodes.

The *destination set* is the collection of processors that receive a
particular coherence request (paper Section 1).  Snooping uses the
maximal set (all processors); directories use the minimal set (the home
node); destination-set predictors pick something in between.

The implementation is an immutable bitmask over ``n_nodes`` processors,
supporting the set algebra the protocols and predictors need.  Immutable
value semantics keep predictor/protocol interactions easy to reason
about and hashable for use in dictionaries.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.common.types import NodeId


class DestinationSet:
    """An immutable set of processor node ids in ``[0, n_nodes)``.

    Instances are value objects: all "mutators" (:meth:`add`,
    :meth:`union`, ...) return new sets.
    """

    __slots__ = ("_bits", "_n_nodes")

    def __init__(self, n_nodes: int, bits: int = 0):
        if n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {n_nodes}")
        full = (1 << n_nodes) - 1
        if bits & ~full:
            raise ValueError(
                f"bitmask {bits:#x} has nodes outside [0, {n_nodes})"
            )
        self._bits = bits
        self._n_nodes = n_nodes

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n_nodes: int) -> "DestinationSet":
        """The empty destination set."""
        return cls(n_nodes, 0)

    @classmethod
    def broadcast(cls, n_nodes: int) -> "DestinationSet":
        """The maximal destination set — all processors (snooping)."""
        return cls(n_nodes, (1 << n_nodes) - 1)

    @classmethod
    def of(cls, n_nodes: int, *nodes: NodeId) -> "DestinationSet":
        """A destination set containing exactly ``nodes``."""
        return cls.from_nodes(n_nodes, nodes)

    @classmethod
    def from_nodes(
        cls, n_nodes: int, nodes: Iterable[NodeId]
    ) -> "DestinationSet":
        """A destination set containing ``nodes`` (duplicates allowed)."""
        bits = 0
        for node in nodes:
            cls._check_node(node, n_nodes)
            bits |= 1 << node
        return cls(n_nodes, bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """The size of the node universe (system processor count)."""
        return self._n_nodes

    @property
    def bits(self) -> int:
        """The raw bitmask (bit ``i`` set means node ``i`` is a member)."""
        return self._bits

    def contains(self, node: NodeId) -> bool:
        """True if ``node`` is a member."""
        self._check_node(node, self._n_nodes)
        return bool(self._bits >> node & 1)

    def count(self) -> int:
        """Number of member nodes."""
        return bin(self._bits).count("1")

    def is_empty(self) -> bool:
        """True if no nodes are members."""
        return self._bits == 0

    def is_broadcast(self) -> bool:
        """True if every node is a member (maximal set)."""
        return self._bits == (1 << self._n_nodes) - 1

    def is_superset_of(self, other: "DestinationSet") -> bool:
        """True if every member of ``other`` is also a member of self."""
        self._check_compatible(other)
        return other._bits & ~self._bits == 0

    def nodes(self) -> Tuple[NodeId, ...]:
        """The member node ids, ascending."""
        return tuple(self)

    # ------------------------------------------------------------------
    # Algebra (all return new sets)
    # ------------------------------------------------------------------
    def add(self, node: NodeId) -> "DestinationSet":
        """Return a new set that also contains ``node``."""
        self._check_node(node, self._n_nodes)
        return DestinationSet(self._n_nodes, self._bits | 1 << node)

    def remove(self, node: NodeId) -> "DestinationSet":
        """Return a new set without ``node`` (no-op if absent)."""
        self._check_node(node, self._n_nodes)
        return DestinationSet(self._n_nodes, self._bits & ~(1 << node))

    def union(self, other: "DestinationSet") -> "DestinationSet":
        """Set union."""
        self._check_compatible(other)
        return DestinationSet(self._n_nodes, self._bits | other._bits)

    def intersection(self, other: "DestinationSet") -> "DestinationSet":
        """Set intersection."""
        self._check_compatible(other)
        return DestinationSet(self._n_nodes, self._bits & other._bits)

    def difference(self, other: "DestinationSet") -> "DestinationSet":
        """Members of self that are not members of ``other``."""
        self._check_compatible(other)
        return DestinationSet(self._n_nodes, self._bits & ~other._bits)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[NodeId]:
        bits = self._bits
        node = 0
        while bits:
            if bits & 1:
                yield node
            bits >>= 1
            node += 1

    def __len__(self) -> int:
        return self.count()

    def __contains__(self, node: object) -> bool:
        return isinstance(node, int) and 0 <= node < self._n_nodes and bool(
            self._bits >> node & 1
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DestinationSet)
            and self._bits == other._bits
            and self._n_nodes == other._n_nodes
        )

    def __hash__(self) -> int:
        return hash((self._bits, self._n_nodes))

    def __repr__(self) -> str:
        return f"DestinationSet({list(self)!r}, n_nodes={self._n_nodes})"

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _check_node(node: NodeId, n_nodes: int) -> None:
        if not 0 <= node < n_nodes:
            raise ValueError(f"node {node} outside [0, {n_nodes})")

    def _check_compatible(self, other: "DestinationSet") -> None:
        if self._n_nodes != other._n_nodes:
            raise ValueError(
                "destination sets from different systems: "
                f"{self._n_nodes} vs {other._n_nodes} nodes"
            )
