"""System configuration — the paper's Table 4 target system.

The defaults reproduce the paper's 16-node system:

==============================  =======================================
L1 instruction cache            128 kB, 4-way, 2 cycles
L1 data cache                   128 kB, 4-way, 2 cycles
L2 cache (unified)              4 MB, 4-way, 12 ns
block size                      64 B
memory                          2 GB total, 80 ns
interconnect link bandwidth     10 GB/s
interconnect latency            50 ns traversal
clock frequency                 2 GHz
==============================  =======================================

From these the paper derives (Section 5.1) and we reproduce exactly:

- 180 ns to obtain a block from memory          (50 + 80 + 50)
- 112 ns for a snooping cache-to-cache transfer (50 + 12 + 50)
- 242 ns for a directory 3-hop transfer or a retried multicast
  request                                       (50 + 80 + 50 + 12 + 50)

Request/forward/retry messages are 8 bytes; data responses are 72 bytes
(64 B of data plus an 8 B header).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Static description of the simulated multiprocessor.

    All sizes are bytes, latencies nanoseconds, bandwidth bytes/ns
    (1 GB/s == 1 byte/ns in round numbers; we use 10 bytes/ns for the
    paper's 10 GB/s links).
    """

    n_processors: int = 16
    block_size: int = 64
    macroblock_size: int = 1024

    l1i_size: int = 128 * KB
    l1i_assoc: int = 4
    l1d_size: int = 128 * KB
    l1d_assoc: int = 4
    l1_latency_cycles: int = 2

    l2_size: int = 4 * MB
    l2_assoc: int = 4
    l2_latency_ns: float = 12.0

    memory_size: int = 2 * GB
    memory_latency_ns: float = 80.0

    link_bandwidth_bytes_per_ns: float = 10.0
    link_latency_ns: float = 50.0

    #: Interconnect timing model (a kind registered in
    #: :mod:`repro.timing.registry`): ``"crossbar"`` (the paper's
    #: totally-ordered crossbar, the default), ``"tree"``/``"ring"``
    #: (point-to-point ordered fabrics with per-hop latency and a
    #: shared ordering point), or ``"ideal"`` (infinite bandwidth,
    #: latency-only).  Validated against the registry when a timing
    #: simulator or experiment spec is built; the numeric timing
    #: fields are validated here, at construction.
    interconnect: str = "crossbar"
    #: Per-hop switch traversal latency of the point-to-point models.
    #: The default makes a 16-node balanced binary tree's up+down
    #: traversal (8 hops) equal the crossbar's flat 50 ns.
    hop_latency_ns: float = 6.25

    clock_ghz: float = 2.0

    control_message_bytes: int = 8
    data_message_bytes: int = 72

    def __post_init__(self) -> None:
        if self.n_processors <= 0:
            raise ValueError("n_processors must be positive")
        for name in ("block_size", "macroblock_size", "l2_size", "l1d_size"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if self.macroblock_size < self.block_size:
            raise ValueError("macroblock_size must be >= block_size")
        # Timing fields are validated here, centrally, so a bad sweep
        # axis value fails at spec/config construction instead of deep
        # inside the simulator.
        for name in ("link_bandwidth_bytes_per_ns", "hop_latency_ns",
                     "clock_ghz"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("link_latency_ns", "l2_latency_ns",
                     "memory_latency_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not self.interconnect or not isinstance(self.interconnect, str):
            raise ValueError("interconnect must be a non-empty kind name")

    @property
    def blocks_per_macroblock(self) -> int:
        """Number of cache blocks per predictor macroblock."""
        return self.macroblock_size // self.block_size

    @property
    def l2_sets(self) -> int:
        """Number of sets in the L2 cache."""
        return self.l2_size // (self.block_size * self.l2_assoc)

    @property
    def cycle_ns(self) -> float:
        """Processor cycle time in nanoseconds."""
        return 1.0 / self.clock_ghz

    def with_processors(self, n_processors: int) -> "SystemConfig":
        """A copy of this config with a different processor count."""
        return dataclasses.replace(self, n_processors=n_processors)


@dataclasses.dataclass(frozen=True)
class LatencyModel:
    """Derived end-to-end transaction latencies (paper Section 5.1).

    Build one from a :class:`SystemConfig` with :meth:`from_config`.
    """

    memory_ns: float
    cache_to_cache_direct_ns: float
    cache_to_cache_indirect_ns: float
    l2_hit_ns: float
    l1_hit_ns: float

    @classmethod
    def from_config(cls, config: SystemConfig) -> "LatencyModel":
        link = config.link_latency_ns
        mem = config.memory_latency_ns
        l2 = config.l2_latency_ns
        return cls(
            # request traversal + memory access + data traversal
            memory_ns=link + mem + link,
            # request traversal + remote L2 + data traversal
            cache_to_cache_direct_ns=link + l2 + link,
            # request to home + directory/memory lookup + forward
            # traversal + remote L2 + data traversal
            cache_to_cache_indirect_ns=link + mem + link + l2 + link,
            l2_hit_ns=l2,
            l1_hit_ns=config.l1_latency_cycles / config.clock_ghz,
        )


@dataclasses.dataclass(frozen=True)
class TrafficModel:
    """Per-message byte costs used in traffic accounting."""

    control_bytes: int = 8
    data_bytes: int = 72

    @classmethod
    def from_config(cls, config: SystemConfig) -> "TrafficModel":
        return cls(
            control_bytes=config.control_message_bytes,
            data_bytes=config.data_message_bytes,
        )


@dataclasses.dataclass(frozen=True)
class PredictorConfig:
    """Configuration of a destination-set predictor table.

    ``n_entries=None`` models the paper's *unbounded* predictors.  The
    paper's standout configuration is 8192 entries, 4-way associative,
    1024-byte macroblock indexing.
    """

    n_entries: Optional[int] = 8192
    associativity: int = 4
    index_granularity: int = 1024
    use_pc_index: bool = False

    def __post_init__(self) -> None:
        if self.n_entries is not None:
            if self.n_entries <= 0 or self.n_entries & (self.n_entries - 1):
                raise ValueError("n_entries must be a power of two or None")
            if self.associativity <= 0:
                raise ValueError("associativity must be positive")
            if self.n_entries % self.associativity:
                raise ValueError("n_entries must be divisible by associativity")
        if self.index_granularity <= 0 or (
            self.index_granularity & (self.index_granularity - 1)
        ):
            raise ValueError("index_granularity must be a power of two")

    @property
    def unbounded(self) -> bool:
        """True if the table never evicts (infinite capacity)."""
        return self.n_entries is None

    @property
    def n_sets(self) -> int:
        """Number of sets in a bounded table."""
        if self.n_entries is None:
            raise ValueError("unbounded predictor has no sets")
        return self.n_entries // self.associativity
