"""Primitive types: node ids, addresses and coherence access kinds.

The paper models a 16-processor SPARC system.  Processors are identified
by small integers (``NodeId``); physical addresses are plain integers
(``Address``).  Coherence requests come in two kinds, matching a MOSI
write-invalidate protocol (paper Section 3):

- ``GETS`` — *request for shared* (a load miss).  The request must reach
  the current **owner** of the block.
- ``GETX`` — *request for exclusive* (a store miss or upgrade).  The
  request must reach the owner **and all sharers**.
"""

from __future__ import annotations

import enum

NodeId = int
Address = int

#: Sentinel "node id" used for the memory/home module when it owns a block.
#: Real processors are numbered ``0 .. n_processors - 1``.
MEMORY_NODE: NodeId = -1


class AccessType(enum.Enum):
    """Kind of coherence request issued on an L2 miss."""

    GETS = "GETS"
    GETX = "GETX"

    @property
    def is_read(self) -> bool:
        """True for requests for shared (load misses)."""
        return self is AccessType.GETS

    @property
    def is_write(self) -> bool:
        """True for requests for exclusive (store misses / upgrades)."""
        return self is AccessType.GETX

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def block_address(address: Address, block_size: int) -> Address:
    """Return ``address`` aligned down to its cache-block boundary.

    ``block_size`` must be a power of two.
    """
    _require_power_of_two(block_size, "block_size")
    return address & ~(block_size - 1)


def macroblock_address(address: Address, macroblock_size: int) -> Address:
    """Return ``address`` aligned down to its macroblock boundary.

    Macroblocks (paper Section 3.4) are aligned regions of multiple
    cache blocks — e.g. 1024-byte macroblocks group 16 64-byte blocks —
    and are used to index predictors so that one entry captures the
    spatial locality of a whole region.
    """
    _require_power_of_two(macroblock_size, "macroblock_size")
    return address & ~(macroblock_size - 1)


def home_node(address: Address, n_processors: int, block_size: int) -> NodeId:
    """Return the home (directory/memory) node for ``address``.

    Memory is interleaved across the processor/memory nodes at
    cache-block granularity, as in the paper's target system where each
    node contains a memory controller for part of the globally shared
    memory.
    """
    return (address // block_size) % n_processors


def _require_power_of_two(value: int, name: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")
