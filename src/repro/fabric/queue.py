"""Durable, multi-host-safe work queue of sweep cells.

State machine of one cell (identified by its content key)::

    pending ──claim──▶ leased ──complete──▶ done (result in store)
       ▲                 │
       │   release/expiry│  (attempts < max: backoff, re-pending)
       └─────────────────┘
                         │  (attempts ≥ max)
                         ▼
                     quarantined (queue/failed/, with error log)

Claims are files created with ``O_CREAT | O_EXCL`` — the one atomic
primitive every POSIX filesystem (including NFS for ``open``'s
``O_EXCL`` since v3) provides — so exactly one worker wins a cell.
A claim carries its worker's identity and a heartbeat timestamp the
worker refreshes while executing; a claim whose heartbeat is older
than the lease TTL is presumed dead and *reclaimed*: stolen via an
atomic rename (one winner), its attempt count bumped, and the cell
made claimable again.  Cells whose attempts exhaust ``max_attempts``
are quarantined with their error history instead of poisoning the
queue forever.

Timestamps are wall-clock seconds shared through the filesystem; the
TTL only needs to be generous relative to clock skew between hosts,
not precise.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Any, Dict, List, Optional

from repro.common.atomicio import read_json, write_json_atomic
from repro.fabric.layout import FabricLayout, PathLike

#: Heartbeats older than this many seconds mark a lease expired.
DEFAULT_LEASE_TTL = 30.0

#: Execution attempts (initial + retries) before quarantine.
DEFAULT_MAX_ATTEMPTS = 3

#: Base of the exponential retry backoff, in seconds: attempt ``n``
#: becomes claimable again after ``BACKOFF_BASE * 2**(n-1)``.
BACKOFF_BASE = 0.5


@dataclasses.dataclass(frozen=True)
class Cell:
    """One enqueued sweep cell.

    ``key`` is the content hash (:meth:`ExperimentSpec.cell_key`) that
    names the cell everywhere — queue files and result artifact.
    ``spec_digest``/``index`` tell a worker *how* to execute it: load
    the registered spec, take job ``index`` of its expansion.  The
    remaining fields are denormalized coordinates for humans and
    status tooling.
    """

    key: str
    spec_digest: str
    index: int
    workload: str
    seed: int
    label: str
    bandwidth: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if self.bandwidth is None:
            del data["bandwidth"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Cell":
        return cls(
            key=data["key"],
            spec_digest=data["spec_digest"],
            index=data["index"],
            workload=data["workload"],
            seed=data["seed"],
            label=data["label"],
            bandwidth=data.get("bandwidth"),
        )


@dataclasses.dataclass
class Lease:
    """A claimed cell, held by one worker until complete/release."""

    cell: Cell
    worker_id: str
    claimed_at: float


class WorkQueue:
    """Filesystem-backed queue over one fabric directory."""

    def __init__(
        self,
        root: PathLike,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        if lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.layout = FabricLayout(root).ensure()
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts

    # -- enqueue -------------------------------------------------------
    def enqueue(self, cell: Cell) -> bool:
        """Make ``cell`` pending; False if it already is (or failed).

        Idempotent by content key: re-enqueueing a pending, leased, or
        quarantined cell is a no-op, so coordinators can blindly
        submit a spec's full expansion and only missing cells land.
        """
        if self.layout.failed_path(cell.key).exists():
            return False
        path = self.layout.pending_path(cell.key)
        if path.exists():
            return False
        write_json_atomic(path, cell.to_dict())
        return True

    # -- claim ---------------------------------------------------------
    def claim(self, worker_id: str) -> Optional[Lease]:
        """Try to lease one pending cell; None when nothing claimable.

        Scans pending cells in name order (deterministic across
        workers), skipping cells inside their retry backoff window and
        cells under a live lease; expired leases encountered on the
        way are reclaimed.  None does *not* mean the queue is drained
        — cells may be leased to other workers or backing off; use
        :meth:`has_work` to distinguish.
        """
        now = time.time()
        for pending in sorted(self.layout.pending.glob("*.json")):
            key = pending.stem
            retry = read_json(self.layout.retry_path(key))
            if retry and retry.get("not_before", 0.0) > now:
                continue
            claim_path = self.layout.claim_path(key)
            if claim_path.exists():
                self._reclaim_if_expired(key, now)
                continue
            try:
                handle = os.open(
                    claim_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue  # lost the race
            os.close(handle)
            data = read_json(pending)
            if data is None:
                # Completed (or torn) under us: drop the empty claim.
                os.unlink(claim_path)
                continue
            cell = Cell.from_dict(data)
            lease = Lease(cell, worker_id, now)
            self.heartbeat(lease)
            return lease
        return None

    def heartbeat(self, lease: Lease) -> None:
        """Refresh the lease so reclamation knows the worker is alive."""
        write_json_atomic(
            self.layout.claim_path(lease.cell.key),
            {
                "worker": lease.worker_id,
                "pid": os.getpid(),
                "claimed_at": lease.claimed_at,
                "heartbeat": time.time(),
            },
        )

    def _reclaim_if_expired(self, key: str, now: float) -> bool:
        """Steal an expired claim; True when this caller won the steal."""
        claim_path = self.layout.claim_path(key)
        claim = read_json(claim_path)
        if claim is None:
            # Torn or just-removed claim file: a torn one can never
            # heartbeat again, so treat it as expired immediately.
            age = self.lease_ttl + 1.0
            holder = "unknown"
        else:
            age = now - claim.get("heartbeat", 0.0)
            holder = claim.get("worker", "unknown")
        if age <= self.lease_ttl:
            return False
        grave = claim_path.with_name(
            claim_path.name + f".reclaim.{os.getpid()}"
        )
        try:
            os.rename(claim_path, grave)  # atomic: one winner
        except OSError:
            return False
        os.unlink(grave)
        self._record_attempt(
            key,
            f"lease expired (held by {holder}, "
            f"heartbeat {age:.1f}s old)",
        )
        return True

    # -- completion / failure ------------------------------------------
    def complete(self, lease: Lease) -> None:
        """Mark the leased cell done and retire its queue state.

        The *result* must already be in the store — the done marker is
        advisory bookkeeping; completion truth is store membership.
        """
        key = lease.cell.key
        write_json_atomic(
            self.layout.done_path(key),
            {
                "worker": lease.worker_id,
                "completed_at": time.time(),
                "cell": lease.cell.to_dict(),
            },
        )
        for path in (
            self.layout.pending_path(key),
            self.layout.claim_path(key),
            self.layout.retry_path(key),
        ):
            try:
                os.unlink(path)
            except OSError:
                pass

    def release(self, lease: Lease, error: str) -> None:
        """Return a failed cell to the queue (or quarantine it)."""
        try:
            os.unlink(self.layout.claim_path(lease.cell.key))
        except OSError:
            pass
        self._record_attempt(lease.cell.key, error)

    def _record_attempt(self, key: str, error: str) -> None:
        """Bump the attempt counter; backoff or quarantine."""
        retry_path = self.layout.retry_path(key)
        retry = read_json(retry_path) or {"attempts": 0, "errors": []}
        attempts = retry.get("attempts", 0) + 1
        errors = list(retry.get("errors", []))[-9:] + [error]
        if attempts >= self.max_attempts:
            cell = read_json(self.layout.pending_path(key)) or {
                "key": key
            }
            write_json_atomic(
                self.layout.failed_path(key),
                {
                    "cell": cell,
                    "attempts": attempts,
                    "errors": errors,
                    "quarantined_at": time.time(),
                },
            )
            for path in (self.layout.pending_path(key), retry_path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            return
        write_json_atomic(
            retry_path,
            {
                "attempts": attempts,
                "errors": errors,
                "not_before": time.time()
                + BACKOFF_BASE * (2 ** (attempts - 1)),
            },
        )

    # -- introspection -------------------------------------------------
    def has_work(self) -> bool:
        """True while any cell is pending (leased or not)."""
        return any(self.layout.pending.glob("*.json"))

    def pending_keys(self) -> List[str]:
        return sorted(
            path.stem for path in self.layout.pending.glob("*.json")
        )

    def failed_cells(self) -> List[Dict[str, Any]]:
        """Quarantined cells with their attempt/error history."""
        cells = []
        for path in sorted(self.layout.failed.glob("*.json")):
            data = read_json(path)
            if data is not None:
                cells.append(data)
        return cells

    def clear_failed(self) -> int:
        """Lift quarantine (e.g. after a fix) so cells can re-enqueue."""
        removed = 0
        for path in self.layout.failed.glob("*.json"):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def status(self) -> Dict[str, Any]:
        """Counts plus per-lease detail for ``repro fabric status``."""
        now = time.time()
        leases = []
        for path in sorted(self.layout.claims.glob("*.json")):
            claim = read_json(path) or {}
            heartbeat = claim.get("heartbeat", 0.0)
            leases.append(
                {
                    "key": path.stem,
                    "worker": claim.get("worker", "unknown"),
                    "heartbeat_age": round(now - heartbeat, 1),
                    "expired": (now - heartbeat) > self.lease_ttl,
                }
            )
        retries = []
        for path in sorted(self.layout.retries.glob("*.json")):
            retry = read_json(path) or {}
            retries.append(
                {
                    "key": path.stem,
                    "attempts": retry.get("attempts", 0),
                    "backoff_remaining": round(
                        max(0.0, retry.get("not_before", 0.0) - now), 2
                    ),
                }
            )
        return {
            "pending": len(self.pending_keys()),
            "leased": len(leases),
            "failed": len(self.failed_cells()),
            "done": sum(1 for _ in self.layout.done.glob("*.json")),
            "lease_ttl": self.lease_ttl,
            "max_attempts": self.max_attempts,
            "leases": leases,
            "retries": retries,
        }

