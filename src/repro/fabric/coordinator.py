"""Fabric coordination: enqueue missing cells, assemble results.

The coordinator is the client side of the fabric: ``repro sweep
--fabric <dir>`` registers the spec, enqueues only the cells whose
results are not already in the store (resume is free — a re-run of
the same or an overlapping spec skips completed cells), optionally
runs a local worker pool, and reassembles the final
:class:`ResultSet` from store artifacts in canonical job order
through the runner's own normalization path.  The reassembled set is
therefore byte-identical to what a serial in-process ``Runner.run``
of the same spec produces — regardless of worker count, host count,
interruptions, or how many separate invocations it took.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.common import backend as _backend
from repro.common.atomicio import read_json, write_json_atomic
from repro.experiment.cache import CacheStats
from repro.experiment.results import (
    CellFailure,
    PerfStats,
    ResultRecord,
    ResultSet,
)
from repro.experiment.runner import normalize_records
from repro.experiment.spec import ExperimentSpec, Job
from repro.fabric.layout import FabricLayout, PathLike
from repro.fabric.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    Cell,
    WorkQueue,
)
from repro.fabric.store import ResultStore
from repro.fabric.worker import WorkerOptions, run_worker_pool


class FabricCoordinator:
    """Client-side operations over one fabric directory."""

    def __init__(
        self,
        fabric_dir: PathLike,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    ):
        self.layout = FabricLayout(fabric_dir).ensure()
        self.queue = WorkQueue(
            fabric_dir, lease_ttl=lease_ttl, max_attempts=max_attempts
        )
        self.store = ResultStore(self.layout.store)
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts

    # -- spec registry -------------------------------------------------
    def register(self, spec: ExperimentSpec) -> str:
        """Publish ``spec`` under its digest; returns the digest.

        Idempotent: the registry is content-addressed, so re-posting
        an identical spec rewrites an identical artifact.  Workers
        and the serve endpoint resolve digests through this registry.
        """
        digest = spec.digest()
        write_json_atomic(self.layout.spec_path(digest), spec.to_dict())
        return digest

    def load_spec(self, digest: str) -> Optional[ExperimentSpec]:
        data = read_json(self.layout.spec_path(digest))
        if data is None:
            return None
        return ExperimentSpec.from_dict(data)

    def registered_specs(self) -> List[str]:
        return sorted(
            path.stem for path in self.layout.specs.glob("*.json")
        )

    # -- enqueueing ----------------------------------------------------
    def cells(self, spec: ExperimentSpec) -> List[Tuple[Job, str]]:
        """The spec's jobs with their content keys, canonical order."""
        return [(job, spec.cell_key(job)) for job in spec.expand()]

    def enqueue_missing(self, spec: ExperimentSpec) -> Dict[str, int]:
        """Queue every cell whose result is not already stored.

        Returns counts: ``stored`` results reused from the store,
        ``enqueued`` cells newly queued, ``queued`` cells already
        pending or quarantined (left alone).
        """
        digest = self.register(spec)
        counts = {"stored": 0, "enqueued": 0, "queued": 0}
        for job, key in self.cells(spec):
            if self.store.has(key):
                counts["stored"] += 1
                continue
            cell = Cell(
                key=key,
                spec_digest=digest,
                index=job.index,
                workload=job.workload,
                seed=job.seed,
                label=job.label,
                bandwidth=job.bandwidth,
            )
            if self.queue.enqueue(cell):
                counts["enqueued"] += 1
            else:
                counts["queued"] += 1
        return counts

    # -- assembly ------------------------------------------------------
    def try_assemble(
        self, spec: ExperimentSpec, elapsed: float = 0.0
    ) -> Optional[ResultSet]:
        """The spec's ResultSet from the store, or None if incomplete.

        Quarantined cells don't block assembly: their records are
        absent and they are reported as :class:`CellFailure` run
        metadata, matching the in-process runner's graceful-failure
        contract.  Any other missing cell returns None (still
        executing, or not yet enqueued).
        """
        failed_keys = {
            failure.get("cell", {}).get("key"): failure
            for failure in self.queue.failed_cells()
        }
        records: List[ResultRecord] = []
        failures: List[CellFailure] = []
        processed = 0
        for job, key in self.cells(spec):
            artifact = self.store.get(key)
            if artifact is None:
                failure = failed_keys.get(key)
                if failure is None:
                    return None
                errors = failure.get("errors") or ["unknown error"]
                failures.append(
                    CellFailure(
                        workload=job.workload,
                        seed=job.seed,
                        label=job.label,
                        bandwidth=job.bandwidth,
                        error=errors[-1].splitlines()[0],
                        traceback=errors[-1],
                        attempts=failure.get("attempts", 0),
                    )
                )
                continue
            records.extend(
                ResultRecord.from_dict(data)
                for data in artifact["records"]
            )
            processed += artifact.get("processed", 0)
        records = normalize_records(spec, records)
        return ResultSet(
            spec,
            records,
            CacheStats(),
            PerfStats(processed, elapsed, _backend.backend_name()),
            failures=failures,
        )

    # -- end-to-end ----------------------------------------------------
    def run(
        self,
        spec: ExperimentSpec,
        workers: int = 1,
        poll_interval: float = 0.2,
        timeout: Optional[float] = None,
    ) -> ResultSet:
        """Enqueue missing cells, execute, and assemble the ResultSet.

        ``workers >= 1`` runs that many local worker processes in
        drain mode (they exit when no cell is pending).  ``workers=0``
        only enqueues and then waits for *external* workers —
        ``repro work`` fleets on this or other hosts — bounded by
        ``timeout`` seconds (None waits forever).
        """
        started = time.perf_counter()
        self.enqueue_missing(spec)
        if workers >= 1:
            run_worker_pool(
                self.layout.root,
                workers,
                WorkerOptions(
                    lease_ttl=self.lease_ttl,
                    max_attempts=self.max_attempts,
                    poll_interval=poll_interval,
                ),
            )
        while True:
            results = self.try_assemble(
                spec, elapsed=time.perf_counter() - started
            )
            if results is not None:
                return results
            waited = time.perf_counter() - started
            if timeout is not None and waited > timeout:
                raise TimeoutError(
                    f"fabric sweep incomplete after {waited:.1f}s "
                    f"({len(self.queue.pending_keys())} cell(s) still "
                    "pending)"
                )
            time.sleep(poll_interval)

    # -- introspection -------------------------------------------------
    def status(self) -> Dict[str, Any]:
        """Queue, store, and registry state for ``repro fabric status``."""
        status = self.queue.status()
        status["stored"] = len(self.store)
        status["specs"] = self.registered_specs()
        status["fabric_dir"] = str(self.layout.root)
        return status
