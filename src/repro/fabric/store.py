"""Shared, content-addressed result store.

One JSON artifact per executed cell, named by the cell's content key
(:meth:`ExperimentSpec.cell_key`) — the sweep-result analogue of the
trace cache's ``<key>.trace``/``<key>.bin`` entries, with the same
write discipline: every artifact is published via tmp-file +
``os.replace`` (:mod:`repro.common.atomicio`), so concurrent workers
storing the same key race benignly and readers never see a torn file
under a final name.

Reads *validate* before trusting: an artifact that fails to parse or
carries the wrong format/key is treated as a miss and healed by
unlinking it (the ``_heal_binary`` pattern from the trace cache), so
a corrupted shared mount degrades to recomputation, never to wrong
results.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Dict, List, Optional

from repro.common.atomicio import read_json, write_json_atomic
from repro.fabric.layout import PathLike

#: Bump when the artifact layout changes; mismatched artifacts read
#: as misses (and are healed), never as results.
STORE_FORMAT = 1


class ResultStore:
    """Raw cell results under one directory, keyed by content hash."""

    def __init__(self, root: PathLike):
        self.root = pathlib.Path(root)

    def path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        records: List[Dict[str, Any]],
        processed: int,
        cell: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically publish one cell's raw records under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        write_json_atomic(
            self.path(key),
            {
                "format": STORE_FORMAT,
                "key": key,
                "records": records,
                "processed": processed,
                "cell": cell or {},
            },
        )

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The artifact for ``key``, or None — torn artifacts heal.

        Validation is the miss test: unparsable JSON, a format bump,
        a key mismatch (artifact copied under the wrong name), or a
        missing records list all read as "not stored".  Invalid files
        are unlinked so the next writer's clean artifact isn't racing
        a corpse.
        """
        path = self.path(key)
        data = read_json(path)
        if (
            isinstance(data, dict)
            and data.get("format") == STORE_FORMAT
            and data.get("key") == key
            and isinstance(data.get("records"), list)
        ):
            return data
        if path.exists():
            try:
                os.unlink(path)
            except OSError:
                pass
        return None

    def has(self, key: str) -> bool:
        """Validating membership test (a torn artifact is absent)."""
        return self.get(key) is not None

    def keys(self) -> List[str]:
        """Every stored key (by filename; contents not validated)."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def __len__(self) -> int:
        return len(self.keys())
