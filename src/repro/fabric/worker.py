"""Fabric worker: claim cells, execute them, publish results.

``repro work <fabric-dir>`` runs one or more of these per host; any
number of hosts may point at the same fabric directory.  A worker

1. claims a pending cell (atomic ``O_EXCL`` claim file),
2. heartbeats the claim from a daemon thread while executing, so a
   SIGKILL'd / OOM'd / power-cut worker simply stops heartbeating and
   its lease expires for another worker to reclaim,
3. executes the cell through the *same* :func:`execute_job` the
   in-process runner uses, against the fabric's co-located trace
   cache (one worker's generated trace is everyone's cache hit),
4. atomically publishes the raw records into the result store, then
   retires the cell from the queue.

An execution error releases the cell back to the queue (bounded
retries with backoff; quarantine after ``max_attempts``) — one poison
cell cannot take the fleet down.

Drain semantics: without ``follow``, a worker exits once no cell is
pending (everything stored or quarantined); with ``follow`` it keeps
polling — the mode ``repro serve`` pairs with, where cold queries
enqueue work continuously.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import socket
import threading
import time
import traceback
from typing import Dict, Optional

from repro.evaluation.corpus import TraceCorpus
from repro.experiment.cache import make_corpus
from repro.experiment.runner import execute_job
from repro.experiment.spec import ExperimentSpec
from repro.common.atomicio import read_json
from repro.fabric.layout import FabricLayout, PathLike
from repro.fabric.queue import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    Lease,
    WorkQueue,
)
from repro.fabric.store import ResultStore

#: Chaos/test hook: seconds to sleep between claiming a cell and
#: executing it.  Lets crash-recovery tests (and manual fault drills)
#: SIGKILL a worker that is reliably *mid-cell*, with its lease held.
HOLD_ENV = "REPRO_FABRIC_HOLD_SECONDS"


def default_worker_id() -> str:
    """``host-pid``: unique per worker process across a shared mount."""
    return f"{socket.gethostname()}-{os.getpid()}"


class CorpusRegistry:
    """System-config → corpus map, shareable across worker threads.

    A thread pool of workers passes one registry to every
    :class:`FabricWorker` so all threads replay out of a single
    in-memory memoized corpus (the corpus itself generates each trace
    exactly once under its per-key locks); process pools let each
    worker default to a private registry.

    Corpora are keyed by the *system configuration*, not the full
    spec digest: a trace's content depends only on the system config
    (plus workload/size/seed, handled per-trace inside the corpus),
    so overlapping specs — the common serve-mode shape, where many
    enqueued queries vary only policies or bandwidth — share one
    in-memory corpus instead of reloading per spec.  Across worker
    *processes* the sharing continues one level down: each corpus
    serves ``.bin2`` store entries as ``mmap`` views, so every worker
    on a host references the same physical page-cache copy of the
    trace bytes.
    """

    def __init__(self, traces_dir: PathLike):
        self.traces_dir = traces_dir
        self._corpora: Dict[str, TraceCorpus] = {}
        self._lock = threading.Lock()

    def corpus(self, spec: ExperimentSpec) -> TraceCorpus:
        """The (persistent) corpus for ``spec``'s system config."""
        digest = json.dumps(
            dataclasses.asdict(spec.system_config), sort_keys=True
        )
        with self._lock:
            corpus = self._corpora.get(digest)
            if corpus is None:
                corpus = make_corpus(spec.system_config, self.traces_dir)
                self._corpora[digest] = corpus
            return corpus


class FabricWorker:
    """One claim-execute-store loop over a fabric directory."""

    def __init__(
        self,
        fabric_dir: PathLike,
        worker_id: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        max_cells: Optional[int] = None,
        follow: bool = False,
        poll_interval: float = 0.2,
        corpora: Optional[CorpusRegistry] = None,
    ):
        self.layout = FabricLayout(fabric_dir).ensure()
        self.queue = WorkQueue(
            fabric_dir, lease_ttl=lease_ttl, max_attempts=max_attempts
        )
        self.store = ResultStore(self.layout.store)
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl = lease_ttl
        self.max_cells = max_cells
        self.follow = follow
        self.poll_interval = poll_interval
        self._specs: Dict[str, ExperimentSpec] = {}
        self._corpora = (
            corpora
            if corpora is not None
            else CorpusRegistry(self.layout.traces)
        )

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Work until drained (or ``max_cells``); cells executed."""
        executed = 0
        while self.max_cells is None or executed < self.max_cells:
            lease = self.queue.claim(self.worker_id)
            if lease is None:
                if self.follow or self.queue.has_work():
                    # Idle but not drained: other workers hold leases,
                    # cells are backing off, or (follow mode) new work
                    # may arrive.  An expired lease is reclaimed by
                    # the claim scan on a later pass.
                    time.sleep(self.poll_interval)
                    continue
                break
            executed += self._execute(lease)
        return executed

    # ------------------------------------------------------------------
    def _execute(self, lease: Lease) -> int:
        """Run one leased cell; returns 1 on success, 0 on release."""
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(lease, stop), daemon=True
        )
        beat.start()
        try:
            hold = float(os.environ.get(HOLD_ENV, "0") or "0")
            if hold > 0:
                time.sleep(hold)
            cell = lease.cell
            if self.store.has(cell.key):
                # Another fleet finished it between enqueue and claim.
                self.queue.complete(lease)
                return 1
            spec = self._spec(cell.spec_digest)
            job = spec.expand()[cell.index]
            if spec.cell_key(job) != cell.key:
                raise RuntimeError(
                    f"cell {cell.key} does not match job {cell.index} "
                    f"of spec {cell.spec_digest} (stale queue entry?)"
                )
            records, processed = execute_job(
                spec, job, self._corpus(spec)
            )
            self.store.put(
                cell.key,
                [record.to_dict() for record in records],
                processed,
                cell.to_dict(),
            )
            self.queue.complete(lease)
            return 1
        except Exception as exc:  # noqa: BLE001 - queue-level retry
            self.queue.release(
                lease,
                f"{type(exc).__name__}: {exc}\n"
                f"{traceback.format_exc()}",
            )
            return 0
        finally:
            stop.set()
            beat.join(timeout=1.0)

    def _heartbeat_loop(
        self, lease: Lease, stop: threading.Event
    ) -> None:
        interval = max(0.05, self.lease_ttl / 4.0)
        while not stop.wait(interval):
            try:
                self.queue.heartbeat(lease)
            except OSError:  # pragma: no cover - transient mount issue
                pass

    # ------------------------------------------------------------------
    def _spec(self, digest: str) -> ExperimentSpec:
        spec = self._specs.get(digest)
        if spec is None:
            data = read_json(self.layout.spec_path(digest))
            if data is None:
                raise RuntimeError(
                    f"spec {digest} is not registered in "
                    f"{self.layout.specs}"
                )
            spec = ExperimentSpec.from_dict(data)
            self._specs[digest] = spec
        return spec

    def _corpus(self, spec: ExperimentSpec) -> TraceCorpus:
        # One persistent corpus per system config: in-memory
        # memoization within this worker (shared across a thread pool
        # via the registry), the fabric's shared traces/ dir across
        # workers and hosts — mapped zero-copy, so same-host workers
        # share one physical copy of the trace bytes.
        return self._corpora.corpus(spec)


@dataclasses.dataclass(frozen=True)
class WorkerOptions:
    """Picklable knobs for a pool of worker processes."""

    lease_ttl: float = DEFAULT_LEASE_TTL
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    max_cells: Optional[int] = None
    follow: bool = False
    poll_interval: float = 0.2


def _worker_entry(fabric_dir: str, options: WorkerOptions) -> None:
    """Child-process entry point (module-level, hence picklable)."""
    FabricWorker(
        fabric_dir,
        lease_ttl=options.lease_ttl,
        max_attempts=options.max_attempts,
        max_cells=options.max_cells,
        follow=options.follow,
        poll_interval=options.poll_interval,
    ).run()


def run_worker_pool(
    fabric_dir: PathLike,
    n_workers: int,
    options: Optional[WorkerOptions] = None,
    threads: bool = False,
) -> None:
    """Run ``n_workers`` local workers; blocks until all exit.

    ``n_workers=1`` runs in-process (no fork cost, easier debugging);
    larger pools use one OS process per worker so cells execute with
    true parallelism, mirroring the in-process runner's pool.

    ``threads=True`` instead runs every worker as a thread of *this*
    process, all sharing one in-memory trace corpus through a
    :class:`CorpusRegistry` — no fork, no per-worker trace loads.
    Thread workers scale when the native kernels (which release the
    GIL around their compute phases) carry the replay; under the pure
    Python tier they serialize on the GIL and only overlap I/O.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    options = options or WorkerOptions()
    fabric_dir = os.fspath(fabric_dir)
    if threads and n_workers > 1:
        registry = CorpusRegistry(FabricLayout(fabric_dir).ensure().traces)
        base_id = default_worker_id()
        workers = [
            FabricWorker(
                fabric_dir,
                worker_id=f"{base_id}-t{index}",
                lease_ttl=options.lease_ttl,
                max_attempts=options.max_attempts,
                max_cells=options.max_cells,
                follow=options.follow,
                poll_interval=options.poll_interval,
                corpora=registry,
            )
            for index in range(n_workers)
        ]
        pool = [
            threading.Thread(target=worker.run, daemon=True)
            for worker in workers
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        return
    if n_workers == 1:
        _worker_entry(fabric_dir, options)
        return
    processes = [
        multiprocessing.Process(
            target=_worker_entry, args=(fabric_dir, options)
        )
        for _ in range(n_workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
