"""On-disk layout of one fabric directory.

A fabric directory is the whole coordination surface: a single local
directory or a shared mount visible to every worker host.  All state
lives in flat subdirectories of small JSON artifacts, every write is
atomic (:mod:`repro.common.atomicio`), and every claim uses
``O_CREAT|O_EXCL`` — so the fabric needs no daemon, no database, and
no locks beyond what POSIX rename/create semantics give any shared
filesystem.

Layout::

    <fabric>/
      specs/<digest>.json     registered ExperimentSpecs (by digest)
      queue/pending/<key>.json   cells awaiting execution
      queue/claims/<key>.json    one per leased cell (worker+heartbeat)
      queue/retries/<key>.json   attempt count + backoff gate
      queue/failed/<key>.json    poison-cell quarantine (with errors)
      queue/done/<key>.json      advisory completion markers
      store/<key>.json        content-addressed raw cell results
      traces/                 shared trace cache (TraceCache layout)

``<key>`` is :meth:`ExperimentSpec.cell_key` — a content hash of one
cell's full configuration — so overlapping specs share queue entries
and results, and re-enqueueing is idempotent.
"""

from __future__ import annotations

import os
import pathlib
from typing import Union

PathLike = Union[str, "os.PathLike[str]"]


class FabricLayout:
    """Path arithmetic (and directory creation) for one fabric dir."""

    def __init__(self, root: PathLike):
        self.root = pathlib.Path(root)

    # -- subdirectories ------------------------------------------------
    @property
    def specs(self) -> pathlib.Path:
        return self.root / "specs"

    @property
    def pending(self) -> pathlib.Path:
        return self.root / "queue" / "pending"

    @property
    def claims(self) -> pathlib.Path:
        return self.root / "queue" / "claims"

    @property
    def retries(self) -> pathlib.Path:
        return self.root / "queue" / "retries"

    @property
    def failed(self) -> pathlib.Path:
        return self.root / "queue" / "failed"

    @property
    def done(self) -> pathlib.Path:
        return self.root / "queue" / "done"

    @property
    def store(self) -> pathlib.Path:
        return self.root / "store"

    @property
    def traces(self) -> pathlib.Path:
        """The fabric's co-located shared trace cache.

        Workers point their :class:`~repro.experiment.cache.TraceCache`
        here by default, so one worker's generated trace is every
        other worker's cache hit — the same single-generation contract
        the in-process pool gets from its warm phase, extended across
        hosts.
        """
        return self.root / "traces"

    # ------------------------------------------------------------------
    def ensure(self) -> "FabricLayout":
        """Create every fabric subdirectory (idempotent)."""
        for directory in (
            self.specs,
            self.pending,
            self.claims,
            self.retries,
            self.failed,
            self.done,
            self.store,
            self.traces,
        ):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    # -- per-key paths -------------------------------------------------
    def spec_path(self, digest: str) -> pathlib.Path:
        return self.specs / f"{digest}.json"

    def pending_path(self, key: str) -> pathlib.Path:
        return self.pending / f"{key}.json"

    def claim_path(self, key: str) -> pathlib.Path:
        return self.claims / f"{key}.json"

    def retry_path(self, key: str) -> pathlib.Path:
        return self.retries / f"{key}.json"

    def failed_path(self, key: str) -> pathlib.Path:
        return self.failed / f"{key}.json"

    def done_path(self, key: str) -> pathlib.Path:
        return self.done / f"{key}.json"
