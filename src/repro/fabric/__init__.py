"""Distributed sweep fabric: durable queue, shared store, serving.

Scales the in-process :class:`~repro.experiment.runner.Runner` out to
many processes and hosts with nothing but a shared directory.  Sweep
cells (already deterministic, content-addressed units) become durable
queue entries; their raw results become content-addressed artifacts;
repeated queries become store reads.  The moving parts:

- :class:`WorkQueue` (:mod:`repro.fabric.queue`) — filesystem work
  queue with atomic ``O_EXCL`` claims, heartbeat leases, expiry
  reclamation, bounded retries with backoff, and poison-cell
  quarantine.
- :class:`ResultStore` (:mod:`repro.fabric.store`) — atomic
  ``<cell-key>.json`` artifacts; torn files read as misses and heal.
- :class:`FabricWorker` (:mod:`repro.fabric.worker`) — the ``repro
  work`` claim-execute-store loop, running cells through the same
  :func:`~repro.experiment.runner.execute_job` as the local runner.
- :class:`FabricCoordinator` (:mod:`repro.fabric.coordinator`) — the
  ``repro sweep --fabric`` side: enqueue only missing cells, resume
  for free, reassemble a byte-identical :class:`ResultSet`.
- :mod:`repro.fabric.serve` — the ``repro serve`` JSON endpoint
  answering ``GET /result/<digest>`` and ``POST /sweep`` from the
  store.

Quick start (one machine, two terminals)::

    $ repro sweep spec.json --fabric /mnt/fabric --workers 4
    $ repro fabric status /mnt/fabric      # meanwhile, from anywhere

or a standing service::

    $ repro serve /mnt/fabric --port 8321 --workers 4 &
    $ curl -d @spec.json http://localhost:8321/sweep
"""

from repro.fabric.coordinator import FabricCoordinator
from repro.fabric.layout import FabricLayout
from repro.fabric.queue import (
    BACKOFF_BASE,
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    Cell,
    Lease,
    WorkQueue,
)
from repro.fabric.serve import FabricHTTPServer, make_server, serve
from repro.fabric.store import STORE_FORMAT, ResultStore
from repro.fabric.worker import (
    FabricWorker,
    WorkerOptions,
    default_worker_id,
    run_worker_pool,
)

__all__ = [
    "BACKOFF_BASE",
    "Cell",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "FabricCoordinator",
    "FabricHTTPServer",
    "FabricLayout",
    "FabricWorker",
    "Lease",
    "ResultStore",
    "STORE_FORMAT",
    "WorkQueue",
    "WorkerOptions",
    "default_worker_id",
    "make_server",
    "run_worker_pool",
    "serve",
]
