"""``repro serve`` — answer sweep queries from the result store.

A small stdlib :mod:`http.server` JSON endpoint over one fabric
directory, for dashboard-style repeated query traffic:

- ``GET /result/<spec-digest>`` — the assembled :class:`ResultSet`
  JSON for a registered spec, straight from the store.  Warm lookups
  recompute nothing (zero cells executed — assembly is reading
  artifacts); an incomplete sweep answers ``202`` with progress, an
  unknown digest ``404``.
- ``POST /sweep`` — body is an :class:`ExperimentSpec` JSON document.
  Registers the spec, enqueues only its missing cells, and answers
  ``200`` with the full result when the store already covers it (the
  repeated-query fast path) or ``202`` with the digest and queue
  counts when cold — workers (``repro work --follow``, or the
  server's own embedded workers) then fill the store.
- ``GET /status`` — queue/lease/store introspection, the HTTP twin of
  ``repro fabric status``.

The server itself never executes cells, so a burst of identical
queries costs file reads, not simulation.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.experiment.spec import ExperimentSpec
from repro.fabric.coordinator import FabricCoordinator
from repro.fabric.layout import PathLike
from repro.fabric.worker import WorkerOptions, _worker_entry

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8321

_RESULT_PATH = re.compile(r"^/result/([0-9a-f]{16})$")


class FabricHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the fabric coordinator."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], fabric_dir: PathLike):
        self.coordinator = FabricCoordinator(fabric_dir)
        super().__init__(address, FabricRequestHandler)


class FabricRequestHandler(BaseHTTPRequestHandler):
    server: FabricHTTPServer

    # -- plumbing ------------------------------------------------------
    def _send_json(self, code: int, body: str) -> None:
        payload = body.encode("ascii")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_object(self, code: int, obj: object) -> None:
        self._send_json(
            code, json.dumps(obj, indent=2, sort_keys=True) + "\n"
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep test/CI output quiet; use /status for visibility

    # -- GET -----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        coordinator = self.server.coordinator
        if self.path == "/status":
            self._send_object(200, coordinator.status())
            return
        match = _RESULT_PATH.match(self.path)
        if match is None:
            self._send_object(404, {"error": "unknown path"})
            return
        digest = match.group(1)
        spec = coordinator.load_spec(digest)
        if spec is None:
            self._send_object(
                404, {"error": f"spec {digest} is not registered"}
            )
            return
        results = coordinator.try_assemble(spec)
        if results is None:
            self._send_object(202, self._progress(digest, spec))
            return
        # Byte-identical to `repro sweep --out`'s file contents.
        self._send_json(200, results.to_json() + "\n")

    # -- POST ----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/sweep":
            self._send_object(404, {"error": "unknown path"})
            return
        coordinator = self.server.coordinator
        try:
            length = int(self.headers.get("Content-Length", "0"))
            spec = ExperimentSpec.from_dict(
                json.loads(self.rfile.read(length))
            )
        except (TypeError, ValueError) as exc:
            self._send_object(400, {"error": f"invalid spec: {exc}"})
            return
        digest = coordinator.register(spec)
        counts = coordinator.enqueue_missing(spec)
        results = coordinator.try_assemble(spec)
        if results is not None:
            self._send_json(200, results.to_json() + "\n")
            return
        progress = self._progress(digest, spec)
        progress["enqueued"] = counts["enqueued"]
        self._send_object(202, progress)

    # ------------------------------------------------------------------
    def _progress(self, digest: str, spec: ExperimentSpec) -> dict:
        coordinator = self.server.coordinator
        done = sum(
            1
            for _, key in coordinator.cells(spec)
            if coordinator.store.has(key)
        )
        return {
            "digest": digest,
            "complete": False,
            "cells_total": spec.n_jobs,
            "cells_stored": done,
            "queue": {
                key: value
                for key, value in coordinator.queue.status().items()
                if key in ("pending", "leased", "failed")
            },
        }


def make_server(
    fabric_dir: PathLike,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> FabricHTTPServer:
    """A bound (not yet serving) fabric HTTP server; port 0 = ephemeral."""
    return FabricHTTPServer((host, port), fabric_dir)


def serve(
    fabric_dir: PathLike,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    workers: int = 0,
    worker_options: Optional[WorkerOptions] = None,
) -> None:
    """Serve forever; optionally run embedded follow-mode workers.

    ``workers > 0`` starts that many local worker processes in follow
    mode (they poll for cells that ``POST /sweep`` enqueues), making
    a single ``repro serve --workers N`` a self-contained node; with
    the default 0 the server is storage-only and fleets attach via
    ``repro work <dir> --follow``.
    """
    server = make_server(fabric_dir, host, port)
    pool = []
    if workers > 0:
        import multiprocessing
        import os

        options = worker_options or WorkerOptions(follow=True)
        pool = [
            multiprocessing.Process(
                target=_worker_entry,
                args=(os.fspath(fabric_dir), options),
                daemon=True,
            )
            for _ in range(workers)
        ]
        for process in pool:
            process.start()
    try:
        server.serve_forever()
    finally:
        server.server_close()
        for process in pool:
            process.terminate()
