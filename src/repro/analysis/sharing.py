"""Figures 2 and 3 — instantaneous sharing and degree of sharing.

Figure 2: for each miss, how many *other* processors must observe it
(0, 1, 2, 3+), split by reads and writes.  Zero means the minimal set
suffices (no directory indirection).

Figure 3: how many unique processors touch each block over the whole
run — as a histogram over blocks (3a) and weighted by each block's
miss count (3b).

Both figures are computed by **column kernels** over the trace's
cached key columns when numpy is available (bincount/unique-style
histograms; see :func:`_required_counts_np` for the vectorized MOSI
replay), falling back to the original record loops otherwise.  The
record loops are kept public (``*_records``) as the equivalence
oracles — the analysis-equivalence suite asserts the kernels match
them exactly.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, Optional

from repro.common.destset import popcount
from repro.coherence.state import GlobalCoherenceState
from repro.trace import columns as _columns
from repro.trace.trace import Trace

#: Figure 2 bins: 0, 1, 2, and 3-or-more other processors.
SHARING_BINS = (0, 1, 2, 3)

#: Block granularity used when the caller does not pass one — the
#: paper's 64 B blocks (kept equal to ``SystemConfig.block_size``'s
#: default and to :class:`GlobalCoherenceState`'s default).
DEFAULT_BLOCK_SIZE = 64


@dataclasses.dataclass(frozen=True)
class SharingHistogram:
    """Figure 2 data: percent of misses per required-recipient bin."""

    workload: str
    read_pct: Dict[int, float]
    write_pct: Dict[int, float]
    total_misses: int

    def total_pct(self, bin_index: int) -> float:
        """Reads + writes percentage for one bin."""
        return self.read_pct[bin_index] + self.write_pct[bin_index]

    @property
    def multi_recipient_pct(self) -> float:
        """Percent of misses needing >1 other processor (bins 2, 3+).

        The paper observes this is only ~10% across its workloads —
        the figure motivating destination-set prediction over
        broadcast.
        """
        return sum(self.total_pct(b) for b in SHARING_BINS[2:])


# ----------------------------------------------------------------------
# Vectorized MOSI replay (shared by Figures 2 and 4)
# ----------------------------------------------------------------------
def _required_counts_cached(np_, trace: Trace, block_size: int):
    """Memoized :func:`_required_counts_np` (one replay per trace)."""
    return trace.memo(
        ("mosi_required", block_size),
        lambda: _required_counts_np(np_, trace, block_size),
    )


def _required_counts_np(np_, trace: Trace, block_size: int):
    """Per-record count of *other* processors that must observe it.

    The omniscient-MOSI replay (:meth:`GlobalCoherenceState.apply_fast`)
    is sequential per block, but the *counts* it produces have a
    closed form over epochs: a block's history splits into epochs at
    each GETX; the epoch's owner is that GETX's requester (memory for
    epoch 0), and the epoch's sharers are the distinct GETS requesters
    other than the owner.  So per record:

    - GETS: 1 if a processor other than the requester owns the epoch,
    - GETX: the owner term plus the epoch's distinct-reader count,
      minus one if the writer itself was among the readers,

    all of which reduce to cumulative sums, ``unique`` and ``bincount``
    over the trace's key columns.  Returns ``(counts, getx_mask)`` as
    int64/bool arrays in trace order.
    """
    blocks = trace.block_keys(block_size)
    n = len(blocks)
    keys = np_.frombuffer(blocks, dtype=np_.int64)
    requesters = np_.frombuffer(
        trace.requesters, dtype=np_.int32
    ).astype(np_.int64)
    getx = np_.frombuffer(trace.accesses, dtype=np_.int8).astype(
        np_.int64
    )
    n_procs = trace.n_processors

    order = np_.argsort(keys, kind="stable")
    k_sorted = keys[order]
    r_sorted = requesters[order]
    x_sorted = getx[order]

    # Segment (per-block) bookkeeping over the sorted view.
    seg_start = np_.empty(n, dtype=bool)
    seg_start[0] = True
    seg_start[1:] = k_sorted[1:] != k_sorted[:-1]
    seg_id = np_.cumsum(seg_start) - 1
    n_segments = int(seg_id[-1]) + 1 if n else 0

    # Exclusive per-block GETX count = the record's epoch index.
    cum_getx = np_.cumsum(x_sorted) - x_sorted
    seg_base = cum_getx[seg_start][seg_id]
    epoch = cum_getx - seg_base

    # One flat slot per (block, epoch); epoch e >= 1 is owned by the
    # requester of the block's e-th GETX.
    getx_per_seg = np_.bincount(
        seg_id, weights=x_sorted, minlength=n_segments
    ).astype(np_.int64)
    offsets = np_.zeros(n_segments, dtype=np_.int64)
    np_.cumsum(getx_per_seg[:-1] + 1, out=offsets[1:])
    total_slots = int(
        offsets[-1] + getx_per_seg[-1] + 1
    ) if n_segments else 0
    owners = np_.full(total_slots, -1, dtype=np_.int64)
    getx_mask_sorted = x_sorted == 1
    slot = offsets[seg_id] + epoch
    owners[slot[getx_mask_sorted] + 1] = r_sorted[getx_mask_sorted]
    owner_of = owners[slot]

    owner_term = ((owner_of >= 0) & (owner_of != r_sorted)).astype(
        np_.int64
    )
    counts_sorted = owner_term.copy()

    # Distinct epoch readers (GETS by non-owners), via unique pairs.
    reader_mask = (~getx_mask_sorted) & (r_sorted != owner_of)
    pair = slot * n_procs + r_sorted
    unique_pairs = np_.unique(pair[reader_mask])
    readers_per_slot = np_.bincount(
        unique_pairs // n_procs, minlength=max(total_slots, 1)
    )
    if getx_mask_sorted.any():
        ending_slot = slot[getx_mask_sorted]
        writer = r_sorted[getx_mask_sorted]
        target = ending_slot * n_procs + writer
        position = np_.searchsorted(unique_pairs, target)
        position = np_.minimum(position, max(len(unique_pairs) - 1, 0))
        writer_was_reader = (
            unique_pairs[position] == target
            if len(unique_pairs)
            else np_.zeros(len(target), dtype=bool)
        )
        counts_sorted[getx_mask_sorted] += (
            readers_per_slot[ending_slot]
            - writer_was_reader.astype(np_.int64)
        )

    counts = np_.empty(n, dtype=np_.int64)
    counts[order] = counts_sorted
    getx_mask = np_.empty(n, dtype=bool)
    getx_mask[order] = getx_mask_sorted
    return counts, getx_mask


def sharing_histogram_records(
    trace: Trace,
    warmup_fraction: float = 0.25,
    block_size: Optional[int] = None,
) -> SharingHistogram:
    """Figure 2 via the record-at-a-time replay (equivalence oracle)."""
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    state = GlobalCoherenceState(trace.n_processors, block_size)
    apply_fast = state.apply_fast
    n_warmup = int(len(trace) * warmup_fraction)
    reads = collections.Counter()
    writes = collections.Counter()
    measured = 0
    top_bin = SHARING_BINS[-1]
    index = 0
    for block, requester, code in zip(
        trace.block_keys(state.block_size),
        trace.requesters,
        trace.accesses,
    ):
        required = apply_fast(block, requester, code)[3]
        index += 1
        if index <= n_warmup:
            continue
        measured += 1
        bin_index = min(popcount(required), top_bin)
        if code:
            writes[bin_index] += 1
        else:
            reads[bin_index] += 1
    return _histogram_from_counts(trace.name, reads, writes, measured)


def sharing_histogram(
    trace: Trace,
    warmup_fraction: float = 0.25,
    block_size: Optional[int] = None,
) -> SharingHistogram:
    """Compute the Figure 2 histogram for one trace.

    Vectorized over the trace's key columns when numpy is available;
    identical to :func:`sharing_histogram_records` either way.
    """
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    np_ = _columns.numpy_module()
    if np_ is None or len(trace) == 0:
        return sharing_histogram_records(
            trace, warmup_fraction, block_size
        )
    counts, getx_mask = _required_counts_cached(np_, trace, block_size)
    n_warmup = int(len(trace) * warmup_fraction)
    top_bin = SHARING_BINS[-1]
    bins = np_.minimum(counts[n_warmup:], top_bin)
    getx_measured = getx_mask[n_warmup:]
    write_hist = np_.bincount(
        bins[getx_measured], minlength=top_bin + 1
    )
    read_hist = np_.bincount(
        bins[~getx_measured], minlength=top_bin + 1
    )
    measured = len(trace) - n_warmup
    reads = {b: int(read_hist[b]) for b in SHARING_BINS}
    writes = {b: int(write_hist[b]) for b in SHARING_BINS}
    return _histogram_from_counts(trace.name, reads, writes, measured)


def _histogram_from_counts(
    name: str, reads, writes, measured: int
) -> SharingHistogram:
    denominator = max(1, measured)
    return SharingHistogram(
        workload=name,
        read_pct={
            b: 100.0 * reads[b] / denominator for b in SHARING_BINS
        },
        write_pct={
            b: 100.0 * writes[b] / denominator for b in SHARING_BINS
        },
        total_misses=measured,
    )


@dataclasses.dataclass(frozen=True)
class DegreeOfSharing:
    """Figure 3 data: blocks (and misses) by processor-touch count.

    ``blocks_pct[n]`` is the percent of unique blocks touched by
    exactly ``n`` processors (Fig 3a); ``misses_pct[n]`` weights each
    block by its miss count (Fig 3b).  Keys run 1..n_processors.
    """

    workload: str
    blocks_pct: Dict[int, float]
    misses_pct: Dict[int, float]
    unique_blocks: int

    def blocks_cumulative(self, up_to: int) -> float:
        """Percent of blocks touched by at most ``up_to`` processors."""
        return sum(
            pct for n, pct in self.blocks_pct.items() if n <= up_to
        )

    def misses_cumulative(self, up_to: int) -> float:
        """Percent of misses to blocks touched by <= ``up_to`` procs."""
        return sum(
            pct for n, pct in self.misses_pct.items() if n <= up_to
        )


def degree_of_sharing_records(
    trace: Trace, block_size: Optional[int] = None
) -> DegreeOfSharing:
    """Figure 3 via the record loop (equivalence oracle)."""
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    touchers: Dict[int, set] = collections.defaultdict(set)
    miss_counts: Dict[int, int] = collections.Counter()
    blocks = trace.block_keys(block_size)
    for block, requester in zip(blocks, trace.requesters):
        touchers[block].add(requester)
    miss_counts.update(blocks)

    block_histogram = collections.Counter()
    miss_histogram = collections.Counter()
    for block, nodes in touchers.items():
        degree = len(nodes)
        block_histogram[degree] += 1
        miss_histogram[degree] += miss_counts[block]
    return _degree_from_histograms(
        trace, block_histogram, miss_histogram, len(touchers)
    )


def degree_of_sharing(
    trace: Trace, block_size: Optional[int] = None
) -> DegreeOfSharing:
    """Compute the Figure 3 histograms for one trace.

    ``block_size`` defaults to the same granularity as
    :func:`sharing_histogram` (:data:`DEFAULT_BLOCK_SIZE`); pass the
    system's configured block size when analysing a non-default
    configuration.  Vectorized (unique/bincount over the block-key
    column) when numpy is available.
    """
    if block_size is None:
        block_size = DEFAULT_BLOCK_SIZE
    np_ = _columns.numpy_module()
    if np_ is None or len(trace) == 0:
        return degree_of_sharing_records(trace, block_size)
    keys = np_.frombuffer(
        trace.block_keys(block_size), dtype=np_.int64
    )
    requesters = np_.frombuffer(
        trace.requesters, dtype=np_.int32
    ).astype(np_.int64)
    n_procs = trace.n_processors
    # One sort of the (block, requester) pair keys yields everything:
    # runs of equal block are the per-block miss counts, runs of equal
    # pair collapse to the distinct touchers behind the degree.
    pair = keys * n_procs + requesters
    pair.sort()
    new_pair = np_.empty(len(pair), dtype=bool)
    new_pair[0] = True
    new_pair[1:] = pair[1:] != pair[:-1]
    block_sorted = pair // n_procs
    new_block = np_.empty(len(pair), dtype=bool)
    new_block[0] = True
    new_block[1:] = block_sorted[1:] != block_sorted[:-1]
    block_ids = np_.cumsum(new_block) - 1
    miss_counts = np_.bincount(block_ids)
    degrees = np_.bincount(block_ids[new_pair])
    block_histogram = np_.bincount(degrees, minlength=n_procs + 1)
    miss_histogram = np_.bincount(
        degrees, weights=miss_counts, minlength=n_procs + 1
    ).astype(np_.int64)
    return _degree_from_histograms(
        trace,
        {d: int(c) for d, c in enumerate(block_histogram) if c},
        {d: int(c) for d, c in enumerate(miss_histogram) if c},
        int(block_ids[-1]) + 1,
    )


def _degree_from_histograms(
    trace: Trace, block_histogram, miss_histogram, unique_blocks: int
) -> DegreeOfSharing:
    n_procs = trace.n_processors
    n_blocks = max(1, unique_blocks)
    n_misses = max(1, len(trace))
    return DegreeOfSharing(
        workload=trace.name,
        blocks_pct={
            n: 100.0 * block_histogram.get(n, 0) / n_blocks
            for n in range(1, n_procs + 1)
        },
        misses_pct={
            n: 100.0 * miss_histogram.get(n, 0) / n_misses
            for n in range(1, n_procs + 1)
        },
        unique_blocks=unique_blocks,
    )
