"""Figures 2 and 3 — instantaneous sharing and degree of sharing.

Figure 2: for each miss, how many *other* processors must observe it
(0, 1, 2, 3+), split by reads and writes.  Zero means the minimal set
suffices (no directory indirection).

Figure 3: how many unique processors touch each block over the whole
run — as a histogram over blocks (3a) and weighted by each block's
miss count (3b).
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict

from repro.common.destset import popcount
from repro.coherence.state import GlobalCoherenceState
from repro.trace.trace import Trace

#: Figure 2 bins: 0, 1, 2, and 3-or-more other processors.
SHARING_BINS = (0, 1, 2, 3)


@dataclasses.dataclass(frozen=True)
class SharingHistogram:
    """Figure 2 data: percent of misses per required-recipient bin."""

    workload: str
    read_pct: Dict[int, float]
    write_pct: Dict[int, float]
    total_misses: int

    def total_pct(self, bin_index: int) -> float:
        """Reads + writes percentage for one bin."""
        return self.read_pct[bin_index] + self.write_pct[bin_index]

    @property
    def multi_recipient_pct(self) -> float:
        """Percent of misses needing >1 other processor (bins 2, 3+).

        The paper observes this is only ~10% across its workloads —
        the figure motivating destination-set prediction over
        broadcast.
        """
        return sum(self.total_pct(b) for b in SHARING_BINS[2:])


def sharing_histogram(
    trace: Trace, warmup_fraction: float = 0.25
) -> SharingHistogram:
    """Compute the Figure 2 histogram for one trace."""
    state = GlobalCoherenceState(trace.n_processors)
    apply_fast = state.apply_fast
    n_warmup = int(len(trace) * warmup_fraction)
    reads = collections.Counter()
    writes = collections.Counter()
    measured = 0
    top_bin = SHARING_BINS[-1]
    index = 0
    for block, requester, code in zip(
        trace.block_keys(state.block_size),
        trace.requesters,
        trace.accesses,
    ):
        required = apply_fast(block, requester, code)[3]
        index += 1
        if index <= n_warmup:
            continue
        measured += 1
        bin_index = min(popcount(required), top_bin)
        if code:
            writes[bin_index] += 1
        else:
            reads[bin_index] += 1
    denominator = max(1, measured)
    return SharingHistogram(
        workload=trace.name,
        read_pct={
            b: 100.0 * reads[b] / denominator for b in SHARING_BINS
        },
        write_pct={
            b: 100.0 * writes[b] / denominator for b in SHARING_BINS
        },
        total_misses=measured,
    )


@dataclasses.dataclass(frozen=True)
class DegreeOfSharing:
    """Figure 3 data: blocks (and misses) by processor-touch count.

    ``blocks_pct[n]`` is the percent of unique blocks touched by
    exactly ``n`` processors (Fig 3a); ``misses_pct[n]`` weights each
    block by its miss count (Fig 3b).  Keys run 1..n_processors.
    """

    workload: str
    blocks_pct: Dict[int, float]
    misses_pct: Dict[int, float]
    unique_blocks: int

    def blocks_cumulative(self, up_to: int) -> float:
        """Percent of blocks touched by at most ``up_to`` processors."""
        return sum(
            pct for n, pct in self.blocks_pct.items() if n <= up_to
        )

    def misses_cumulative(self, up_to: int) -> float:
        """Percent of misses to blocks touched by <= ``up_to`` procs."""
        return sum(
            pct for n, pct in self.misses_pct.items() if n <= up_to
        )


def degree_of_sharing(
    trace: Trace, block_size: int = 64
) -> DegreeOfSharing:
    """Compute the Figure 3 histograms for one trace."""
    touchers: Dict[int, set] = collections.defaultdict(set)
    miss_counts: Dict[int, int] = collections.Counter()
    blocks = trace.block_keys(block_size)
    for block, requester in zip(blocks, trace.requesters):
        touchers[block].add(requester)
    miss_counts.update(blocks)

    n_procs = trace.n_processors
    block_histogram = collections.Counter()
    miss_histogram = collections.Counter()
    for block, nodes in touchers.items():
        degree = len(nodes)
        block_histogram[degree] += 1
        miss_histogram[degree] += miss_counts[block]

    n_blocks = max(1, len(touchers))
    n_misses = max(1, len(trace))
    return DegreeOfSharing(
        workload=trace.name,
        blocks_pct={
            n: 100.0 * block_histogram[n] / n_blocks
            for n in range(1, n_procs + 1)
        },
        misses_pct={
            n: 100.0 * miss_histogram[n] / n_misses
            for n in range(1, n_procs + 1)
        },
        unique_blocks=len(touchers),
    )
