"""Predictor accuracy analysis (beyond the paper's aggregate metrics).

The paper evaluates predictors end-to-end (indirections and messages).
This module opens the box: for every prediction it scores the
predicted destination set against the required one, yielding

- **coverage** (recall): fraction of required processors that were in
  the predicted set — 100% coverage on a request means no retry;
- **precision**: fraction of predicted *extra* processors (beyond the
  minimal set) that were actually required — low precision is pure
  bandwidth waste;
- the exact/over/under/mixed breakdown of prediction outcomes.

These decompose *why* a policy sits where it does on the Figure 5
plane: Owner fails coverage on wide write sets, Broadcast-If-Shared
buys coverage with near-zero precision, Group balances both.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Optional

from repro.common.params import PredictorConfig, SystemConfig
from repro.coherence.sufficiency import minimal_set, required_set
from repro.protocols.multicast import MulticastSnoopingProtocol
from repro.trace.trace import Trace


class PredictionOutcome(enum.Enum):
    """Classification of one prediction against the required set."""

    EXACT = "exact"        # predicted extras == required exactly
    OVER = "over"          # superset of required (wasted messages)
    UNDER = "under"        # subset of required (retry)
    MIXED = "mixed"        # both missing and spurious nodes
    TRIVIAL = "trivial"    # nothing required, nothing predicted


@dataclasses.dataclass
class AccuracyReport:
    """Aggregated prediction-quality statistics for one policy."""

    policy: str
    workload: str
    predictions: int = 0
    required_nodes: int = 0
    covered_nodes: int = 0
    predicted_extra_nodes: int = 0
    useful_extra_nodes: int = 0
    outcomes: Dict[PredictionOutcome, int] = dataclasses.field(
        default_factory=lambda: {o: 0 for o in PredictionOutcome}
    )

    # ------------------------------------------------------------------
    @property
    def coverage_pct(self) -> float:
        """Percent of required processors the predictions covered."""
        if not self.required_nodes:
            return 100.0
        return 100.0 * self.covered_nodes / self.required_nodes

    @property
    def precision_pct(self) -> float:
        """Percent of predicted extra processors that were required."""
        if not self.predicted_extra_nodes:
            return 100.0
        return 100.0 * self.useful_extra_nodes / self.predicted_extra_nodes

    def outcome_pct(self, outcome: PredictionOutcome) -> float:
        """Percent of predictions with the given outcome."""
        if not self.predictions:
            return 0.0
        return 100.0 * self.outcomes[outcome] / self.predictions

    def __str__(self) -> str:
        return (
            f"{self.policy:20s} coverage={self.coverage_pct:5.1f}%  "
            f"precision={self.precision_pct:5.1f}%  "
            f"exact={self.outcome_pct(PredictionOutcome.EXACT):5.1f}%  "
            f"under={self.outcome_pct(PredictionOutcome.UNDER):5.1f}%"
        )


class _AccuracyProbeProtocol(MulticastSnoopingProtocol):
    """Multicast snooping that scores each prediction as it happens."""

    def __init__(self, config, predictor, predictor_config, report):
        super().__init__(config, predictor, predictor_config)
        self.report = report
        self.scoring = True

    def _handle(self, record):
        if self.scoring:
            self._score(record)
        return super()._handle(record)

    def _score(self, record) -> None:
        n = self.config.n_processors
        predictor = self.predictors[record.requester]
        predicted = predictor.predict(
            record.address, record.pc, record.access
        )
        state = self.state.lookup(record.address)
        minimal = minimal_set(record.requester, record.address, n,
                              self.config.block_size)
        # Required processors beyond the minimal set.
        required = required_set(
            state, record.requester, record.access, n
        ) - minimal
        extras = (predicted | minimal) - minimal

        report = self.report
        report.predictions += 1
        report.required_nodes += required.count()
        report.covered_nodes += (required & extras).count()
        report.predicted_extra_nodes += extras.count()
        report.useful_extra_nodes += (extras & required).count()

        if required.is_empty() and extras.is_empty():
            outcome = PredictionOutcome.TRIVIAL
        elif extras == required:
            outcome = PredictionOutcome.EXACT
        elif extras.is_superset_of(required):
            outcome = PredictionOutcome.OVER
        elif required.is_superset_of(extras):
            outcome = PredictionOutcome.UNDER
        else:
            outcome = PredictionOutcome.MIXED
        report.outcomes[outcome] += 1


def prediction_accuracy(
    trace: Trace,
    policy: str,
    config: Optional[SystemConfig] = None,
    predictor_config: Optional[PredictorConfig] = None,
    warmup_fraction: float = 0.25,
) -> AccuracyReport:
    """Score ``policy``'s predictions over the post-warmup trace."""
    config = config if config is not None else SystemConfig()
    report = AccuracyReport(policy=policy, workload=trace.name)
    protocol = _AccuracyProbeProtocol(
        config, policy, predictor_config, report
    )
    n_warmup = int(len(trace) * warmup_fraction)
    warmup, measured = trace.split_warmup(n_warmup)
    protocol.scoring = False
    protocol.run(warmup)
    protocol.scoring = True
    protocol.run(measured)
    return report
