"""Table 2 — workload properties.

For each workload the paper reports: memory touched in 64 B blocks and
1024 B macroblocks, static instructions causing L2 misses, total L2
misses, misses per 1,000 instructions, and the percent of misses that
would indirect in a directory protocol.
"""

from __future__ import annotations

import dataclasses

from repro.cache.pipeline import CollectionResult
from repro.coherence.state import GlobalCoherenceState
from repro.trace.stats import compute_trace_stats


@dataclasses.dataclass(frozen=True)
class WorkloadProperties:
    """One Table 2 row, measured from a collected trace."""

    workload: str
    footprint_blocks: int
    footprint_macroblocks: int
    static_miss_pcs: int
    total_misses: int
    misses_per_kilo_instruction: float
    directory_indirection_pct: float

    @property
    def footprint_bytes(self) -> int:
        """Memory touched (64 B blocks), in bytes."""
        return self.footprint_blocks * 64

    @property
    def macroblock_footprint_bytes(self) -> int:
        """Memory touched (1024 B macroblocks), in bytes."""
        return self.footprint_macroblocks * 1024


def workload_properties(
    result: CollectionResult,
    n_processors: int = 16,
    warmup_fraction: float = 0.25,
    exclude_cold: bool = False,
) -> WorkloadProperties:
    """Measure a Table 2 row from a trace-collection result.

    Footprint and PC counts cover the whole trace (cold misses touch
    the footprint); miss rate and indirection percent are measured on
    the post-warmup suffix, matching the paper's warmup protocol.

    ``exclude_cold`` drops first-touch (compulsory) misses from the
    measured statistics.  The paper measures after a one-million-miss
    warmup of real long-running applications, where compulsory misses
    are negligible; in a bounded synthetic trace they would otherwise
    dilute the steady-state sharing behaviour.  Capacity-miss
    *refetches* of previously touched blocks still count.
    """
    trace = result.trace
    stats = compute_trace_stats(trace)

    state = GlobalCoherenceState(n_processors)
    n_warmup = int(len(trace) * warmup_fraction)
    seen_blocks = set()
    measured = indirections = 0
    for index, record in enumerate(trace):
        block = record.block(64)
        cold = block not in seen_blocks
        seen_blocks.add(block)
        outcome = state.apply(record)
        if index >= n_warmup and not (cold and exclude_cold):
            measured += 1
            indirections += int(outcome.directory_indirection)

    measured_fraction = (
        (len(trace) - n_warmup) / len(trace) if len(trace) else 0.0
    )
    instructions = result.total_instructions * measured_fraction
    return WorkloadProperties(
        workload=trace.name,
        footprint_blocks=stats.unique_blocks,
        footprint_macroblocks=stats.unique_macroblocks,
        static_miss_pcs=stats.unique_pcs,
        total_misses=len(trace),
        misses_per_kilo_instruction=(
            1000.0 * measured / instructions if instructions else 0.0
        ),
        directory_indirection_pct=(
            100.0 * indirections / measured if measured else 0.0
        ),
    )
