"""Figure 4 — temporal and spatial locality of cache-to-cache misses.

Cumulative distributions of cache-to-cache misses over the hottest 64 B
blocks (4a), 1024 B macroblocks (4b), and static instructions (4c).
The paper's observation — a few thousand hot entities capture most
cache-to-cache misses — is what makes finite predictors work.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, Tuple

from repro.coherence.state import GlobalCoherenceState
from repro.trace.trace import Trace


@dataclasses.dataclass(frozen=True)
class LocalityCdf:
    """A cumulative distribution of cache-to-cache misses.

    ``counts`` holds per-entity miss counts sorted descending;
    :meth:`coverage` answers "what percent of cache-to-cache misses do
    the hottest ``k`` entities account for?" — the Figure 4 y-axis.
    """

    workload: str
    kind: str
    counts: Tuple[int, ...]
    total: int

    def coverage(self, k: int) -> float:
        """Percent of c2c misses covered by the hottest ``k`` entities."""
        if self.total == 0 or k <= 0:
            return 0.0
        return 100.0 * sum(self.counts[:k]) / self.total

    def entities_for_coverage(self, pct: float) -> int:
        """Smallest number of hot entities covering ``pct`` percent."""
        if self.total == 0:
            return 0
        target = self.total * pct / 100.0
        running = 0
        for index, count in enumerate(self.counts, start=1):
            running += count
            if running >= target:
                return index
        return len(self.counts)

    @property
    def n_entities(self) -> int:
        """Number of distinct entities with at least one c2c miss."""
        return len(self.counts)


def locality_cdf(
    trace: Trace,
    kind: str = "block",
    block_size: int = 64,
    macroblock_size: int = 1024,
    warmup_fraction: float = 0.25,
) -> LocalityCdf:
    """Compute one panel of Figure 4.

    ``kind`` selects the entity: ``"block"`` (4a), ``"macroblock"``
    (4b), or ``"pc"`` (4c).
    """
    if kind == "block":
        keys = trace.block_keys(block_size)
    elif kind == "macroblock":
        keys = trace.block_keys(macroblock_size)
    elif kind == "pc":
        keys = trace.pcs
    else:
        raise ValueError(
            "kind must be one of ['block', 'macroblock', 'pc'], "
            f"got {kind!r}"
        )
    # Replay the global MOSI state to find the post-warmup misses
    # another cache must service or observe, counting per hot entity.
    state = GlobalCoherenceState(trace.n_processors)
    apply_fast = state.apply_fast
    n_warmup = int(len(trace) * warmup_fraction)
    counter: Dict[int, int] = collections.Counter()
    index = 0
    for block, requester, code, key in zip(
        trace.block_keys(state.block_size),
        trace.requesters,
        trace.accesses,
        keys,
    ):
        required = apply_fast(block, requester, code)[3]
        index += 1
        if index > n_warmup and required:
            counter[key] += 1
    counts = tuple(sorted(counter.values(), reverse=True))
    return LocalityCdf(
        workload=trace.name,
        kind=kind,
        counts=counts,
        total=sum(counts),
    )
