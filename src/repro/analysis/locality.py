"""Figure 4 — temporal and spatial locality of cache-to-cache misses.

Cumulative distributions of cache-to-cache misses over the hottest 64 B
blocks (4a), 1024 B macroblocks (4b), and static instructions (4c).
The paper's observation — a few thousand hot entities capture most
cache-to-cache misses — is what makes finite predictors work.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, Tuple

from repro.analysis.sharing import (
    DEFAULT_BLOCK_SIZE,
    _required_counts_cached,
)
from repro.coherence.state import GlobalCoherenceState
from repro.trace import columns as _columns
from repro.trace.trace import Trace


@dataclasses.dataclass(frozen=True)
class LocalityCdf:
    """A cumulative distribution of cache-to-cache misses.

    ``counts`` holds per-entity miss counts sorted descending;
    :meth:`coverage` answers "what percent of cache-to-cache misses do
    the hottest ``k`` entities account for?" — the Figure 4 y-axis.
    """

    workload: str
    kind: str
    counts: Tuple[int, ...]
    total: int

    def coverage(self, k: int) -> float:
        """Percent of c2c misses covered by the hottest ``k`` entities."""
        if self.total == 0 or k <= 0:
            return 0.0
        return 100.0 * sum(self.counts[:k]) / self.total

    def entities_for_coverage(self, pct: float) -> int:
        """Smallest number of hot entities covering ``pct`` percent."""
        if self.total == 0:
            return 0
        target = self.total * pct / 100.0
        running = 0
        for index, count in enumerate(self.counts, start=1):
            running += count
            if running >= target:
                return index
        return len(self.counts)

    @property
    def n_entities(self) -> int:
        """Number of distinct entities with at least one c2c miss."""
        return len(self.counts)


def _entity_keys(
    trace: Trace, kind: str, block_size: int, macroblock_size: int
):
    if kind == "block":
        return trace.block_keys(block_size)
    if kind == "macroblock":
        return trace.block_keys(macroblock_size)
    if kind == "pc":
        return trace.pcs
    raise ValueError(
        "kind must be one of ['block', 'macroblock', 'pc'], "
        f"got {kind!r}"
    )


def locality_cdf_records(
    trace: Trace,
    kind: str = "block",
    block_size: int = DEFAULT_BLOCK_SIZE,
    macroblock_size: int = 1024,
    warmup_fraction: float = 0.25,
) -> LocalityCdf:
    """One Figure 4 panel via the record-at-a-time replay (oracle)."""
    keys = _entity_keys(trace, kind, block_size, macroblock_size)
    # Replay the global MOSI state to find the post-warmup misses
    # another cache must service or observe, counting per hot entity.
    # The replay runs at ``block_size`` granularity — the same
    # convention as :func:`repro.analysis.sharing.sharing_histogram`,
    # so Figures 2 and 4 count the same miss population.
    state = GlobalCoherenceState(trace.n_processors, block_size)
    apply_fast = state.apply_fast
    n_warmup = int(len(trace) * warmup_fraction)
    counter: Dict[int, int] = collections.Counter()
    index = 0
    for block, requester, code, key in zip(
        trace.block_keys(state.block_size),
        trace.requesters,
        trace.accesses,
        keys,
    ):
        required = apply_fast(block, requester, code)[3]
        index += 1
        if index > n_warmup and required:
            counter[key] += 1
    counts = tuple(sorted(counter.values(), reverse=True))
    return LocalityCdf(
        workload=trace.name,
        kind=kind,
        counts=counts,
        total=sum(counts),
    )


def locality_cdf(
    trace: Trace,
    kind: str = "block",
    block_size: int = DEFAULT_BLOCK_SIZE,
    macroblock_size: int = 1024,
    warmup_fraction: float = 0.25,
) -> LocalityCdf:
    """Compute one panel of Figure 4.

    ``kind`` selects the entity: ``"block"`` (4a), ``"macroblock"``
    (4b), or ``"pc"`` (4c).  Under numpy the cache-to-cache mask comes
    from the shared vectorized MOSI replay and the per-entity counts
    from ``unique``; identical to :func:`locality_cdf_records`.
    """
    np_ = _columns.numpy_module()
    if np_ is None or len(trace) == 0:
        return locality_cdf_records(
            trace, kind, block_size, macroblock_size, warmup_fraction
        )
    keys = _entity_keys(trace, kind, block_size, macroblock_size)
    required, _ = _required_counts_cached(np_, trace, block_size)
    n_warmup = int(len(trace) * warmup_fraction)
    mask = required[n_warmup:] > 0
    key_column = np_.frombuffer(keys, dtype=np_.int64)[n_warmup:]
    entity_counts = np_.unique(key_column[mask], return_counts=True)[1]
    counts = tuple(
        int(c) for c in np_.sort(entity_counts)[::-1]
    )
    return LocalityCdf(
        workload=trace.name,
        kind=kind,
        counts=counts,
        total=int(entity_counts.sum()),
    )
