"""Figure 4 — temporal and spatial locality of cache-to-cache misses.

Cumulative distributions of cache-to-cache misses over the hottest 64 B
blocks (4a), 1024 B macroblocks (4b), and static instructions (4c).
The paper's observation — a few thousand hot entities capture most
cache-to-cache misses — is what makes finite predictors work.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from repro.coherence.state import GlobalCoherenceState
from repro.trace.record import TraceRecord
from repro.trace.trace import Trace


@dataclasses.dataclass(frozen=True)
class LocalityCdf:
    """A cumulative distribution of cache-to-cache misses.

    ``counts`` holds per-entity miss counts sorted descending;
    :meth:`coverage` answers "what percent of cache-to-cache misses do
    the hottest ``k`` entities account for?" — the Figure 4 y-axis.
    """

    workload: str
    kind: str
    counts: Tuple[int, ...]
    total: int

    def coverage(self, k: int) -> float:
        """Percent of c2c misses covered by the hottest ``k`` entities."""
        if self.total == 0 or k <= 0:
            return 0.0
        return 100.0 * sum(self.counts[:k]) / self.total

    def entities_for_coverage(self, pct: float) -> int:
        """Smallest number of hot entities covering ``pct`` percent."""
        if self.total == 0:
            return 0
        target = self.total * pct / 100.0
        running = 0
        for index, count in enumerate(self.counts, start=1):
            running += count
            if running >= target:
                return index
        return len(self.counts)

    @property
    def n_entities(self) -> int:
        """Number of distinct entities with at least one c2c miss."""
        return len(self.counts)


def _cache_to_cache_records(
    trace: Trace, warmup_fraction: float
) -> List[TraceRecord]:
    """The post-warmup misses another cache must service or observe."""
    state = GlobalCoherenceState(trace.n_processors)
    n_warmup = int(len(trace) * warmup_fraction)
    records = []
    for index, record in enumerate(trace):
        outcome = state.apply(record)
        if index >= n_warmup and not outcome.required.is_empty():
            records.append(record)
    return records


def locality_cdf(
    trace: Trace,
    kind: str = "block",
    block_size: int = 64,
    macroblock_size: int = 1024,
    warmup_fraction: float = 0.25,
) -> LocalityCdf:
    """Compute one panel of Figure 4.

    ``kind`` selects the entity: ``"block"`` (4a), ``"macroblock"``
    (4b), or ``"pc"`` (4c).
    """
    keyers: Dict[str, Callable[[TraceRecord], int]] = {
        "block": lambda r: r.block(block_size),
        "macroblock": lambda r: r.macroblock(macroblock_size),
        "pc": lambda r: r.pc,
    }
    try:
        keyer = keyers[kind]
    except KeyError:
        raise ValueError(
            f"kind must be one of {sorted(keyers)}, got {kind!r}"
        )
    counter = collections.Counter(
        keyer(record)
        for record in _cache_to_cache_records(trace, warmup_fraction)
    )
    counts = tuple(sorted(counter.values(), reverse=True))
    return LocalityCdf(
        workload=trace.name,
        kind=kind,
        counts=counts,
        total=sum(counts),
    )
