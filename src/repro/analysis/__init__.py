"""Sharing-behaviour analysis (paper Section 2).

Reproduces the paper's workload characterisation from a coherence
trace:

- :mod:`repro.analysis.properties` — Table 2 workload properties.
- :mod:`repro.analysis.sharing` — Figure 2 (instantaneous sharing) and
  Figure 3 (degree of sharing over the execution).
- :mod:`repro.analysis.locality` — Figure 4 (temporal/spatial locality
  of cache-to-cache misses).
"""

from repro.analysis.properties import WorkloadProperties, workload_properties
from repro.analysis.sharing import (
    DegreeOfSharing,
    SharingHistogram,
    degree_of_sharing,
    sharing_histogram,
)
from repro.analysis.locality import LocalityCdf, locality_cdf

__all__ = [
    "DegreeOfSharing",
    "LocalityCdf",
    "SharingHistogram",
    "WorkloadProperties",
    "degree_of_sharing",
    "locality_cdf",
    "sharing_histogram",
    "workload_properties",
]
