"""repro — destination-set prediction for shared-memory multiprocessors.

A from-scratch Python reproduction of Martin, Harper, Sorin, Hill &
Wood, *Using Destination-Set Prediction to Improve the
Latency/Bandwidth Tradeoff in Shared-Memory Multiprocessors*
(ISCA 2003).

Quick start — declare a study and run it (in parallel, with the
persistent trace cache)::

    from repro import ExperimentSpec, run_experiment

    spec = ExperimentSpec(workloads=("oltp", "apache"), kind="tradeoff")
    results = run_experiment(spec, jobs=4)
    print(results.table())

or drive one evaluation by hand::

    from repro import default_corpus, evaluate_design_space

    trace = default_corpus().trace("oltp")
    for point in evaluate_design_space(trace):
        print(point)

Subpackages:

- :mod:`repro.common` — destination sets, system parameters (Table 4).
- :mod:`repro.trace` — coherence-request traces.
- :mod:`repro.workloads` — six synthetic workload models (Table 1).
- :mod:`repro.cache` — cache hierarchy and trace collection.
- :mod:`repro.coherence` — global MOSI state and sufficiency.
- :mod:`repro.predictors` — the destination-set predictors (Table 3).
- :mod:`repro.protocols` — snooping, directory, multicast snooping.
- :mod:`repro.timing` — execution-driven timing simulation.
- :mod:`repro.analysis` — Section 2 sharing-behaviour analysis.
- :mod:`repro.evaluation` — Figure/Table reproduction harnesses.
- :mod:`repro.experiment` — declarative sweeps, parallel execution,
  persistent trace cache (the ``repro sweep`` engine).
- :mod:`repro.fabric` — distributed sweep fabric: durable work
  queue, multi-host workers, shared result store, ``repro serve``.
"""

from repro.common import (
    AccessType,
    DestinationSet,
    LatencyModel,
    PredictorConfig,
    SystemConfig,
    TrafficModel,
)
from repro.evaluation import (
    TraceCorpus,
    default_corpus,
    evaluate_design_space,
    evaluate_protocol,
)
from repro.evaluation.runtime import evaluate_runtime
from repro.experiment import (
    ExperimentSpec,
    PersistentTraceCorpus,
    ResultRecord,
    ResultSet,
    Runner,
    TraceCache,
    bandwidth_sweep,
    run_experiment,
)
from repro.predictors import create_predictor
from repro.protocols import (
    BroadcastSnoopingProtocol,
    DirectoryProtocol,
    MulticastSnoopingProtocol,
)
from repro.trace import Trace, TraceRecord
from repro.workloads import WORKLOAD_NAMES, create_workload

__version__ = "1.10.0"

__all__ = [
    "AccessType",
    "BroadcastSnoopingProtocol",
    "DestinationSet",
    "DirectoryProtocol",
    "ExperimentSpec",
    "LatencyModel",
    "MulticastSnoopingProtocol",
    "PersistentTraceCorpus",
    "PredictorConfig",
    "ResultRecord",
    "ResultSet",
    "Runner",
    "SystemConfig",
    "Trace",
    "TraceCache",
    "TraceCorpus",
    "TraceRecord",
    "TrafficModel",
    "WORKLOAD_NAMES",
    "__version__",
    "bandwidth_sweep",
    "create_predictor",
    "create_workload",
    "default_corpus",
    "evaluate_design_space",
    "evaluate_protocol",
    "evaluate_runtime",
    "run_experiment",
]
