"""Command-line interface: ``repro <command>`` (or ``python -m repro``).

Commands:

- ``workloads`` — list the workload models and their paper targets.
- ``collect``   — generate a workload trace and save it to a file.
- ``analyze``   — Section 2 analysis (Table 2 / Figures 2-4) of a
  workload or saved trace.
- ``tradeoff``  — the Figure 5/6 latency/bandwidth plane for a set of
  predictors, as a table and an ASCII scatter plot.
- ``runtime``   — the Figure 7/8 runtime/traffic plane.
- ``accuracy``  — per-policy destination-set coverage/precision.
- ``sweep``     — run a declarative :class:`ExperimentSpec` JSON file
  across workloads × seeds × policies, optionally in parallel — or
  through the distributed fabric (``--fabric DIR``): durable work
  queue, shared result store, free resume.
- ``work``      — run fabric worker processes against a queue
  directory (any number of hosts may share one).
- ``serve``     — answer ``GET /result/<digest>`` / ``POST /sweep``
  over HTTP from a fabric result store.
- ``fabric``    — queue/lease/retry introspection (``status``) and
  execution-free enqueueing (``enqueue``).
- ``bench``     — core-simulation throughput microbenchmarks
  (records/sec), with optional regression checking against a saved
  ``BENCH_baseline.json``.

``tradeoff``, ``runtime``, and ``accuracy`` are thin builders over the
same :mod:`repro.experiment` API that ``sweep`` exposes directly; all
of them share the persistent on-disk trace cache (disable with
``--no-cache``, relocate with ``--cache-dir`` or ``$REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import dataclasses

from repro.analysis.locality import locality_cdf
from repro.analysis.properties import workload_properties
from repro.analysis.sharing import degree_of_sharing, sharing_histogram
from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.plot import (
    plot_bandwidth_curves,
    plot_runtime,
    plot_tradeoff,
)
from repro.evaluation.report import (
    format_table,
    render_degree_of_sharing,
    render_locality,
    render_runtime,
    render_sharing_histogram,
    render_tradeoff,
    render_workload_properties,
)
from repro.experiment import (
    ExperimentSpec,
    ResultSet,
    Runner,
    default_cache_dir,
    default_jobs,
    make_corpus,
)
from repro.predictors.registry import PAPER_POLICIES
from repro.timing.registry import interconnect_names
from repro.trace.io import read_trace, write_trace
from repro.workloads import WORKLOAD_NAMES, create_workload

DEFAULT_REFERENCES = 100_000


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Destination-set prediction for shared-memory "
            "multiprocessors (Martin et al., ISCA 2003 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "workloads", help="list workload models and paper targets"
    )

    collect = commands.add_parser(
        "collect", help="generate a workload trace and save it"
    )
    _add_workload_arguments(collect)
    _add_cache_arguments(collect)
    collect.add_argument("--out", required=True, help="output trace file")

    analyze = commands.add_parser(
        "analyze", help="Section 2 analysis of a workload or trace file"
    )
    _add_workload_arguments(analyze, allow_trace_file=True)
    _add_cache_arguments(analyze)

    tradeoff = commands.add_parser(
        "tradeoff", help="Figure 5/6 latency-bandwidth plane"
    )
    _add_workload_arguments(tradeoff, allow_trace_file=True)
    _add_predictor_arguments(tradeoff)
    _add_cache_arguments(tradeoff)
    tradeoff.add_argument(
        "--plot", action="store_true", help="also render an ASCII scatter"
    )

    runtime = commands.add_parser(
        "runtime", help="Figure 7/8 runtime-traffic plane"
    )
    _add_workload_arguments(runtime, allow_trace_file=True)
    _add_predictor_arguments(runtime)
    _add_cache_arguments(runtime)
    runtime.add_argument(
        "--model",
        choices=("simple", "detailed"),
        default="simple",
        help="processor model (default: simple)",
    )
    runtime.add_argument(
        "--interconnect",
        choices=interconnect_names(),
        default="crossbar",
        help="interconnect timing model (default: crossbar)",
    )
    runtime.add_argument(
        "--plot", action="store_true", help="also render an ASCII scatter"
    )

    accuracy = commands.add_parser(
        "accuracy", help="destination-set coverage/precision per policy"
    )
    _add_workload_arguments(accuracy, allow_trace_file=True)
    _add_predictor_arguments(accuracy)
    _add_cache_arguments(accuracy)

    sweep = commands.add_parser(
        "sweep",
        help="run a declarative experiment spec (JSON) as a sweep",
    )
    sweep.add_argument("spec", help="path to an ExperimentSpec JSON file")
    _add_execution_arguments(sweep)
    sweep.add_argument(
        "--fabric",
        metavar="DIR",
        default=None,
        help=(
            "execute through the distributed fabric rooted at DIR "
            "(durable queue + shared result store; resumable)"
        ),
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "fabric worker processes to run locally (default: "
            "adaptive; 0 = enqueue only and wait for external "
            "`repro work` fleets); requires --fabric"
        ),
    )
    sweep.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="NAME=V1,V2,...",
        help=(
            "add a sweep axis on top of the spec, e.g. "
            "bandwidth=10,2.5,1,0.25 (link GB/s; runtime specs only)"
        ),
    )
    sweep.add_argument(
        "--out", help="write the ResultSet as JSON to this file"
    )
    sweep.add_argument(
        "--csv", help="also write the tidy table as CSV to this file"
    )

    work = commands.add_parser(
        "work",
        help="run fabric worker processes against a queue directory",
    )
    work.add_argument("fabric_dir", help="fabric directory (shared mount)")
    work.add_argument(
        "--workers", type=_positive_int, default=1,
        help="local workers (default 1)",
    )
    work.add_argument(
        "--threads", action="store_true",
        help=(
            "run the workers as threads in one process sharing an "
            "in-memory trace corpus (best with the GIL-releasing "
            "native kernels) instead of separate processes"
        ),
    )
    work.add_argument(
        "--max-cells", type=_positive_int, default=None,
        help="exit after executing this many cells (per worker)",
    )
    work.add_argument(
        "--lease-ttl", type=float, default=None,
        help="seconds before a silent worker's lease is reclaimed "
        "(default 30)",
    )
    work.add_argument(
        "--follow", action="store_true",
        help="keep polling for new cells instead of exiting when "
        "the queue drains",
    )

    serve = commands.add_parser(
        "serve",
        help="serve sweep results over HTTP from a fabric directory",
    )
    serve.add_argument("fabric_dir", help="fabric directory (shared mount)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321)
    serve.add_argument(
        "--workers", type=_positive_int, default=None,
        help="also run this many embedded follow-mode workers",
    )

    fabric = commands.add_parser(
        "fabric", help="fabric queue introspection and maintenance"
    )
    fabric_commands = fabric.add_subparsers(
        dest="fabric_command", required=True
    )
    fabric_status = fabric_commands.add_parser(
        "status", help="queue/lease/retry/store state of a fabric dir"
    )
    fabric_status.add_argument("fabric_dir")
    fabric_status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    fabric_enqueue = fabric_commands.add_parser(
        "enqueue",
        help="register a spec and enqueue its missing cells "
        "(no execution)",
    )
    fabric_enqueue.add_argument(
        "spec", help="path to an ExperimentSpec JSON file"
    )
    fabric_enqueue.add_argument("fabric_dir")
    fabric_enqueue.add_argument(
        "--axis",
        action="append",
        default=None,
        metavar="NAME=V1,V2,...",
        help="add a sweep axis on top of the spec (as in `repro sweep`)",
    )

    bench = commands.add_parser(
        "bench",
        help="simulation-core throughput microbenchmarks (records/sec)",
    )
    bench.add_argument(
        "--workload", default=None,
        help="workload to benchmark on (default oltp; --quick overrides)",
    )
    bench.add_argument(
        "--refs", type=_positive_int, default=None,
        help="references to simulate (default 60000; --quick overrides)",
    )
    bench.add_argument(
        "--seed", type=int, default=42, help="workload seed (default 42)"
    )
    bench.add_argument(
        "--repeats", type=_positive_int, default=2,
        help="timing repetitions per benchmark, best-of (default 2)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="small CI configuration (barnes-hut, 8000 references)",
    )
    bench.add_argument(
        "--out", help="write the BENCH report as JSON to this file"
    )
    bench.add_argument(
        "--check",
        help="compare against a saved BENCH baseline JSON and fail "
        "on regression",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.30,
        help="allowed fractional throughput drop for --check "
        "(default 0.30)",
    )
    _add_cache_arguments(bench)
    return parser


def _add_workload_arguments(
    parser: argparse.ArgumentParser, allow_trace_file: bool = False
) -> None:
    help_text = "workload name" + (
        " or a saved .trace file" if allow_trace_file else ""
    )
    parser.add_argument("workload", help=help_text)
    parser.add_argument(
        "--refs",
        type=int,
        default=DEFAULT_REFERENCES,
        help=f"memory references to simulate (default {DEFAULT_REFERENCES})",
    )
    parser.add_argument(
        "--seed", type=int, default=42, help="workload seed (default 42)"
    )


def _add_predictor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--predictors",
        nargs="+",
        default=list(PAPER_POLICIES),
        help="predictor policies (default: the paper's four)",
    )
    parser.add_argument(
        "--entries",
        type=int,
        default=8192,
        help="predictor entries; 0 = unbounded (default 8192)",
    )
    parser.add_argument(
        "--granularity",
        type=int,
        default=1024,
        help="index granularity in bytes (default 1024)",
    )
    parser.add_argument(
        "--pc-index",
        action="store_true",
        help="index predictors by miss PC instead of address",
    )


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help=(
            "workers for independent cells "
            "(default: adaptive, one per CPU core)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "threads", "processes"),
        default="auto",
        help=(
            "parallel executor: threads share one in-memory trace "
            "corpus (best with the GIL-releasing native kernels), "
            "processes fork one worker per cell (default: threads "
            "when the native backend is active, else processes)"
        ),
    )
    _add_cache_arguments(parser)


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persistent trace-cache directory "
            "(default: $REPRO_CACHE_DIR or ~/.cache/repro/traces)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk trace cache for this run",
    )


def _predictor_config(args: argparse.Namespace) -> PredictorConfig:
    return PredictorConfig(
        n_entries=args.entries if args.entries else None,
        index_granularity=args.granularity,
        use_pc_index=args.pc_index,
    )


def _cache_dir(args: argparse.Namespace) -> Optional[str]:
    if getattr(args, "no_cache", False):
        return None
    if getattr(args, "cache_dir", None):
        return args.cache_dir
    return str(default_cache_dir())


def _check_workload_name(name: str) -> None:
    if name not in WORKLOAD_NAMES:
        known = ", ".join(WORKLOAD_NAMES)
        raise SystemExit(
            f"unknown workload {name!r}; known: {known} "
            "(or pass a .trace file)"
        )


def _build_spec(args: argparse.Namespace, kind: str) -> ExperimentSpec:
    """A single-workload spec from the classic command-line flags."""
    return ExperimentSpec(
        workloads=(args.workload,),
        kind=kind,
        n_references=args.refs,
        seeds=(args.seed,),
        policies=tuple(args.predictors),
        predictor_config=_predictor_config(args),
        processor_model=getattr(args, "model", "simple"),
        system_config=SystemConfig(
            interconnect=getattr(args, "interconnect", "crossbar")
        ),
    )


def _apply_axes(
    spec: ExperimentSpec, axes: Optional[List[str]]
) -> ExperimentSpec:
    """Fold ``--axis NAME=V1,V2,...`` flags into ``spec``."""
    for axis in axes or ():
        name, separator, text = axis.partition("=")
        if not separator or not text:
            raise SystemExit(
                f"--axis {axis!r}: expected NAME=V1,V2,..."
            )
        if name != "bandwidth":
            raise SystemExit(
                f"--axis {name!r}: unknown axis; known: bandwidth"
            )
        try:
            values = tuple(float(v) for v in text.split(","))
        except ValueError:
            raise SystemExit(
                f"--axis {axis!r}: values must be numbers (link GB/s)"
            )
        try:
            spec = dataclasses.replace(spec, link_bandwidths=values)
        except ValueError as exc:
            raise SystemExit(f"--axis {axis!r}: {exc}")
    return spec


def _run_spec(args: argparse.Namespace, spec: ExperimentSpec) -> ResultSet:
    runner = Runner(
        jobs=getattr(args, "jobs", 1),
        cache_dir=_cache_dir(args),
        executor=getattr(args, "executor", None),
    )
    return runner.run(spec)


def _print_run_stats(results: ResultSet) -> None:
    print(f"trace cache: {results.cache_stats}")
    print(f"throughput: {results.perf}")


# ----------------------------------------------------------------------
def _cmd_workloads(args: argparse.Namespace) -> None:
    rows = []
    for name in WORKLOAD_NAMES:
        model = create_workload(name)
        paper = model.paper
        rows.append(
            (
                name,
                model.description,
                f"{paper.footprint_mb:.0f} MB",
                f"{paper.misses_per_kilo_instr:.1f}",
                f"{paper.directory_indirection_pct:.0f}%",
            )
        )
    print(
        format_table(
            ("name", "description", "paper-footprint",
             "paper-miss/1k", "paper-indirections"),
            rows,
        )
    )


def _cmd_collect(args: argparse.Namespace) -> None:
    _check_workload_name(args.workload)
    corpus = make_corpus(cache_dir=_cache_dir(args))
    result = corpus.collect(args.workload, args.refs, args.seed)
    write_trace(result.trace, args.out)
    print(
        f"wrote {len(result.trace)} misses "
        f"({result.misses_per_kilo_instruction:.2f} per 1k instructions) "
        f"to {args.out}"
    )


def _cmd_analyze(args: argparse.Namespace) -> None:
    if args.workload.endswith(".trace"):
        trace = read_trace(args.workload)
        print("== Figure 2: instantaneous sharing ==")
        print(render_sharing_histogram([sharing_histogram(trace)]))
    else:
        _check_workload_name(args.workload)
        corpus = make_corpus(cache_dir=_cache_dir(args))
        result = corpus.collect(args.workload, args.refs, args.seed)
        trace = result.trace
        print("== Table 2: workload properties ==")
        print(render_workload_properties([workload_properties(result)]))
        print("\n== Figure 2: instantaneous sharing ==")
        print(render_sharing_histogram([sharing_histogram(trace)]))
    print("\n== Figure 3: degree of sharing ==")
    print(render_degree_of_sharing([degree_of_sharing(trace)]))
    print("\n== Figure 4: cache-to-cache miss locality ==")
    cdfs = [
        locality_cdf(trace, kind=kind)
        for kind in ("block", "macroblock", "pc")
    ]
    print(render_locality(cdfs, ks=(10, 100, 1000, 10000)))


def _cmd_tradeoff(args: argparse.Namespace) -> None:
    if args.workload.endswith(".trace"):
        from repro.evaluation.tradeoff import evaluate_design_space

        trace = read_trace(args.workload)
        points = evaluate_design_space(
            trace,
            predictors=tuple(args.predictors),
            predictor_config=_predictor_config(args),
        )
    else:
        _check_workload_name(args.workload)
        results = _run_spec(args, _build_spec(args, "tradeoff"))
        points = results.tradeoff_points()
    print(render_tradeoff(points))
    if args.plot:
        print()
        print(plot_tradeoff(points))


def _cmd_runtime(args: argparse.Namespace) -> None:
    if args.workload.endswith(".trace"):
        from repro.evaluation.runtime import evaluate_runtime

        trace = read_trace(args.workload)
        points = evaluate_runtime(
            trace,
            predictors=tuple(args.predictors),
            predictor_config=_predictor_config(args),
            processor_model=args.model,
        )
    else:
        _check_workload_name(args.workload)
        results = _run_spec(args, _build_spec(args, "runtime"))
        points = results.runtime_points()
    print(render_runtime(points))
    if args.plot:
        print()
        print(plot_runtime(points))


def _accuracy_rows(results: ResultSet) -> List[tuple]:
    return [
        (
            record.label,
            f"{record['coverage_pct']:.1f}%",
            f"{record['precision_pct']:.1f}%",
            int(record["predictions"]),
        )
        for record in results
    ]


def _cmd_accuracy(args: argparse.Namespace) -> None:
    if args.workload.endswith(".trace"):
        from repro.analysis.accuracy import prediction_accuracy

        trace = read_trace(args.workload)
        rows = []
        for policy in args.predictors:
            report = prediction_accuracy(
                trace, policy, predictor_config=_predictor_config(args)
            )
            rows.append(
                (
                    report.policy,
                    f"{report.coverage_pct:.1f}%",
                    f"{report.precision_pct:.1f}%",
                    report.predictions,
                )
            )
    else:
        _check_workload_name(args.workload)
        results = _run_spec(args, _build_spec(args, "accuracy"))
        rows = _accuracy_rows(results)
    print(
        format_table(
            ("policy", "coverage", "precision", "predictions"), rows
        )
    )


def _load_spec_file(path: str, axes: Optional[List[str]]) -> ExperimentSpec:
    """Parse an ExperimentSpec JSON file, folding in ``--axis`` flags."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise SystemExit(f"cannot read spec file: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: invalid JSON ({exc})")
    try:
        spec = ExperimentSpec.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"{path}: invalid spec ({exc})")
    return _apply_axes(spec, axes)


def _print_failures(results: ResultSet) -> None:
    for failure in results.failures:
        print(f"FAILED cell {failure}", file=sys.stderr)


def _run_spec_fabric(args: argparse.Namespace, spec: ExperimentSpec) -> ResultSet:
    from repro.fabric import FabricCoordinator

    workers = args.workers
    if workers is None:
        workers = default_jobs()
    if workers < 0:
        raise SystemExit("--workers must be >= 0")
    coordinator = FabricCoordinator(args.fabric)
    counts = coordinator.enqueue_missing(spec)
    print(
        f"fabric {args.fabric}: {counts['stored']} cell(s) already in "
        f"store, {counts['enqueued']} enqueued, {counts['queued']} "
        f"already queued; {workers} local worker(s)"
    )
    return coordinator.run(spec, workers=workers)


def _cmd_sweep(args: argparse.Namespace) -> None:
    if args.workers is not None and args.fabric is None:
        raise SystemExit("--workers requires --fabric")
    spec = _load_spec_file(args.spec, args.axis)

    label = spec.name or spec.digest()
    if args.jobs is None:
        args.jobs = default_jobs()
    axis_note = (
        f" bandwidths={len(spec.link_bandwidths)}"
        if spec.link_bandwidths
        else ""
    )
    print(
        f"sweep {label}: kind={spec.kind} "
        f"workloads={len(spec.workloads)} seeds={len(spec.seeds)} "
        f"policies={len(spec.policies)}{axis_note} jobs={args.jobs} "
        f"({spec.n_jobs} cells)"
    )
    if args.fabric is not None:
        results = _run_spec_fabric(args, spec)
    else:
        results = _run_spec(args, spec)
    _print_failures(results)
    print(results.table())
    if results.has_bandwidth_axis():
        for workload in spec.workloads:
            curves = results.bandwidth_curves(
                "runtime_ns", workload=workload
            )
            if curves:
                print(f"\nbandwidth/runtime curves — {workload}:")
                print(plot_bandwidth_curves(curves))
    _print_run_stats(results)
    if args.out:
        results.to_json(args.out)
        print(f"wrote {args.out}")
    if args.csv:
        results.to_csv(args.csv)
        print(f"wrote {args.csv}")


def _cmd_work(args: argparse.Namespace) -> None:
    from repro.fabric import WorkerOptions, run_worker_pool
    from repro.fabric.queue import DEFAULT_LEASE_TTL

    options = WorkerOptions(
        lease_ttl=(
            args.lease_ttl if args.lease_ttl is not None
            else DEFAULT_LEASE_TTL
        ),
        max_cells=args.max_cells,
        follow=args.follow,
    )
    print(
        f"work {args.fabric_dir}: {args.workers} "
        + ("thread" if args.threads else "worker")
        + "(s), "
        f"lease ttl {options.lease_ttl:g}s"
        + (f", max {args.max_cells} cell(s) each"
           if args.max_cells else "")
        + (", follow mode" if args.follow else "")
    )
    run_worker_pool(
        args.fabric_dir, args.workers, options, threads=args.threads
    )


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.fabric import serve as fabric_serve

    workers = args.workers or 0
    print(
        f"serving {args.fabric_dir} on "
        f"http://{args.host}:{args.port} "
        f"({workers} embedded worker(s); GET /result/<digest>, "
        "POST /sweep, GET /status)"
    )
    try:
        fabric_serve(
            args.fabric_dir, host=args.host, port=args.port,
            workers=workers,
        )
    except KeyboardInterrupt:
        pass


def _cmd_fabric(args: argparse.Namespace) -> None:
    from repro.fabric import FabricCoordinator

    coordinator = FabricCoordinator(args.fabric_dir)
    if args.fabric_command == "enqueue":
        spec = _load_spec_file(args.spec, args.axis)
        counts = coordinator.enqueue_missing(spec)
        print(
            f"spec {spec.digest()}: {counts['stored']} cell(s) in "
            f"store, {counts['enqueued']} enqueued, "
            f"{counts['queued']} already queued"
        )
        return
    status = coordinator.status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return
    print(
        f"fabric {status['fabric_dir']}: "
        f"{status['pending']} pending, {status['leased']} leased, "
        f"{status['done']} done, {status['failed']} quarantined, "
        f"{status['stored']} result(s) in store, "
        f"{len(status['specs'])} spec(s) registered"
    )
    for lease in status["leases"]:
        state = "EXPIRED" if lease["expired"] else "live"
        print(
            f"  lease {lease['key']}: {lease['worker']} "
            f"(heartbeat {lease['heartbeat_age']:g}s ago, {state})"
        )
    for retry in status["retries"]:
        print(
            f"  retry {retry['key']}: attempt {retry['attempts']}, "
            f"backoff {retry['backoff_remaining']:g}s remaining"
        )


def _cmd_bench(args: argparse.Namespace) -> None:
    from repro.evaluation import bench

    if args.quick:
        workload = args.workload or bench.QUICK_WORKLOAD
        default_refs = bench.QUICK_REFERENCES
    else:
        workload = args.workload or bench.DEFAULT_WORKLOAD
        default_refs = bench.DEFAULT_REFERENCES
    n_references = args.refs if args.refs is not None else default_refs
    _check_workload_name(workload)

    corpus = make_corpus(cache_dir=_cache_dir(args))
    trace = corpus.trace(workload, n_references, args.seed)
    print(
        f"bench: {workload} seed={args.seed} "
        f"({len(trace)} trace records, repeats={args.repeats})"
    )
    report = bench.run_suite(
        trace, workload, n_references, args.seed, repeats=args.repeats
    )
    print(bench.render_report(report))
    if args.out:
        with open(args.out, "w", encoding="ascii") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        try:
            baseline = bench.load_report(args.check)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline: {exc}")
        failures = bench.check_against_baseline(
            report, baseline, args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}")
            raise SystemExit(1)
        print(
            f"perf check vs {args.check}: ok "
            f"(tolerance {args.tolerance:.0%})"
        )


_COMMANDS = {
    "workloads": _cmd_workloads,
    "collect": _cmd_collect,
    "analyze": _cmd_analyze,
    "tradeoff": _cmd_tradeoff,
    "runtime": _cmd_runtime,
    "accuracy": _cmd_accuracy,
    "sweep": _cmd_sweep,
    "work": _cmd_work,
    "serve": _cmd_serve,
    "fabric": _cmd_fabric,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
