"""Interconnect model registry: kind -> :class:`Interconnect` class.

``SystemConfig.interconnect`` names a kind registered here; the timing
simulator resolves it through :func:`create_interconnect`, and
experiment specs validate it at construction.  Third-party models
register with :func:`register_interconnect` (usable as a decorator)::

    @register_interconnect
    class MeshInterconnect(Interconnect):
        kind = "mesh"
        ...

    spec = ExperimentSpec(
        workloads=("oltp",), kind="runtime",
        system_config=SystemConfig(interconnect="mesh"),
    )

Register at module import time (top level, not under an
``if __name__ == "__main__":`` guard): parallel sweep workers rebuild
the spec in fresh processes, and under the ``spawn``/``forkserver``
start methods only code that runs when your module is re-imported is
visible there — a model registered after import would make the
worker's spec validation fail with "unknown interconnect".
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from repro.common.params import SystemConfig
from repro.timing.interconnect import (
    CrossbarInterconnect,
    IdealInterconnect,
    Interconnect,
    RingInterconnect,
    TreeInterconnect,
)

_REGISTRY: Dict[str, Type[Interconnect]] = {}


def register_interconnect(cls: Type[Interconnect]) -> Type[Interconnect]:
    """Register ``cls`` under its ``kind`` (decorator-friendly)."""
    if not getattr(cls, "kind", ""):
        raise ValueError(
            f"{cls.__name__} needs a non-empty 'kind' class attribute"
        )
    existing = _REGISTRY.get(cls.kind)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"interconnect kind {cls.kind!r} is already registered "
            f"to {existing.__name__}"
        )
    _REGISTRY[cls.kind] = cls
    return cls


_BUILTINS = (
    CrossbarInterconnect,
    TreeInterconnect,
    RingInterconnect,
    IdealInterconnect,
)
for _cls in _BUILTINS:
    register_interconnect(_cls)

#: The built-in model kinds, in registration (documentation) order —
#: derived from the registration loop so tests parametrized over it
#: can never silently miss a built-in model.
INTERCONNECT_NAMES: Tuple[str, ...] = tuple(
    cls.kind for cls in _BUILTINS
)


def interconnect_names() -> Tuple[str, ...]:
    """Every registered kind (built-ins plus extensions), sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_interconnect(kind: str) -> Type[Interconnect]:
    """The registered class for ``kind``; raises on unknown kinds.

    The single source of the "unknown interconnect" diagnostic, shared
    by :func:`create_interconnect` and experiment-spec validation.
    """
    try:
        return _REGISTRY[kind]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown interconnect {kind!r}; known: {known}"
        ) from None


def create_interconnect(config: SystemConfig) -> Interconnect:
    """Instantiate the model ``config.interconnect`` names."""
    return resolve_interconnect(config.interconnect)(config)
