"""The system-level timing simulator (Figures 7 and 8).

Drives a coherence protocol with a trace, pacing each processor by its
instruction gaps, costing each transaction with the Table 4 latency
model, and adding the interconnect model's queueing/serialization/hop
delays.  Records in the shared trace are processed in trace order (the
total order the interconnect would impose); per-node clocks advance
independently.

The interconnect is pluggable: ``SystemConfig.interconnect`` selects a
model from :mod:`repro.timing.registry` (the paper's crossbar by
default), or an instance can be injected directly.  Both timing loops
— the record-oriented reference loop and the columnar two-pass engine
— consume the model through the same :meth:`Interconnect.acquire`
call, so every registered model works on both paths; only the default
crossbar + simple-processor combination additionally takes the inlined
fast pass (kept operation-identical to the generic loop).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro import kernels
from repro.common.params import SystemConfig
from repro.protocols.base import CoherenceProtocol, OutcomeColumns
from repro.timing.interconnect import CrossbarInterconnect, Interconnect
from repro.timing.processor import (
    DetailedProcessorModel,
    ProcessorModel,
    SimpleProcessorModel,
)
from repro.timing.registry import create_interconnect
from repro.trace.trace import Trace


@dataclasses.dataclass(frozen=True)
class RuntimeResult:
    """Outcome of one timing simulation."""

    protocol: str
    workload: str
    runtime_ns: float
    misses: int
    traffic_bytes: int
    indirection_pct: float
    average_latency_ns: float
    queue_ns_per_miss: float

    @property
    def traffic_bytes_per_miss(self) -> float:
        """Interconnect bytes per miss (Fig 7/8 x-axis, unnormalized)."""
        return self.traffic_bytes / self.misses if self.misses else 0.0


def _make_processor(model: str, max_outstanding: int) -> ProcessorModel:
    if model == "simple":
        return SimpleProcessorModel()
    if model == "detailed":
        return DetailedProcessorModel(max_outstanding)
    raise ValueError(f"unknown processor model {model!r}")


class TimingSimulator:
    """Executes a miss trace against a protocol with timing."""

    def __init__(
        self,
        config: SystemConfig,
        protocol: CoherenceProtocol,
        processor_model: str = "simple",
        max_outstanding: int = 4,
        interconnect: Optional[Interconnect] = None,
    ):
        self.config = config
        self.protocol = protocol
        self.processor_model = processor_model
        self.processors: List[ProcessorModel] = [
            _make_processor(processor_model, max_outstanding)
            for _ in range(config.n_processors)
        ]
        self.interconnect = (
            interconnect
            if interconnect is not None
            else create_interconnect(config)
        )

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Trace,
        warmup_fraction: float = 0.25,
        columnar: bool = True,
    ) -> RuntimeResult:
        """Simulate ``trace``; timing measured after the warmup prefix.

        The warmup prefix trains protocol state and predictors without
        advancing the clocks, so runtimes compare steady-state behaviour
        (the paper warms caches and predictors from traces before its
        timing runs).  ``columnar=False`` forces the record-oriented
        loop (used to cross-check the columnar engine).
        """
        n_warmup = int(len(trace) * warmup_fraction)
        warmup, measured = trace.split_warmup(n_warmup)
        self.protocol.run(warmup if columnar else list(warmup))
        self.protocol.reset_totals()

        if (
            columnar
            and isinstance(measured, Trace)
            and self.protocol._fast_ok
        ):
            self._run_columns(measured)
        else:
            self._run_records(measured)

        totals = self.protocol.totals
        runtime = max(p.finish_time() for p in self.processors)
        return self._result(trace, totals, runtime)

    # ------------------------------------------------------------------
    def _run_records(self, measured) -> None:
        """The record-oriented timing loop (reference implementation)."""
        traffic = self.protocol.traffic
        latency = self.protocol.latency
        for record in measured:
            outcome = self.protocol.handle(record)
            processor = self.processors[record.requester]
            processor.compute(record.instructions)
            issue_ns = processor.issue_miss()

            # Bytes crossing the requester's own link: outbound request
            # copies plus the inbound data response.
            request_bytes = (
                outcome.total_request_messages * traffic.control_bytes
            )
            data_bytes = outcome.data_messages * traffic.data_bytes
            link_delay = self.interconnect.acquire(
                record.requester, issue_ns, request_bytes + data_bytes
            )
            base_ns = outcome.latency_class.latency_ns(latency)
            completion = issue_ns + max(base_ns, link_delay)
            processor.complete_miss(completion)

    def _run_columns(self, measured: Trace) -> None:
        """Batched columnar timing: protocol pass, then timing pass.

        Pass one replays the whole measured trace through the
        protocol's batch loop, which folds the traffic totals and
        fills per-record outcome columns (base latency, link transfer
        bytes).  Pass two walks those columns to advance the per-node
        clocks and link occupancy.  The two passes commute because
        protocol state never depends on the clocks.
        """
        protocol = self.protocol
        out = OutcomeColumns()
        protocol._run_columns(measured, out)

        processors = self.processors
        if type(self.interconnect) is CrossbarInterconnect and all(
            type(p) is SimpleProcessorModel
            and p.INSTRUCTIONS_PER_NS
            == SimpleProcessorModel.INSTRUCTIONS_PER_NS
            for p in processors
        ):
            if kernels.try_timing_pass(self, measured, out):
                return
            _, _, requesters, _, instructions = measured.boxed_columns()
            self._timing_pass_simple(
                requesters, instructions, out, processors
            )
            return
        if type(self.interconnect) is CrossbarInterconnect and all(
            type(p) is DetailedProcessorModel for p in processors
        ):
            if kernels.try_timing_pass_detailed(self, measured, out):
                return
        _, _, requesters, _, instructions = measured.boxed_columns()
        acquire = self.interconnect.acquire
        for requester, gap, transfer_bytes, base_ns in zip(
            requesters, instructions, out.transfer_bytes, out.latency_ns,
        ):
            processor = processors[requester]
            processor.compute(gap)
            issue_ns = processor.issue_miss()
            # Bytes crossing the requester's own link: outbound request
            # copies plus the inbound data response.
            link_delay = acquire(requester, issue_ns, transfer_bytes)
            completion = issue_ns + (
                base_ns if base_ns > link_delay else link_delay
            )
            processor.complete_miss(completion)

    def _timing_pass_simple(
        self, requesters, instructions, out: OutcomeColumns, processors
    ) -> None:
        """The timing pass with the in-order blocking model inlined.

        Crossbar-only (the caller guards on the interconnect type):
        replicates ``compute``/``issue_miss``/``acquire``/
        ``complete_miss`` operation-for-operation (identical float
        expressions), then writes the clocks and link statistics back.
        """
        interconnect = self.interconnect
        link_free = interconnect._link_free  # mutated in place
        bandwidth = interconnect._bandwidth
        bytes_carried = interconnect.bytes_carried
        total_queue_ns = interconnect.total_queue_ns
        per_ns = SimpleProcessorModel.INSTRUCTIONS_PER_NS
        clocks = [p.now_ns for p in processors]

        for requester, gap, transfer_bytes, base_ns in zip(
            requesters, instructions, out.transfer_bytes, out.latency_ns,
        ):
            issue_ns = clocks[requester] + gap / per_ns
            free_ns = link_free[requester]
            start = issue_ns if issue_ns >= free_ns else free_ns
            total_queue_ns += start - issue_ns
            finish = start + transfer_bytes / bandwidth
            link_free[requester] = finish
            bytes_carried += transfer_bytes
            link_delay = finish - issue_ns
            completion = issue_ns + (
                base_ns if base_ns > link_delay else link_delay
            )
            clocks[requester] = (
                issue_ns if issue_ns >= completion else completion
            )

        for processor, clock in zip(processors, clocks):
            processor.now_ns = clock
        interconnect.bytes_carried = bytes_carried
        interconnect.total_queue_ns = total_queue_ns

    def _result(
        self, trace: Trace, totals, runtime: float
    ) -> RuntimeResult:
        return RuntimeResult(
            protocol=self.protocol.name,
            workload=trace.name,
            runtime_ns=runtime,
            misses=totals.misses,
            traffic_bytes=totals.traffic_bytes,
            indirection_pct=totals.indirection_pct,
            average_latency_ns=totals.average_latency_ns,
            queue_ns_per_miss=(
                self.interconnect.total_queue_ns / totals.misses
                if totals.misses
                else 0.0
            ),
        )
