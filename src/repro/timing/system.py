"""The system-level timing simulator (Figures 7 and 8).

Drives a coherence protocol with a trace, pacing each processor by its
instruction gaps, costing each transaction with the Table 4 latency
model, and adding crossbar queueing/serialization delays.  Records in
the shared trace are processed in trace order (the total order the
interconnect would impose); per-node clocks advance independently.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.common.params import SystemConfig
from repro.protocols.base import CoherenceProtocol
from repro.timing.interconnect import CrossbarInterconnect
from repro.timing.processor import (
    DetailedProcessorModel,
    ProcessorModel,
    SimpleProcessorModel,
)
from repro.trace.trace import Trace


@dataclasses.dataclass(frozen=True)
class RuntimeResult:
    """Outcome of one timing simulation."""

    protocol: str
    workload: str
    runtime_ns: float
    misses: int
    traffic_bytes: int
    indirection_pct: float
    average_latency_ns: float
    queue_ns_per_miss: float

    @property
    def traffic_bytes_per_miss(self) -> float:
        """Interconnect bytes per miss (Fig 7/8 x-axis, unnormalized)."""
        return self.traffic_bytes / self.misses if self.misses else 0.0


def _make_processor(model: str, max_outstanding: int) -> ProcessorModel:
    if model == "simple":
        return SimpleProcessorModel()
    if model == "detailed":
        return DetailedProcessorModel(max_outstanding)
    raise ValueError(f"unknown processor model {model!r}")


class TimingSimulator:
    """Executes a miss trace against a protocol with timing."""

    def __init__(
        self,
        config: SystemConfig,
        protocol: CoherenceProtocol,
        processor_model: str = "simple",
        max_outstanding: int = 4,
    ):
        self.config = config
        self.protocol = protocol
        self.processor_model = processor_model
        self.processors: List[ProcessorModel] = [
            _make_processor(processor_model, max_outstanding)
            for _ in range(config.n_processors)
        ]
        self.interconnect = CrossbarInterconnect(config)

    # ------------------------------------------------------------------
    def run(
        self, trace: Trace, warmup_fraction: float = 0.25
    ) -> RuntimeResult:
        """Simulate ``trace``; timing measured after the warmup prefix.

        The warmup prefix trains protocol state and predictors without
        advancing the clocks, so runtimes compare steady-state behaviour
        (the paper warms caches and predictors from traces before its
        timing runs).
        """
        n_warmup = int(len(trace) * warmup_fraction)
        warmup, measured = trace.split_warmup(n_warmup)
        self.protocol.run(warmup)
        self.protocol.reset_totals()

        traffic = self.protocol.traffic
        latency = self.protocol.latency
        for record in measured:
            outcome = self.protocol.handle(record)
            processor = self.processors[record.requester]
            processor.compute(record.instructions)
            issue_ns = processor.issue_miss()

            # Bytes crossing the requester's own link: outbound request
            # copies plus the inbound data response.
            request_bytes = (
                outcome.total_request_messages * traffic.control_bytes
            )
            data_bytes = outcome.data_messages * traffic.data_bytes
            link_delay = self.interconnect.acquire(
                record.requester, issue_ns, request_bytes + data_bytes
            )
            base_ns = outcome.latency_class.latency_ns(latency)
            completion = issue_ns + max(base_ns, link_delay)
            processor.complete_miss(completion)

        totals = self.protocol.totals
        runtime = max(p.finish_time() for p in self.processors)
        return RuntimeResult(
            protocol=self.protocol.name,
            workload=trace.name,
            runtime_ns=runtime,
            misses=totals.misses,
            traffic_bytes=totals.traffic_bytes,
            indirection_pct=totals.indirection_pct,
            average_latency_ns=totals.average_latency_ns,
            queue_ns_per_miss=(
                self.interconnect.total_queue_ns / totals.misses
                if totals.misses
                else 0.0
            ),
        )
