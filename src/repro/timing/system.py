"""The system-level timing simulator (Figures 7 and 8).

Drives a coherence protocol with a trace, pacing each processor by its
instruction gaps, costing each transaction with the Table 4 latency
model, and adding crossbar queueing/serialization delays.  Records in
the shared trace are processed in trace order (the total order the
interconnect would impose); per-node clocks advance independently.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from repro.common.params import SystemConfig
from repro.protocols.base import CoherenceProtocol
from repro.timing.interconnect import CrossbarInterconnect
from repro.timing.processor import (
    DetailedProcessorModel,
    ProcessorModel,
    SimpleProcessorModel,
)
from repro.trace.trace import Trace


@dataclasses.dataclass(frozen=True)
class RuntimeResult:
    """Outcome of one timing simulation."""

    protocol: str
    workload: str
    runtime_ns: float
    misses: int
    traffic_bytes: int
    indirection_pct: float
    average_latency_ns: float
    queue_ns_per_miss: float

    @property
    def traffic_bytes_per_miss(self) -> float:
        """Interconnect bytes per miss (Fig 7/8 x-axis, unnormalized)."""
        return self.traffic_bytes / self.misses if self.misses else 0.0


def _make_processor(model: str, max_outstanding: int) -> ProcessorModel:
    if model == "simple":
        return SimpleProcessorModel()
    if model == "detailed":
        return DetailedProcessorModel(max_outstanding)
    raise ValueError(f"unknown processor model {model!r}")


class TimingSimulator:
    """Executes a miss trace against a protocol with timing."""

    def __init__(
        self,
        config: SystemConfig,
        protocol: CoherenceProtocol,
        processor_model: str = "simple",
        max_outstanding: int = 4,
    ):
        self.config = config
        self.protocol = protocol
        self.processor_model = processor_model
        self.processors: List[ProcessorModel] = [
            _make_processor(processor_model, max_outstanding)
            for _ in range(config.n_processors)
        ]
        self.interconnect = CrossbarInterconnect(config)

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Trace,
        warmup_fraction: float = 0.25,
        columnar: bool = True,
    ) -> RuntimeResult:
        """Simulate ``trace``; timing measured after the warmup prefix.

        The warmup prefix trains protocol state and predictors without
        advancing the clocks, so runtimes compare steady-state behaviour
        (the paper warms caches and predictors from traces before its
        timing runs).  ``columnar=False`` forces the record-oriented
        loop (used to cross-check the columnar engine).
        """
        n_warmup = int(len(trace) * warmup_fraction)
        warmup, measured = trace.split_warmup(n_warmup)
        self.protocol.run(warmup if columnar else list(warmup))
        self.protocol.reset_totals()

        if (
            columnar
            and isinstance(measured, Trace)
            and self.protocol._fast_ok
        ):
            self._run_columns(measured)
        else:
            self._run_records(measured)

        totals = self.protocol.totals
        runtime = max(p.finish_time() for p in self.processors)
        return self._result(trace, totals, runtime)

    # ------------------------------------------------------------------
    def _run_records(self, measured) -> None:
        """The record-oriented timing loop (reference implementation)."""
        traffic = self.protocol.traffic
        latency = self.protocol.latency
        for record in measured:
            outcome = self.protocol.handle(record)
            processor = self.processors[record.requester]
            processor.compute(record.instructions)
            issue_ns = processor.issue_miss()

            # Bytes crossing the requester's own link: outbound request
            # copies plus the inbound data response.
            request_bytes = (
                outcome.total_request_messages * traffic.control_bytes
            )
            data_bytes = outcome.data_messages * traffic.data_bytes
            link_delay = self.interconnect.acquire(
                record.requester, issue_ns, request_bytes + data_bytes
            )
            base_ns = outcome.latency_class.latency_ns(latency)
            completion = issue_ns + max(base_ns, link_delay)
            processor.complete_miss(completion)

    def _run_columns(self, measured: Trace) -> None:
        """Columnar timing loop over the protocol's scalar kernel."""
        protocol = self.protocol
        protocol._prepare_fast_run()
        handle_fast = protocol._handle_fast
        traffic = protocol.traffic
        control = traffic.control_bytes
        data_size = traffic.data_bytes
        processors = self.processors
        acquire = self.interconnect.acquire
        totals = protocol.totals
        misses = indirections = 0
        request_messages = forward_messages = retry_messages = 0
        data_messages = traffic_bytes = total_retries = 0
        latency_sum = totals.latency_ns_sum
        blocks = measured.block_keys(protocol.config.block_size)
        for address, pc, requester, code, instructions, block in zip(
            measured.addresses,
            measured.pcs,
            measured.requesters,
            measured.accesses,
            measured.instructions,
            blocks,
        ):
            req, fwd, ret, data, indirect, base_ns, retries = (
                handle_fast(address, pc, requester, code, block)
            )
            misses += 1
            indirections += indirect
            request_messages += req
            forward_messages += fwd
            retry_messages += ret
            data_messages += data
            control_messages = req + fwd + ret
            transfer_bytes = control_messages * control + data * data_size
            traffic_bytes += transfer_bytes
            latency_sum += base_ns
            total_retries += retries

            processor = processors[requester]
            processor.compute(instructions)
            issue_ns = processor.issue_miss()
            # Bytes crossing the requester's own link: outbound request
            # copies plus the inbound data response.
            link_delay = acquire(requester, issue_ns, transfer_bytes)
            completion = issue_ns + (
                base_ns if base_ns > link_delay else link_delay
            )
            processor.complete_miss(completion)
        totals.add_batch(
            misses, indirections, request_messages, forward_messages,
            retry_messages, data_messages, traffic_bytes, latency_sum,
            total_retries,
        )

    def _result(
        self, trace: Trace, totals, runtime: float
    ) -> RuntimeResult:
        return RuntimeResult(
            protocol=self.protocol.name,
            workload=trace.name,
            runtime_ns=runtime,
            misses=totals.misses,
            traffic_bytes=totals.traffic_bytes,
            indirection_pct=totals.indirection_pct,
            average_latency_ns=totals.average_latency_ns,
            queue_ns_per_miss=(
                self.interconnect.total_queue_ns / totals.misses
                if totals.misses
                else 0.0
            ),
        )
