"""Execution-driven timing simulation (paper Section 5).

Models the paper's 16-node target system: processors paced by the
instruction gaps between their L2 misses, coherence transactions costed
with the Table 4 latency model, and a pluggable ordered interconnect
whose finite link bandwidth introduces queueing and serialization
delays.

Two processor models, as in the paper:

- **simple** — in-order, blocking: one outstanding miss; would retire
  four billion instructions per second with perfect caches.
- **detailed** — approximates the dynamically scheduled core with a
  configurable number of overlapping outstanding misses (memory-level
  parallelism), capturing the latency overlap the paper's TFsim model
  exposes.

Four interconnect models, selected by ``SystemConfig.interconnect``
and registered in :mod:`repro.timing.registry`:

- **crossbar** — the paper's totally-ordered crossbar (the default).
- **tree** / **ring** — point-to-point ordered fabrics with per-hop
  latency and a bandwidth-limited shared ordering point.
- **ideal** — infinite bandwidth, zero queueing (latency-only).
"""

from repro.timing.interconnect import (
    CrossbarInterconnect,
    IdealInterconnect,
    Interconnect,
    PointToPointInterconnect,
    RingInterconnect,
    TreeInterconnect,
)
from repro.timing.processor import (
    DetailedProcessorModel,
    ProcessorModel,
    SimpleProcessorModel,
)
from repro.timing.registry import (
    INTERCONNECT_NAMES,
    create_interconnect,
    interconnect_names,
    register_interconnect,
    resolve_interconnect,
)
from repro.timing.system import RuntimeResult, TimingSimulator

__all__ = [
    "CrossbarInterconnect",
    "DetailedProcessorModel",
    "INTERCONNECT_NAMES",
    "IdealInterconnect",
    "Interconnect",
    "PointToPointInterconnect",
    "ProcessorModel",
    "RingInterconnect",
    "RuntimeResult",
    "SimpleProcessorModel",
    "TimingSimulator",
    "TreeInterconnect",
    "create_interconnect",
    "interconnect_names",
    "register_interconnect",
    "resolve_interconnect",
]
