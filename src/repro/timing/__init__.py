"""Execution-driven timing simulation (paper Section 5).

Models the paper's 16-node target system: processors paced by the
instruction gaps between their L2 misses, coherence transactions costed
with the Table 4 latency model, and a totally-ordered crossbar whose
finite link bandwidth introduces queueing and serialization delays.

Two processor models, as in the paper:

- **simple** — in-order, blocking: one outstanding miss; would retire
  four billion instructions per second with perfect caches.
- **detailed** — approximates the dynamically scheduled core with a
  configurable number of overlapping outstanding misses (memory-level
  parallelism), capturing the latency overlap the paper's TFsim model
  exposes.
"""

from repro.timing.interconnect import CrossbarInterconnect
from repro.timing.processor import (
    DetailedProcessorModel,
    ProcessorModel,
    SimpleProcessorModel,
)
from repro.timing.system import RuntimeResult, TimingSimulator

__all__ = [
    "CrossbarInterconnect",
    "DetailedProcessorModel",
    "ProcessorModel",
    "RuntimeResult",
    "SimpleProcessorModel",
    "TimingSimulator",
]
