"""Pluggable ordered interconnect timing models.

All three protocols the paper evaluates require a total order of
requests; every model here provides one, but they sit at different
points of the latency/bandwidth design space the paper argues over:

- :class:`CrossbarInterconnect` — the paper's Table 4 system: a single
  crossbar switch with finite per-node link bandwidth (10 GB/s).  The
  default, and the model all pre-existing results were produced with.
- :class:`TreeInterconnect` / :class:`RingInterconnect` — point-to-point
  ordered fabrics: each transaction serializes over the requester's
  leaf link, climbs store-and-forward hops (``hop_latency_ns`` each) to
  a shared ordering point, serializes through it, and descends.  The
  shared ordering point is the resource broadcast fan-out congests —
  the reason bandwidth-constrained snooping degrades.
- :class:`IdealInterconnect` — infinite bandwidth, zero queueing: the
  analytic model for latency-only studies.

Models are registered by ``kind`` in :mod:`repro.timing.registry` and
selected by ``SystemConfig.interconnect``; the numeric knobs
(``link_bandwidth_bytes_per_ns``, ``hop_latency_ns``) are ordinary
config fields, so interconnects sweep like any other axis.

Delay accounting contract: :meth:`Interconnect.acquire` returns the
*total* delay the fabric adds to one transaction relative to its ready
time — queueing (a link or the ordering point was still busy) plus
serialization plus any hop traversal.  The timing simulator overlaps
that delay with the transaction's protocol-level base latency
(``completion = issue + max(base_ns, link_delay)``), so an uncontended
fabric never slows the Table 4 latency model down.
"""

from __future__ import annotations

import abc
from typing import List

from repro.common.params import SystemConfig
from repro.common.types import NodeId


class Interconnect(abc.ABC):
    """Per-transaction link delays plus traffic/queueing accounting.

    Subclasses set ``kind`` (the registry name) and implement
    :meth:`acquire`, :meth:`load_broadcast`, and :meth:`link_free_at`.
    ``bytes_carried`` and ``total_queue_ns`` are the shared accounting
    fields every model maintains; ``queue_ns_per_miss`` in
    :class:`~repro.timing.system.RuntimeResult` divides the latter by
    the miss count.
    """

    #: Registry name (``SystemConfig.interconnect`` selects by it).
    kind: str = ""

    def __init__(self, config: SystemConfig):
        # Positivity is enforced centrally by SystemConfig.__post_init__.
        self._bandwidth = config.link_bandwidth_bytes_per_ns
        self.n_processors = config.n_processors
        self.bytes_carried = 0
        self.total_queue_ns = 0.0

    # ------------------------------------------------------------------
    def occupancy_ns(self, n_bytes: int) -> float:
        """Time ``n_bytes`` occupies a link."""
        return n_bytes / self._bandwidth

    @abc.abstractmethod
    def acquire(self, node: NodeId, ready_ns: float, n_bytes: int) -> float:
        """Send/receive ``n_bytes`` for ``node`` starting at ``ready_ns``.

        Returns the total delay the interconnect adds: queueing plus
        serialization plus hop traversal, measured from ``ready_ns``.
        Busy resources stay busy until the transfer completes.
        """

    def load_broadcast(self, ready_ns: float, n_bytes: int) -> None:
        """Charge ``n_bytes`` to every link (snooping request fan-out).

        An optional accounting hook, *not* called by the timing loops:
        there, a broadcast's fan-out already costs the requester
        through :meth:`acquire` (its transfer bytes scale with the
        message count).  Models with per-link state override this for
        studies that additionally track receiver-side occupancy —
        queueing met while loading busy links must then accumulate
        into ``total_queue_ns``, mirroring :meth:`acquire`.  The base
        implementation only counts the carried bytes.
        """
        self.bytes_carried += n_bytes * self.n_processors

    @abc.abstractmethod
    def link_free_at(self, node: NodeId) -> float:
        """When ``node``'s link next becomes idle."""


class CrossbarInterconnect(Interconnect):
    """The paper's totally-ordered crossbar with link contention.

    Contention arises from finite per-node link bandwidth (Table 4:
    10 GB/s): each node's link serializes the bytes it carries, a
    transaction whose link is still busy waits, and large data
    responses occupy the requester's inbound link for
    ``bytes / bandwidth``.
    """

    kind = "crossbar"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self._link_free: List[float] = [0.0] * config.n_processors

    # ------------------------------------------------------------------
    def acquire(self, node: NodeId, ready_ns: float, n_bytes: int) -> float:
        start = max(ready_ns, self._link_free[node])
        queue_ns = start - ready_ns
        finish = start + self.occupancy_ns(n_bytes)
        self._link_free[node] = finish
        self.bytes_carried += n_bytes
        self.total_queue_ns += queue_ns
        return finish - ready_ns

    def load_broadcast(self, ready_ns: float, n_bytes: int) -> None:
        occupancy = self.occupancy_ns(n_bytes)
        for node in range(len(self._link_free)):
            start = max(ready_ns, self._link_free[node])
            self.total_queue_ns += start - ready_ns
            self._link_free[node] = start + occupancy
            self.bytes_carried += n_bytes

    def link_free_at(self, node: NodeId) -> float:
        return self._link_free[node]


class PointToPointInterconnect(Interconnect):
    """Ordered point-to-point fabric: leaf links + a shared ordering point.

    A transaction serializes over the requester's leaf link, traverses
    ``hops(node)`` store-and-forward hops (``hop_latency_ns`` each) to
    the ordering point — the switch that defines the total order every
    protocol here requires — serializes through it, and descends the
    same distance.  Both the leaf link and the ordering point have
    finite bandwidth, so broadcast-heavy protocols congest the shared
    switch exactly as the paper's bandwidth discussion predicts.

    Subclasses define the topology through :meth:`hops`.
    """

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self._hop_ns = config.hop_latency_ns
        self._link_free: List[float] = [0.0] * config.n_processors
        self._root_free = 0.0
        self._climb_ns = [
            self.hops(node, config.n_processors) * self._hop_ns
            for node in range(config.n_processors)
        ]

    @staticmethod
    @abc.abstractmethod
    def hops(node: NodeId, n_processors: int) -> int:
        """Hop distance from ``node`` to the ordering point."""

    # ------------------------------------------------------------------
    def acquire(self, node: NodeId, ready_ns: float, n_bytes: int) -> float:
        occupancy = self.occupancy_ns(n_bytes)
        climb = self._climb_ns[node]
        start = max(ready_ns, self._link_free[node])
        self.total_queue_ns += start - ready_ns
        leaf_finish = start + occupancy
        self._link_free[node] = leaf_finish
        root_ready = leaf_finish + climb
        root_start = max(root_ready, self._root_free)
        self.total_queue_ns += root_start - root_ready
        root_finish = root_start + occupancy
        self._root_free = root_finish
        self.bytes_carried += n_bytes
        return root_finish + climb - ready_ns

    def load_broadcast(self, ready_ns: float, n_bytes: int) -> None:
        occupancy = self.occupancy_ns(n_bytes)
        for node in range(len(self._link_free)):
            start = max(ready_ns, self._link_free[node])
            self.total_queue_ns += start - ready_ns
            self._link_free[node] = start + occupancy
            self.bytes_carried += n_bytes
        start = max(ready_ns, self._root_free)
        self.total_queue_ns += start - ready_ns
        self._root_free = start + occupancy

    def link_free_at(self, node: NodeId) -> float:
        return self._link_free[node]

    @property
    def ordering_point_free_ns(self) -> float:
        """When the shared ordering point next becomes idle."""
        return self._root_free


class TreeInterconnect(PointToPointInterconnect):
    """Balanced binary tree; the root switch is the ordering point.

    Every leaf sits ``ceil(log2(n))`` hops below the root, so at the
    default ``hop_latency_ns`` a 16-node system's up+down traversal
    matches the crossbar's flat 50 ns — latency-equivalent when idle,
    but with a shared root that broadcast fan-out saturates.
    """

    kind = "tree"

    @staticmethod
    def hops(node: NodeId, n_processors: int) -> int:
        if n_processors <= 1:
            return 0
        return (n_processors - 1).bit_length()


class RingInterconnect(PointToPointInterconnect):
    """Unidirectional-distance ring ordered through node 0's station.

    Hop distance is the shorter way around the ring to the ordering
    station co-located with node 0, so latency grows linearly with
    system size instead of logarithmically — the scaling contrast the
    ISCA retrospectives draw against switched fabrics.
    """

    kind = "ring"

    @staticmethod
    def hops(node: NodeId, n_processors: int) -> int:
        return min(node, n_processors - node)


class IdealInterconnect(Interconnect):
    """Infinite bandwidth, zero queueing: latency-only studies.

    Transactions complete at their protocol-level base latency
    regardless of size or contention; traffic is still counted so
    bandwidth *demand* remains observable even when it is never a
    constraint.
    """

    kind = "ideal"

    def acquire(self, node: NodeId, ready_ns: float, n_bytes: int) -> float:
        self.bytes_carried += n_bytes
        return 0.0

    def link_free_at(self, node: NodeId) -> float:
        return 0.0
