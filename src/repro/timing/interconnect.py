"""The totally-ordered crossbar with link contention.

All three protocols the paper evaluates require a total order of
requests, so it models a single crossbar switch; contention arises from
finite per-node link bandwidth (Table 4: 10 GB/s).  We model each
node's link as a resource that serializes the bytes it carries: a
transaction whose link is still busy waits, and large data responses
occupy the requester's inbound link for ``bytes / bandwidth``.
"""

from __future__ import annotations

from typing import List

from repro.common.params import SystemConfig
from repro.common.types import NodeId


class CrossbarInterconnect:
    """Per-node link occupancy tracking for queueing/serialization."""

    def __init__(self, config: SystemConfig):
        self._bandwidth = config.link_bandwidth_bytes_per_ns
        if self._bandwidth <= 0:
            raise ValueError("link bandwidth must be positive")
        self._link_free: List[float] = [0.0] * config.n_processors
        self.bytes_carried = 0
        self.total_queue_ns = 0.0

    # ------------------------------------------------------------------
    def occupancy_ns(self, n_bytes: int) -> float:
        """Time ``n_bytes`` occupies a link."""
        return n_bytes / self._bandwidth

    def acquire(self, node: NodeId, ready_ns: float, n_bytes: int) -> float:
        """Send/receive ``n_bytes`` over ``node``'s link at ``ready_ns``.

        Returns the delay added by the link: queueing (the link was
        still busy) plus serialization of these bytes.  The link is
        then busy until the transfer completes.
        """
        start = max(ready_ns, self._link_free[node])
        queue_ns = start - ready_ns
        finish = start + self.occupancy_ns(n_bytes)
        self._link_free[node] = finish
        self.bytes_carried += n_bytes
        self.total_queue_ns += queue_ns
        return finish - ready_ns

    def load_broadcast(self, ready_ns: float, n_bytes: int) -> None:
        """Charge ``n_bytes`` to every link (snooping request fan-out).

        Broadcast requests occupy every node's inbound link; this only
        matters under constrained bandwidth, but modelling it keeps the
        bandwidth-sweep extension honest.
        """
        for node in range(len(self._link_free)):
            start = max(ready_ns, self._link_free[node])
            self._link_free[node] = start + self.occupancy_ns(n_bytes)
            self.bytes_carried += n_bytes

    def link_free_at(self, node: NodeId) -> float:
        """When ``node``'s link next becomes idle."""
        return self._link_free[node]
