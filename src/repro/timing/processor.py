"""Processor timing models.

The paper evaluates with two models (Section 5.2): a detailed
dynamically scheduled core (TFsim) and a simple in-order blocking model
retiring four billion instructions per second with perfect caches.  We
reproduce the simple model directly and approximate the detailed model
with bounded memory-level parallelism (multiple outstanding misses),
which captures the first-order effect the paper reports: overlapping
miss latency shrinks the gaps between protocols without reordering
them.
"""

from __future__ import annotations

import abc
import heapq
from typing import List


class ProcessorModel(abc.ABC):
    """Per-node execution clock advanced by compute gaps and misses."""

    #: Instructions retired per nanosecond with perfect caches
    #: ("four billion instructions per second" — Section 5.2).
    INSTRUCTIONS_PER_NS = 4.0

    def __init__(self) -> None:
        self.now_ns = 0.0

    def compute(self, instructions: int) -> None:
        """Advance time by the compute gap before the next miss."""
        self.now_ns += instructions / self.INSTRUCTIONS_PER_NS

    @abc.abstractmethod
    def issue_miss(self) -> float:
        """Block (if necessary) and return the miss's issue time."""

    @abc.abstractmethod
    def complete_miss(self, completion_ns: float) -> None:
        """Record that the issued miss completes at ``completion_ns``."""

    @abc.abstractmethod
    def finish_time(self) -> float:
        """Time at which all issued work has drained."""


class SimpleProcessorModel(ProcessorModel):
    """In-order, blocking: at most one outstanding miss."""

    name = "simple"

    def issue_miss(self) -> float:
        return self.now_ns

    def complete_miss(self, completion_ns: float) -> None:
        # Blocking: execution resumes only when the miss returns.
        self.now_ns = max(self.now_ns, completion_ns)

    def finish_time(self) -> float:
        return self.now_ns


class DetailedProcessorModel(ProcessorModel):
    """Dynamically-scheduled approximation: bounded outstanding misses.

    Models a core that continues issuing until ``max_outstanding``
    misses are in flight (the paper's dynamically scheduled cores
    "generate multiple outstanding coherence requests").
    """

    name = "detailed"

    def __init__(self, max_outstanding: int = 4):
        super().__init__()
        if max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        self.max_outstanding = max_outstanding
        self._in_flight: List[float] = []  # min-heap of completion times

    def issue_miss(self) -> float:
        # Retire any misses that have already completed.
        while self._in_flight and self._in_flight[0] <= self.now_ns:
            heapq.heappop(self._in_flight)
        # If the MSHR-equivalents are full, stall for the earliest one.
        while len(self._in_flight) >= self.max_outstanding:
            self.now_ns = max(self.now_ns, heapq.heappop(self._in_flight))
        return self.now_ns

    def complete_miss(self, completion_ns: float) -> None:
        heapq.heappush(self._in_flight, completion_ns)

    def finish_time(self) -> float:
        if not self._in_flight:
            return self.now_ns
        return max(self.now_ns, max(self._in_flight))
