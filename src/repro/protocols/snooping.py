"""MOSI broadcast snooping on a totally-ordered interconnect.

Every request is broadcast to all processors, so no request ever
indirects: the owner (a cache or memory) responds directly.  The price
is end-point bandwidth proportional to the processor count — the
paper's maximal destination set.
"""

from __future__ import annotations

from repro.common.types import MEMORY_NODE
from repro.protocols.base import (
    CoherenceProtocol,
    LatencyClass,
    RequestOutcome,
)
from repro.trace.record import TraceRecord


class BroadcastSnoopingProtocol(CoherenceProtocol):
    """The latency-optimal, bandwidth-hungry baseline."""

    name = "broadcast-snooping"

    def _handle(self, record: TraceRecord) -> RequestOutcome:
        coherence = self.state.apply(record)
        if coherence.responder == MEMORY_NODE:
            latency_class = LatencyClass.MEMORY
        else:
            latency_class = LatencyClass.CACHE_TO_CACHE_DIRECT
        return RequestOutcome(
            coherence=coherence,
            # Broadcast: delivered to every node but the requester.
            request_messages=self.config.n_processors - 1,
            forward_messages=0,
            retry_messages=0,
            data_messages=1,
            indirection=False,
            latency_class=latency_class,
        )

    def _handle_fast(self, address, pc, requester, code, block):
        responder = self.state.apply_fast(block, requester, code)[2]
        latency_ns = (
            self._lat_memory if responder == MEMORY_NODE
            else self._lat_direct
        )
        return (
            self.config.n_processors - 1, 0, 0, 1, 0, latency_ns, 0,
        )
