"""Fused batch replay loops for multicast snooping.

Three tiers of the same transaction pipeline (predict -> order ->
sufficiency -> account -> train), all driven by the trace's cached
derived columns (:meth:`repro.trace.trace.Trace.derived_columns`) and
all folding accounting into :meth:`TrafficTotals.add_batch`:

- :func:`run_group` — the Group predictor's loop with every predictor
  operation inlined on the flat table state (the paper's flagship
  policy and the benchmark's hot path),
- :func:`run_kernel` — a shared skeleton calling a policy's
  :class:`~repro.predictors.base.FusedKernel` closures (Owner,
  Broadcast-If-Shared, Owner/Group, StickySpatial),
- :func:`run_generic` — per-record predictor method calls for
  heterogeneous or fused-kernel-less predictor lists (Oracle,
  bandwidth-adaptive, user subclasses).

Every tier groups consecutive records with identical (table key,
requester, access, external destination set) into one *fused training
batch*: the external-request fan-out — one training event per
multicast target per record, the dominant cost for broadcast-heavy
predictors — is delivered as a single count-carrying call per
predictor per run.  Deferring the fan-out to the end of a run is
exact because a run shares one requester: the only predictor read
during the run belongs to that requester, which is never a member of
its own external set (per-node predictor state is independent).

Equivalence with the record-object engine — identical totals,
coherence state, and predictor tables — is enforced by
``tests/integration/test_columnar_equivalence.py`` over every
protocol x predictor x workload.
"""

from __future__ import annotations

from repro.common.destset import DestinationSet
from repro.common.types import MEMORY_NODE
from repro.predictors.group import GroupPredictor
from repro.trace.trace import ACCESS_BY_CODE, Trace

_MAX_RETRIES = 3  # third retry resorts to broadcast (Section 4.1)

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - Python 3.9 CI only
    def _popcount(value):
        return bin(value).count("1")


def _derived(proto, trace: Trace):
    """The trace's cached derived columns for ``proto``'s config."""
    config = proto.predictor_config
    return trace.derived_columns(
        proto.config.block_size,
        proto.config.n_processors,
        config.index_granularity,
        config.use_pc_index,
    )


def group_uniform(predictors) -> bool:
    """True when every predictor is a stock, identically-tuned Group."""
    first = predictors[0]
    if type(first) is not GroupPredictor:
        return False
    cmax = first._counter_max
    thr = first._threshold
    rperiod = first._rollover_period
    tdown = first._train_down
    bounded = first._table._bounded
    return all(
        type(p) is GroupPredictor
        and p._counter_max == cmax
        and p._threshold == thr
        and p._rollover_period == rperiod
        and p._train_down == tdown
        and p._table._bounded == bounded
        for p in predictors
    )


def run_group(proto, trace: Trace, out=None) -> None:
    """Fully-inlined Group replay (callers check :func:`group_uniform`).

    COUPLING: the training/decay code below is a deliberate inline
    copy of :meth:`GroupPredictor._train` (as is the Owner/Group
    hybrid's copy in ``owner_group.py``) — per-event closure calls
    would forfeit the fused loop's speedup.  Any change to Group's
    training semantics must be mirrored at every site; the
    backend-parametrized equivalence suite compares full predictor
    table state against the record engine and catches divergence.
    """
    requesters = trace.boxed_column("requesters")
    accesses = trace.boxed_column("accesses")
    derived = _derived(proto, trace)
    blocks = derived.blocks
    keys = derived.keys
    minimals = derived.minimals
    reqbits = derived.reqbits
    notreqs = derived.notreqs

    predictors = proto._predictors
    tables = [p._table for p in predictors]
    entries_get = [t._entries.get for t in tables]
    stamps_l = [t._stamps for t in tables]
    ticks = [t._tick for t in tables]
    bounded = tables[0]._bounded
    first = predictors[0]
    cmax = first._counter_max
    thr = first._threshold
    rperiod = first._rollover_period
    tdown = first._train_down

    state_blocks = proto.state._blocks
    lat_mem = proto._lat_memory
    lat_dir = proto._lat_direct
    lat_ind = proto._lat_indirect
    full = proto._full_mask
    race_probability = proto.race_probability
    rng_random = proto._race_rng.random
    control = proto.traffic.control_bytes
    data_size = proto.traffic.data_bytes
    totals = proto.totals
    MEM = MEMORY_NODE

    lat_append = byte_append = None
    if out is not None:
        lat_append = out.latency_ns.append
        byte_append = out.transfer_bytes.append

    bit_count = _popcount
    misses = len(requesters)
    indirections = 0
    request_sum = 0  # sum of destination popcounts; -misses at fold
    retry_sum = 0
    retries_total = 0
    latency_sum = totals.latency_ns_sum

    # Pending fused training batch: a run of consecutive records with
    # identical (key, requester, access, external set).
    p_key = None
    p_req = -1
    p_code = -1
    p_mask = 0
    p_count = 0

    def decay(entry, counters):
        # Rollover wrap: train-down every counter (Section 3.3).
        entry.rollover = 0
        bits = 0
        for index, value in enumerate(counters):
            if value > 0:
                value -= 1
                counters[index] = value
            if value > thr:
                bits |= 1 << index
        entry.bits = bits

    def flush(mask, fkey, freq, count):
        # Deliver one fused external-training batch per target node.
        # The training body replicates GroupPredictor._train (see the
        # coupling note in run_group); count == 1 — the dominant case
        # on real traces — skips the range() machinery.
        while mask:
            low = mask & -mask
            mask ^= low
            node = low.bit_length() - 1
            entry = entries_get[node](fkey)
            if entry is None:
                continue
            if bounded:
                stamps_l[node][fkey] = ticks[node]
                ticks[node] += 1
            counters = entry.counters
            if count == 1:
                c = counters[freq]
                if c < cmax:
                    counters[freq] = c + 1
                    if c == thr:
                        entry.bits |= 1 << freq
                if tdown:
                    rollover = entry.rollover + 1
                    if rollover < rperiod:
                        entry.rollover = rollover
                    else:
                        decay(entry, counters)
                continue
            for _ in range(count):
                c = counters[freq]
                if c < cmax:
                    counters[freq] = c + 1
                    if c == thr:
                        entry.bits |= 1 << freq
                if tdown:
                    rollover = entry.rollover + 1
                    if rollover < rperiod:
                        entry.rollover = rollover
                    else:
                        decay(entry, counters)

    for requester, code, block, key, minimal, reqbit, notreq in zip(
        requesters, accesses, blocks, keys, minimals, reqbits, notreqs,
    ):
        if p_count and (
            key != p_key or requester != p_req or code != p_code
        ):
            # The run ended: deliver its external training before any
            # node in the pending set can issue (and predict) again.
            flush(p_mask, p_key, p_req, p_count)
            p_count = 0

        # Predict (Group: the entry's cached predicted-bits mask).
        entries = entries_get[requester]
        entry = entries(key)
        if entry is not None:
            if bounded:
                stamps_l[requester][key] = ticks[requester]
                ticks[requester] += 1
            destination = entry.bits | minimal
        else:
            destination = minimal

        # Order the request on the global MOSI state (apply_fast).
        packed = state_blocks.get(block)
        if packed is None:
            owner = MEM
            sharers = 0
        else:
            owner, sharers = packed
        if owner >= 0 and owner != requester:
            required = 1 << owner
            responder = owner
        else:
            required = 0
            responder = MEM
        if code:
            required |= sharers & notreq
            state_blocks[block] = (requester, 0)
        elif owner != requester:
            state_blocks[block] = (owner, sharers | reqbit)

        dcount = bit_count(destination)
        request_sum += dcount
        if not (required and required & ~destination):  # sufficient
            lat = lat_mem if responder == MEM else lat_dir
            latency_sum += lat
            external = destination & notreq
            if lat_append is not None:
                lat_append(lat)
                byte_append((dcount - 1) * control + data_size)
        else:
            corrected = required | minimal
            n_retries = 1
            retry_messages = bit_count(corrected) - 1
            delivered = destination | corrected
            if race_probability:
                while (
                    n_retries < _MAX_RETRIES
                    and rng_random() < race_probability
                ):
                    n_retries += 1
                    if n_retries >= _MAX_RETRIES:
                        corrected = full
                    retry_messages += bit_count(corrected) - 1
                    delivered |= corrected
            retry_sum += retry_messages
            retries_total += n_retries
            indirections += 1
            latency_sum += lat_ind
            external = delivered & notreq
            if lat_append is not None:
                lat_append(lat_ind)
                byte_append(
                    (dcount - 1 + retry_messages) * control + data_size
                )

        # Data-response training at the requester (allocate only when
        # the minimal set proved insufficient — Section 3.1).
        if entry is None and required:
            table = tables[requester]
            table._tick = ticks[requester]
            entry = table.lookup_allocate(key)
            ticks[requester] = table._tick
        if entry is not None and responder != MEM:
            counters = entry.counters
            c = counters[responder]
            if c < cmax:
                counters[responder] = c + 1
                if c == thr:
                    entry.bits |= 1 << responder
            if tdown:
                rollover = entry.rollover + 1
                if rollover < rperiod:
                    entry.rollover = rollover
                else:
                    decay(entry, counters)

        # External-request training: extend the pending fused batch or
        # start a new one.
        if p_count and external == p_mask:
            p_count += 1
        else:
            if p_count:
                flush(p_mask, p_key, p_req, p_count)
            p_key = key
            p_req = requester
            p_code = code
            p_mask = external
            p_count = 1

    if p_count:
        flush(p_mask, p_key, p_req, p_count)
    for table, tick in zip(tables, ticks):
        table._tick = tick

    request_messages = request_sum - misses
    traffic_bytes = (
        (request_messages + retry_sum) * control + misses * data_size
    )
    totals.add_batch(
        misses, indirections, request_messages, 0, retry_sum,
        misses, traffic_bytes, latency_sum, retries_total,
    )


def run_kernel(proto, trace: Trace, kernel, out=None) -> None:
    """Semi-fused replay through a policy's :class:`FusedKernel`.

    This loop is the Python oracle for the native ``policy_replay``
    kernel (:func:`repro.kernels.try_policy_replay` dispatches there
    first when the native tier is active): every closure call, MOSI
    update, and accounting statement here has a byte-identical
    compiled twin, so the dispatch site in
    :meth:`MulticastSnoopingProtocol._run_columns` can swap them
    freely per call.
    """
    addresses = trace.boxed_column("addresses")
    requesters = trace.boxed_column("requesters")
    accesses = trace.boxed_column("accesses")
    derived = _derived(proto, trace)
    blocks = derived.blocks
    keys = derived.keys
    homes = derived.homes
    minimals = derived.minimals
    reqbits = derived.reqbits

    k_predict = kernel.predict
    k_response = kernel.train_response
    k_external = kernel.train_external
    k_truth = kernel.train_truth

    state_blocks = proto.state._blocks
    lat_mem = proto._lat_memory
    lat_dir = proto._lat_direct
    lat_ind = proto._lat_indirect
    full = proto._full_mask
    race_probability = proto.race_probability
    rng_random = proto._race_rng.random
    control = proto.traffic.control_bytes
    data_size = proto.traffic.data_bytes
    totals = proto.totals
    MEM = MEMORY_NODE

    lat_append = byte_append = None
    if out is not None:
        lat_append = out.latency_ns.append
        byte_append = out.transfer_bytes.append

    bit_count = _popcount
    misses = len(requesters)
    indirections = 0
    request_sum = 0
    retry_sum = 0
    retries_total = 0
    latency_sum = totals.latency_ns_sum

    p_key = None
    p_req = -1
    p_code = -1
    p_addr = 0
    p_mask = 0
    p_count = 0

    for address, requester, code, block, key, home, minimal, reqbit in zip(
        addresses, requesters, accesses, blocks, keys, homes,
        minimals, reqbits,
    ):
        if p_count and (
            key != p_key or requester != p_req or code != p_code
        ):
            k_external(p_mask, p_key, p_addr, p_req, p_code, p_count)
            p_count = 0

        destination = k_predict(requester, key, address, code) | minimal

        packed = state_blocks.get(block)
        if packed is None:
            owner = MEM
            sharers = 0
        else:
            owner, sharers = packed
        if owner >= 0 and owner != requester:
            required = 1 << owner
            responder = owner
        else:
            required = 0
            responder = MEM
        if code:
            required |= sharers & ~reqbit
            state_blocks[block] = (requester, 0)
        elif owner != requester:
            state_blocks[block] = (owner, sharers | reqbit)

        dcount = bit_count(destination)
        request_sum += dcount
        delivered = destination
        if required & ~destination == 0:
            lat = lat_mem if responder == MEM else lat_dir
            latency_sum += lat
            if lat_append is not None:
                lat_append(lat)
                byte_append((dcount - 1) * control + data_size)
        else:
            corrected = required | minimal
            n_retries = 1
            retry_messages = bit_count(corrected) - 1
            delivered |= corrected
            if race_probability:
                while (
                    n_retries < _MAX_RETRIES
                    and rng_random() < race_probability
                ):
                    n_retries += 1
                    if n_retries >= _MAX_RETRIES:
                        corrected = full
                    retry_messages += bit_count(corrected) - 1
                    delivered |= corrected
            retry_sum += retry_messages
            retries_total += n_retries
            indirections += 1
            latency_sum += lat_ind
            if lat_append is not None:
                lat_append(lat_ind)
                byte_append(
                    (dcount - 1 + retry_messages) * control + data_size
                )

        k_response(requester, key, address, responder, code, required)
        if k_truth is not None:
            k_truth(requester, address, required | (1 << home))

        if k_external is not None:
            external = delivered & ~reqbit
            if p_count and external == p_mask:
                p_count += 1
            else:
                if p_count:
                    k_external(
                        p_mask, p_key, p_addr, p_req, p_code, p_count
                    )
                p_key = key
                p_req = requester
                p_code = code
                p_addr = address
                p_mask = external
                p_count = 1

    if p_count:
        k_external(p_mask, p_key, p_addr, p_req, p_code, p_count)
    kernel.sync()

    request_messages = request_sum - misses
    traffic_bytes = (
        (request_messages + retry_sum) * control + misses * data_size
    )
    totals.add_batch(
        misses, indirections, request_messages, 0, retry_sum,
        misses, traffic_bytes, latency_sum, retries_total,
    )


def run_generic(proto, trace: Trace, out=None) -> None:
    """Batched replay via per-record predictor method calls.

    The compatibility tier: works for any predictor mix (including
    heterogeneous lists, the oracle, and user subclasses) while still
    delivering the external fan-out as one
    :meth:`~repro.predictors.base.DestinationSetPredictor.train_external_batch`
    call per predictor per run of identical requests.  Batches carry
    the run's first record's address/pc as representatives (the table
    key — the grouping key — is what table policies index by).
    """
    addresses = trace.boxed_column("addresses")
    pcs = trace.boxed_column("pcs")
    requesters = trace.boxed_column("requesters")
    accesses = trace.boxed_column("accesses")
    derived = _derived(proto, trace)
    blocks = derived.blocks
    keys = derived.keys
    homes = derived.homes
    minimals = derived.minimals
    reqbits = derived.reqbits

    predictors = proto._predictors
    needs_truth = proto._needs_truth
    n = proto.config.n_processors
    by_code = ACCESS_BY_CODE
    from_bits = DestinationSet._from_bits

    state_blocks = proto.state._blocks
    lat_mem = proto._lat_memory
    lat_dir = proto._lat_direct
    lat_ind = proto._lat_indirect
    full = proto._full_mask
    race_probability = proto.race_probability
    rng_random = proto._race_rng.random
    control = proto.traffic.control_bytes
    data_size = proto.traffic.data_bytes
    totals = proto.totals
    MEM = MEMORY_NODE

    lat_append = byte_append = None
    if out is not None:
        lat_append = out.latency_ns.append
        byte_append = out.transfer_bytes.append

    bit_count = _popcount
    misses = len(requesters)
    indirections = 0
    request_sum = 0
    retry_sum = 0
    retries_total = 0
    latency_sum = totals.latency_ns_sum

    p_key = None
    p_req = -1
    p_code = -1
    p_addr = 0
    p_pc = 0
    p_mask = 0
    p_count = 0

    def flush(mask, fkey, faddr, fpc, freq, faccess, count):
        while mask:
            low = mask & -mask
            mask ^= low
            predictors[low.bit_length() - 1].train_external_batch(
                fkey, faddr, fpc, freq, faccess, count
            )

    for address, pc, requester, code, block, key, home, minimal, reqbit \
            in zip(
        addresses, pcs, requesters, accesses, blocks, keys, homes,
        minimals, reqbits,
    ):
        if p_count and (
            key != p_key or requester != p_req or code != p_code
        ):
            flush(
                p_mask, p_key, p_addr, p_pc, p_req, by_code[p_code],
                p_count,
            )
            p_count = 0

        access = by_code[code]
        predictor = predictors[requester]
        predicted = predictor.predict_key(key, address, pc, access)
        destination = predicted._bits | minimal

        packed = state_blocks.get(block)
        if packed is None:
            owner = MEM
            sharers = 0
        else:
            owner, sharers = packed
        if owner >= 0 and owner != requester:
            required = 1 << owner
            responder = owner
        else:
            required = 0
            responder = MEM
        if code:
            required |= sharers & ~reqbit
            state_blocks[block] = (requester, 0)
        elif owner != requester:
            state_blocks[block] = (owner, sharers | reqbit)

        dcount = bit_count(destination)
        request_sum += dcount
        delivered = destination
        if required & ~destination == 0:
            lat = lat_mem if responder == MEM else lat_dir
            latency_sum += lat
            if lat_append is not None:
                lat_append(lat)
                byte_append((dcount - 1) * control + data_size)
        else:
            corrected = required | minimal
            n_retries = 1
            retry_messages = bit_count(corrected) - 1
            delivered |= corrected
            if race_probability:
                while (
                    n_retries < _MAX_RETRIES
                    and rng_random() < race_probability
                ):
                    n_retries += 1
                    if n_retries >= _MAX_RETRIES:
                        corrected = full
                    retry_messages += bit_count(corrected) - 1
                    delivered |= corrected
            retry_sum += retry_messages
            retries_total += n_retries
            indirections += 1
            latency_sum += lat_ind
            if lat_append is not None:
                lat_append(lat_ind)
                byte_append(
                    (dcount - 1 + retry_messages) * control + data_size
                )

        predictor.train_response_key(
            key, address, pc, responder, access, required != 0
        )
        if needs_truth:
            predictor.train_truth(
                address, pc, from_bits(n, required | (1 << home))
            )

        external = delivered & ~reqbit
        if p_count and external == p_mask:
            p_count += 1
        else:
            if p_count:
                flush(
                    p_mask, p_key, p_addr, p_pc, p_req,
                    by_code[p_code], p_count,
                )
            p_key = key
            p_req = requester
            p_code = code
            p_addr = address
            p_pc = pc
            p_mask = external
            p_count = 1

    if p_count:
        flush(
            p_mask, p_key, p_addr, p_pc, p_req, by_code[p_code], p_count
        )

    request_messages = request_sum - misses
    traffic_bytes = (
        (request_messages + retry_sum) * control + misses * data_size
    )
    totals.add_batch(
        misses, indirections, request_messages, 0, retry_sum,
        misses, traffic_bytes, latency_sum, retries_total,
    )
