"""Multicast snooping with destination-set prediction (Section 4.1).

Processors multicast coherence requests to a predicted destination set
on a totally-ordered interconnect.  The minimal destination set always
includes the requester and the home node.  The home node's directory
checks sufficiency:

- **Sufficient** — the owner responds directly (like snooping); the
  directory updates its state and, for GETX, sharers invalidate.
- **Insufficient** — the directory re-issues the request with a
  corrected destination set (the Sorin et al. optimization), costing a
  latency similar to a directory 3-hop.  A window of vulnerability can
  make the retry insufficient again (modelled by an optional race
  probability); the third retry falls back to broadcast, which is
  guaranteed sufficient.

Training: the requester's predictor trains on the data response (which
carries the responder's identity); every processor that received the
request trains on it as an external request; StickySpatial additionally
receives the directory's corrected set.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig, SystemConfig
from repro.common.types import MEMORY_NODE, home_node
from repro.coherence.sufficiency import is_sufficient, minimal_set
from repro.predictors.base import DestinationSetPredictor
from repro.predictors.registry import create_predictor
from repro.predictors.static import OraclePredictor
from repro.protocols.base import (
    CoherenceProtocol,
    LatencyClass,
    RequestOutcome,
)
from repro.trace.record import TraceRecord

_MAX_RETRIES = 3  # third retry resorts to broadcast (Section 4.1)


class MulticastSnoopingProtocol(CoherenceProtocol):
    """Multicast snooping driven by per-node destination-set predictors."""

    name = "multicast-snooping"

    def __init__(
        self,
        config: SystemConfig,
        predictor: str = "group",
        predictor_config: Optional[PredictorConfig] = None,
        race_probability: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(config)
        if not 0.0 <= race_probability < 1.0:
            raise ValueError("race_probability must be in [0, 1)")
        self.predictor_name = predictor
        self.predictor_config = (
            predictor_config if predictor_config is not None
            else PredictorConfig()
        )
        self.race_probability = race_probability
        self._race_rng = random.Random(seed)
        self.predictors: List[DestinationSetPredictor] = []
        for node in range(config.n_processors):
            instance = create_predictor(
                predictor, config.n_processors, self.predictor_config
            )
            if isinstance(instance, OraclePredictor):
                instance.bind(self.state, node)
            self.predictors.append(instance)

    # ------------------------------------------------------------------
    def _handle(self, record: TraceRecord) -> RequestOutcome:
        n = self.config.n_processors
        requester = record.requester
        home = home_node(record.address, n, self.config.block_size)
        minimal = minimal_set(
            requester, record.address, n, self.config.block_size
        )

        predictor = self.predictors[requester]
        predicted = predictor.predict(record.address, record.pc, record.access)
        destination = predicted | minimal

        pre_state = self.state.lookup(record.address)
        sufficient = is_sufficient(
            destination,
            pre_state,
            requester,
            record.access,
            record.address,
            self.config.block_size,
        )
        coherence = self.state.apply(record)

        # Initial multicast: delivered to every member but the requester.
        request_messages = destination.count() - 1
        delivered = destination

        retries = 0
        retry_messages = 0
        if not sufficient:
            corrected = coherence.required | minimal
            while True:
                retries += 1
                if retries >= _MAX_RETRIES:
                    corrected = DestinationSet.broadcast(n)
                retry_messages += corrected.count() - 1
                delivered = delivered | corrected
                raced = (
                    retries < _MAX_RETRIES
                    and self._race_rng.random() < self.race_probability
                )
                if not raced:
                    break

        if not sufficient:
            latency_class = LatencyClass.INDIRECT
        elif coherence.responder == MEMORY_NODE:
            latency_class = LatencyClass.MEMORY
        else:
            latency_class = LatencyClass.CACHE_TO_CACHE_DIRECT

        self._train(record, coherence, delivered, home)
        return RequestOutcome(
            coherence=coherence,
            request_messages=request_messages,
            forward_messages=0,
            retry_messages=retry_messages,
            data_messages=1,
            indirection=not sufficient,
            latency_class=latency_class,
            retries=retries,
        )

    # ------------------------------------------------------------------
    def _train(self, record, coherence, delivered, home) -> None:
        requester = record.requester
        # Data-response training at the requester; entries allocate only
        # when the minimal set proved insufficient (Section 3.1).
        allocate = not coherence.required.is_empty()
        self.predictors[requester].train_response(
            record.address,
            record.pc,
            coherence.responder,
            record.access,
            allocate,
        )
        # External-request training at every node that saw the request.
        for node in delivered:
            if node != requester:
                self.predictors[node].train_external(
                    record.address, record.pc, requester, record.access
                )
        # Directory feedback (StickySpatial's training signal).
        truth = coherence.required.add(home)
        self.predictors[requester].train_truth(
            record.address, record.pc, truth
        )
