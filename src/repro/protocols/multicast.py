"""Multicast snooping with destination-set prediction (Section 4.1).

Processors multicast coherence requests to a predicted destination set
on a totally-ordered interconnect.  The minimal destination set always
includes the requester and the home node.  The home node's directory
checks sufficiency:

- **Sufficient** — the owner responds directly (like snooping); the
  directory updates its state and, for GETX, sharers invalidate.
- **Insufficient** — the directory re-issues the request with a
  corrected destination set (the Sorin et al. optimization), costing a
  latency similar to a directory 3-hop.  A window of vulnerability can
  make the retry insufficient again (modelled by an optional race
  probability); the third retry falls back to broadcast, which is
  guaranteed sufficient.

Training: the requester's predictor trains on the data response (which
carries the responder's identity); every processor that received the
request trains on it as an external request; StickySpatial additionally
receives the directory's corrected set.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.common.destset import DestinationSet, full_mask, popcount
from repro.common.params import PredictorConfig, SystemConfig
from repro.common.types import MEMORY_NODE, home_node
from repro.coherence.sufficiency import is_sufficient, minimal_set
from repro.predictors.base import DestinationSetPredictor
from repro.predictors.registry import create_predictor
from repro.predictors.static import OraclePredictor
from repro import kernels
from repro.protocols import fused
from repro.protocols.base import (
    CoherenceProtocol,
    LatencyClass,
    OutcomeColumns,
    RequestOutcome,
)
from repro.trace.record import TraceRecord
from repro.trace.trace import ACCESS_BY_CODE, Trace

_MAX_RETRIES = 3  # third retry resorts to broadcast (Section 4.1)


class _PredictorList(list):
    """The per-node predictor list, with refresh-on-mutation.

    The protocol caches hot-path state derived from the predictor
    instances (bound training methods, the needs-truth flag).  Any
    mutation of the list — item assignment by an ablation harness,
    ``append``/``extend``, slicing assignment — refreshes those caches
    immediately, so a swapped-in predictor is trained from the very
    next request whether it arrives via :meth:`handle`, a direct
    ``_handle_fast`` call, or a columnar replay.
    """

    __slots__ = ("_owner",)

    def __init__(self, owner: "MulticastSnoopingProtocol", items):
        super().__init__(items)
        self._owner = owner

    def _refresh(self) -> None:
        self._owner._prepare_fast_run()

    def __setitem__(self, index, value):
        super().__setitem__(index, value)
        self._refresh()

    def __delitem__(self, index):
        super().__delitem__(index)
        self._refresh()

    def __iadd__(self, other):
        result = super().__iadd__(other)
        self._refresh()
        return result

    def append(self, value):
        super().append(value)
        self._refresh()

    def extend(self, values):
        super().extend(values)
        self._refresh()

    def insert(self, index, value):
        super().insert(index, value)
        self._refresh()

    def pop(self, index=-1):
        value = super().pop(index)
        self._refresh()
        return value

    def remove(self, value):
        super().remove(value)
        self._refresh()

    def clear(self):
        super().clear()
        self._refresh()

    def sort(self, **kwargs):
        super().sort(**kwargs)
        self._refresh()

    def reverse(self):
        super().reverse()
        self._refresh()


class MulticastSnoopingProtocol(CoherenceProtocol):
    """Multicast snooping driven by per-node destination-set predictors."""

    name = "multicast-snooping"

    def __init__(
        self,
        config: SystemConfig,
        predictor: str = "group",
        predictor_config: Optional[PredictorConfig] = None,
        race_probability: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(config)
        if not 0.0 <= race_probability < 1.0:
            raise ValueError("race_probability must be in [0, 1)")
        self.predictor_name = predictor
        self.predictor_config = (
            predictor_config if predictor_config is not None
            else PredictorConfig()
        )
        self.race_probability = race_probability
        self._race_rng = random.Random(seed)
        instances: List[DestinationSetPredictor] = []
        for node in range(config.n_processors):
            instance = create_predictor(
                predictor, config.n_processors, self.predictor_config
            )
            if isinstance(instance, OraclePredictor):
                instance.bind(self.state, node)
            instances.append(instance)
        self._full_mask = full_mask(config.n_processors)
        self._apply_fast = self.state.apply_fast
        self._use_pc_index = self.predictor_config.use_pc_index
        self._granularity = self.predictor_config.index_granularity
        self.predictors = instances

    @property
    def predictors(self) -> List[DestinationSetPredictor]:
        """The per-node predictors (index = node id).

        The returned sequence refreshes the protocol's hot-path
        caches on any mutation (item assignment, append, ...), so
        ablation harnesses can swap instances in at will.
        """
        return self._predictors

    @predictors.setter
    def predictors(self, instances: List[DestinationSetPredictor]) -> None:
        self._predictors = _PredictorList(self, instances)
        self._prepare_fast_run()

    def _prepare_fast_run(self) -> None:
        # Subclasses and ablation harnesses may swap predictors in
        # after construction; whole-list assignment lands in the
        # property setter and item-level mutation in _PredictorList,
        # both of which re-run this refresh immediately.  Columnar
        # replays refresh once more on entry, which also covers
        # subclasses that replace ``_predictors`` wholesale.
        self._train_external_fns = [
            p.train_external_key for p in self._predictors
        ]
        # Directory-feedback training is a no-op for most policies;
        # skip building the truth set per request unless it is needed.
        self._needs_truth = any(
            type(p).train_truth
            is not DestinationSetPredictor.train_truth
            for p in self._predictors
        )

    # ------------------------------------------------------------------
    def _run_columns(
        self, trace: Trace, out: Optional[OutcomeColumns] = None
    ) -> None:
        """Batched columnar replay (see :mod:`repro.protocols.fused`).

        Picks the fastest applicable tier: the fully-inlined Group
        loop, a policy :class:`~repro.predictors.base.FusedKernel`
        skeleton, or the generic per-record loop with fused external
        training batches.  Subclasses that override ``_handle_fast``
        keep the base per-record loop.
        """
        self._prepare_fast_run()
        if (
            type(self)._handle_fast
            is not MulticastSnoopingProtocol._handle_fast
        ):
            super()._run_columns(trace, out)
            return
        predictors = self._predictors
        if not predictors:
            super()._run_columns(trace, out)
            return
        first_type = type(predictors[0])
        homogeneous = all(type(p) is first_type for p in predictors)
        if homogeneous and not self._needs_truth and fused.group_uniform(
            predictors
        ):
            if not kernels.try_group_replay(self, trace, out):
                fused.run_group(self, trace, out)
            return
        kernel = (
            first_type.fused_kernel(predictors) if homogeneous else None
        )
        if kernel is not None and (
            not self._needs_truth or kernel.train_truth is not None
        ):
            if not kernels.try_policy_replay(self, trace, out):
                fused.run_kernel(self, trace, kernel, out)
            return
        fused.run_generic(self, trace, out)

    # ------------------------------------------------------------------
    def _handle(self, record: TraceRecord) -> RequestOutcome:
        n = self.config.n_processors
        requester = record.requester
        home = home_node(record.address, n, self.config.block_size)
        minimal = minimal_set(
            requester, record.address, n, self.config.block_size
        )

        predictor = self.predictors[requester]
        predicted = predictor.predict(record.address, record.pc, record.access)
        destination = predicted | minimal

        pre_state = self.state.lookup(record.address)
        sufficient = is_sufficient(
            destination,
            pre_state,
            requester,
            record.access,
            record.address,
            self.config.block_size,
        )
        coherence = self.state.apply(record)

        # Initial multicast: delivered to every member but the requester.
        request_messages = destination.count() - 1
        delivered = destination

        retries = 0
        retry_messages = 0
        if not sufficient:
            corrected = coherence.required | minimal
            while True:
                retries += 1
                if retries >= _MAX_RETRIES:
                    corrected = DestinationSet.broadcast(n)
                retry_messages += corrected.count() - 1
                delivered = delivered | corrected
                raced = (
                    retries < _MAX_RETRIES
                    and self._race_rng.random() < self.race_probability
                )
                if not raced:
                    break

        if not sufficient:
            latency_class = LatencyClass.INDIRECT
        elif coherence.responder == MEMORY_NODE:
            latency_class = LatencyClass.MEMORY
        else:
            latency_class = LatencyClass.CACHE_TO_CACHE_DIRECT

        self._train(record, coherence, delivered, home)
        return RequestOutcome(
            coherence=coherence,
            request_messages=request_messages,
            forward_messages=0,
            retry_messages=retry_messages,
            data_messages=1,
            indirection=not sufficient,
            latency_class=latency_class,
            retries=retries,
        )

    # ------------------------------------------------------------------
    def _handle_fast(self, address, pc, requester, code, block):
        """Scalar kernel: identical transaction logic on raw bitmasks."""
        n = self.config.n_processors
        access = ACCESS_BY_CODE[code]
        key = (
            pc if self._use_pc_index else address // self._granularity
        )
        predictor = self._predictors[requester]
        predicted = predictor.predict_key(key, address, pc, access)

        home = (block >> self._block_shift) % n
        minimal = (1 << requester) | (1 << home)
        destination = predicted._bits | minimal

        responder, required = self._apply_fast(block, requester, code)[2:]
        # The destination always covers the requester and home (the
        # minimal set is unioned in), so sufficiency reduces to
        # covering the required processors (Section 4.1).
        sufficient = required & ~destination == 0

        # Initial multicast: delivered to every member but the requester.
        request_messages = popcount(destination) - 1
        delivered = destination

        retries = 0
        retry_messages = 0
        if sufficient:
            latency_ns = (
                self._lat_memory if responder == MEMORY_NODE
                else self._lat_direct
            )
        else:
            corrected = required | minimal
            retries = 1
            retry_messages = popcount(corrected) - 1
            delivered |= corrected
            if self.race_probability:
                # Window-of-vulnerability races re-issue the retry; the
                # third retry falls back to broadcast (Section 4.1).
                while (
                    retries < _MAX_RETRIES
                    and self._race_rng.random() < self.race_probability
                ):
                    retries += 1
                    if retries >= _MAX_RETRIES:
                        corrected = self._full_mask
                    retry_messages += popcount(corrected) - 1
                    delivered |= corrected
            latency_ns = self._lat_indirect

        # Training (Section 3.1): data-response training at the
        # requester, external-request training at every node that
        # received the request, directory feedback when the policy
        # consumes it.
        predictor.train_response_key(
            key, address, pc, responder, access, required != 0
        )
        train_external_fns = self._train_external_fns
        external = delivered & ~(1 << requester)
        while external:
            low = external & -external
            train_external_fns[low.bit_length() - 1](
                key, address, pc, requester, access
            )
            external ^= low
        if self._needs_truth:
            predictor.train_truth(
                address,
                pc,
                DestinationSet._from_bits(n, required | (1 << home)),
            )

        return (
            request_messages, 0, retry_messages, 1,
            0 if sufficient else 1, latency_ns, retries,
        )

    # ------------------------------------------------------------------
    def _train(self, record, coherence, delivered, home) -> None:
        requester = record.requester
        # Data-response training at the requester; entries allocate only
        # when the minimal set proved insufficient (Section 3.1).
        allocate = not coherence.required.is_empty()
        self.predictors[requester].train_response(
            record.address,
            record.pc,
            coherence.responder,
            record.access,
            allocate,
        )
        # External-request training at every node that saw the request.
        for node in delivered:
            if node != requester:
                self.predictors[node].train_external(
                    record.address, record.pc, requester, record.access
                )
        # Directory feedback (StickySpatial's training signal).
        truth = coherence.required.add(home)
        self.predictors[requester].train_truth(
            record.address, record.pc, truth
        )
