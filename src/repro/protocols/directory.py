"""A bandwidth-efficient MOSI directory protocol (GS320-style).

Requests go only to the home node; the directory forwards to the owner
and/or sharers when other processors must observe the request.  The
totally-ordered interconnect eliminates explicit acknowledgment
messages (as in the AlphaServer GS320 the paper models), so forwards
and invalidations are the only extra control traffic.

Latency: misses satisfied by memory with no forwarding complete in the
2-hop memory latency; misses that the directory must forward to a
cache pay the 3-hop indirection latency.
"""

from __future__ import annotations

from repro.common.destset import popcount
from repro.common.types import MEMORY_NODE, home_node
from repro.protocols.base import (
    CoherenceProtocol,
    LatencyClass,
    RequestOutcome,
)
from repro.trace.record import TraceRecord


class DirectoryProtocol(CoherenceProtocol):
    """The bandwidth-optimal, indirection-prone baseline."""

    name = "directory"

    def _handle(self, record: TraceRecord) -> RequestOutcome:
        coherence = self.state.apply(record)
        home = home_node(
            record.address, self.config.n_processors, self.config.block_size
        )
        # The request itself: one message to the home (free if the
        # requester is its own home node).
        request_messages = 0 if home == record.requester else 1
        # Forwards/invalidations: one per processor that must observe.
        forward_messages = coherence.required.count()

        if coherence.responder == MEMORY_NODE:
            # Data from memory.  Pure 2-hop when nothing was forwarded;
            # invalidation-only GETX still gets its data in 2 hops on
            # this totally-ordered network (no acks), but counts as an
            # indirection for the sharing metric.
            latency_class = LatencyClass.MEMORY
        else:
            latency_class = LatencyClass.INDIRECT
        return RequestOutcome(
            coherence=coherence,
            request_messages=request_messages,
            forward_messages=forward_messages,
            retry_messages=0,
            data_messages=1,
            indirection=coherence.directory_indirection,
            latency_class=latency_class,
        )

    def _handle_fast(self, address, pc, requester, code, block):
        responder, required = self.state.apply_fast(
            block, requester, code
        )[2:]
        home = (block >> self._block_shift) % self.config.n_processors
        latency_ns = (
            self._lat_memory if responder == MEMORY_NODE
            else self._lat_indirect
        )
        return (
            0 if home == requester else 1,
            popcount(required),
            0,
            1,
            1 if required else 0,
            latency_ns,
            0,
        )
