"""Message-level coherence protocol models.

Three protocols, matching the paper's evaluation (Section 4):

- :class:`BroadcastSnoopingProtocol` — MOSI broadcast snooping on a
  totally-ordered interconnect: every request goes to every processor.
- :class:`DirectoryProtocol` — a bandwidth-efficient MOSI directory
  modelled on the AlphaServer GS320: requests go to the home node,
  which forwards to the owner and/or sharers as needed.
- :class:`MulticastSnoopingProtocol` — requests go to a predicted
  destination set; the home's directory detects insufficient sets and
  re-issues them with a corrected set (the Sorin et al. retry
  optimization), falling back to broadcast on the third retry.

Each protocol consumes trace records, maintains its own global MOSI
state, and accounts messages, bytes, indirections, and latency.
"""

from repro.protocols.base import (
    CoherenceProtocol,
    LatencyClass,
    RequestOutcome,
    TrafficTotals,
)
from repro.protocols.snooping import BroadcastSnoopingProtocol
from repro.protocols.directory import DirectoryProtocol
from repro.protocols.multicast import MulticastSnoopingProtocol

__all__ = [
    "BroadcastSnoopingProtocol",
    "CoherenceProtocol",
    "DirectoryProtocol",
    "LatencyClass",
    "MulticastSnoopingProtocol",
    "RequestOutcome",
    "TrafficTotals",
]
