"""Protocol interface and shared accounting types."""

from __future__ import annotations

import abc
import dataclasses
import enum

from repro.common.params import LatencyModel, SystemConfig, TrafficModel
from repro.coherence.state import CoherenceOutcome, GlobalCoherenceState
from repro.trace.record import TraceRecord


class LatencyClass(enum.Enum):
    """End-to-end latency class of one coherence transaction.

    Matches the paper's Section 5.1 numbers: 112 ns for a direct
    cache-to-cache transfer, 180 ns for a fetch from memory, 242 ns for
    an indirected (3-hop or retried) transfer.
    """

    CACHE_TO_CACHE_DIRECT = "c2c-direct"
    MEMORY = "memory"
    INDIRECT = "indirect"

    def latency_ns(self, model: LatencyModel) -> float:
        """Resolve this class against a :class:`LatencyModel`."""
        if self is LatencyClass.CACHE_TO_CACHE_DIRECT:
            return model.cache_to_cache_direct_ns
        if self is LatencyClass.MEMORY:
            return model.memory_ns
        return model.cache_to_cache_indirect_ns


@dataclasses.dataclass(frozen=True)
class RequestOutcome:
    """Accounting record for one coherence transaction.

    ``request_messages`` counts deliveries of the initial request;
    ``forward_messages`` counts directory forwards/invalidations;
    ``retry_messages`` counts re-issued multicast deliveries.  The
    paper's "request messages per miss" metric is the sum of all
    three (Section 4.2: "requests, forwards, and retries").
    """

    coherence: CoherenceOutcome
    request_messages: int
    forward_messages: int
    retry_messages: int
    data_messages: int
    indirection: bool
    latency_class: LatencyClass
    retries: int = 0

    @property
    def total_request_messages(self) -> int:
        """Requests + forwards + retries (the Figure 5 x-axis unit)."""
        return (
            self.request_messages
            + self.forward_messages
            + self.retry_messages
        )

    def traffic_bytes(self, traffic: TrafficModel) -> int:
        """Total interconnect bytes for this transaction."""
        return (
            self.total_request_messages * traffic.control_bytes
            + self.data_messages * traffic.data_bytes
        )


@dataclasses.dataclass
class TrafficTotals:
    """Running totals over a stream of transactions."""

    misses: int = 0
    indirections: int = 0
    request_messages: int = 0
    forward_messages: int = 0
    retry_messages: int = 0
    data_messages: int = 0
    traffic_bytes: int = 0
    latency_ns_sum: float = 0.0
    retries: int = 0

    def add(
        self,
        outcome: RequestOutcome,
        traffic: TrafficModel,
        latency: LatencyModel,
    ) -> None:
        """Fold one transaction into the totals."""
        self.misses += 1
        self.indirections += int(outcome.indirection)
        self.request_messages += outcome.request_messages
        self.forward_messages += outcome.forward_messages
        self.retry_messages += outcome.retry_messages
        self.data_messages += outcome.data_messages
        self.traffic_bytes += outcome.traffic_bytes(traffic)
        self.latency_ns_sum += outcome.latency_class.latency_ns(latency)
        self.retries += outcome.retries

    # ------------------------------------------------------------------
    @property
    def indirection_pct(self) -> float:
        """Percent of misses that required indirection (Fig 5 y-axis)."""
        return 100.0 * self.indirections / self.misses if self.misses else 0.0

    @property
    def request_messages_per_miss(self) -> float:
        """Requests + forwards + retries per miss (Fig 5 x-axis)."""
        total = (
            self.request_messages
            + self.forward_messages
            + self.retry_messages
        )
        return total / self.misses if self.misses else 0.0

    @property
    def traffic_bytes_per_miss(self) -> float:
        """Interconnect bytes per miss (Fig 7/8 x-axis, unnormalized)."""
        return self.traffic_bytes / self.misses if self.misses else 0.0

    @property
    def average_latency_ns(self) -> float:
        """Mean transaction latency under the Table 4 latency model."""
        return self.latency_ns_sum / self.misses if self.misses else 0.0


class CoherenceProtocol(abc.ABC):
    """A message-level protocol model consuming trace records."""

    #: Protocol name for reports.
    name: str = ""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.latency = LatencyModel.from_config(config)
        self.traffic = TrafficModel.from_config(config)
        self.state = GlobalCoherenceState(
            config.n_processors, config.block_size
        )
        self.totals = TrafficTotals()

    # ------------------------------------------------------------------
    def handle(self, record: TraceRecord) -> RequestOutcome:
        """Process one coherence request and update the totals."""
        outcome = self._handle(record)
        self.totals.add(outcome, self.traffic, self.latency)
        return outcome

    def run(self, records) -> TrafficTotals:
        """Process a whole trace; returns the accumulated totals."""
        for record in records:
            self.handle(record)
        return self.totals

    def reset_totals(self) -> None:
        """Clear accounting (e.g. after predictor/cache warmup)."""
        self.totals = TrafficTotals()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _handle(self, record: TraceRecord) -> RequestOutcome:
        """Protocol-specific transaction handling."""
