"""Protocol interface and shared accounting types.

Protocols expose two execution paths over one transaction model:

- :meth:`CoherenceProtocol.handle` processes a single
  :class:`TraceRecord` and returns a full :class:`RequestOutcome` —
  the record-oriented API for analyses, tests, and custom consumers.
- :meth:`CoherenceProtocol.run` over a columnar :class:`Trace`
  dispatches to an allocation-free loop that indexes the trace's
  columns directly and calls the protocol's ``_handle_fast`` scalar
  kernel per request, folding accounting into local variables.

The fast loop is only taken when the concrete class pairs its
``_handle`` with a ``_handle_fast`` implementation; subclasses that
override ``_handle`` alone (e.g. instrumentation wrappers) fall back
to the record-oriented path automatically, so behaviour never
silently diverges.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
from array import array
from typing import Optional

from repro.common.params import LatencyModel, SystemConfig, TrafficModel
from repro.coherence.state import CoherenceOutcome, GlobalCoherenceState
from repro.trace.record import TraceRecord
from repro.trace.trace import Trace


class OutcomeColumns:
    """Per-record outcome columns produced by a batch protocol replay.

    When a consumer needs per-transaction results (the timing
    simulator's processor/link bookkeeping), the protocol's columnar
    loop fills these flat arrays — one entry per replayed record —
    instead of materializing :class:`RequestOutcome` objects:

    - ``latency_ns`` — the transaction's base latency,
    - ``transfer_bytes`` — bytes crossing the requester's link
      (request/forward/retry control messages plus the data response).

    The timing simulator's second pass feeds ``transfer_bytes`` to
    whichever pluggable :class:`~repro.timing.interconnect.Interconnect`
    model the configuration selects; the columns themselves are
    interconnect-agnostic, so one protocol batch loop serves every
    timing model.
    """

    __slots__ = ("latency_ns", "transfer_bytes")

    def __init__(self) -> None:
        self.latency_ns = array("d")
        self.transfer_bytes = array("q")

    def __len__(self) -> int:
        return len(self.latency_ns)


class LatencyClass(enum.Enum):
    """End-to-end latency class of one coherence transaction.

    Matches the paper's Section 5.1 numbers: 112 ns for a direct
    cache-to-cache transfer, 180 ns for a fetch from memory, 242 ns for
    an indirected (3-hop or retried) transfer.
    """

    CACHE_TO_CACHE_DIRECT = "c2c-direct"
    MEMORY = "memory"
    INDIRECT = "indirect"

    def latency_ns(self, model: LatencyModel) -> float:
        """Resolve this class against a :class:`LatencyModel`."""
        if self is LatencyClass.CACHE_TO_CACHE_DIRECT:
            return model.cache_to_cache_direct_ns
        if self is LatencyClass.MEMORY:
            return model.memory_ns
        return model.cache_to_cache_indirect_ns


@dataclasses.dataclass(frozen=True)
class RequestOutcome:
    """Accounting record for one coherence transaction.

    ``request_messages`` counts deliveries of the initial request;
    ``forward_messages`` counts directory forwards/invalidations;
    ``retry_messages`` counts re-issued multicast deliveries.  The
    paper's "request messages per miss" metric is the sum of all
    three (Section 4.2: "requests, forwards, and retries").
    """

    coherence: CoherenceOutcome
    request_messages: int
    forward_messages: int
    retry_messages: int
    data_messages: int
    indirection: bool
    latency_class: LatencyClass
    retries: int = 0

    @property
    def total_request_messages(self) -> int:
        """Requests + forwards + retries (the Figure 5 x-axis unit)."""
        return (
            self.request_messages
            + self.forward_messages
            + self.retry_messages
        )

    def traffic_bytes(self, traffic: TrafficModel) -> int:
        """Total interconnect bytes for this transaction."""
        return (
            self.total_request_messages * traffic.control_bytes
            + self.data_messages * traffic.data_bytes
        )


@dataclasses.dataclass
class TrafficTotals:
    """Running totals over a stream of transactions."""

    misses: int = 0
    indirections: int = 0
    request_messages: int = 0
    forward_messages: int = 0
    retry_messages: int = 0
    data_messages: int = 0
    traffic_bytes: int = 0
    latency_ns_sum: float = 0.0
    retries: int = 0

    def add(
        self,
        outcome: RequestOutcome,
        traffic: TrafficModel,
        latency: LatencyModel,
    ) -> None:
        """Fold one transaction into the totals."""
        self.misses += 1
        self.indirections += int(outcome.indirection)
        self.request_messages += outcome.request_messages
        self.forward_messages += outcome.forward_messages
        self.retry_messages += outcome.retry_messages
        self.data_messages += outcome.data_messages
        self.traffic_bytes += outcome.traffic_bytes(traffic)
        self.latency_ns_sum += outcome.latency_class.latency_ns(latency)
        self.retries += outcome.retries

    def add_batch(
        self,
        misses: int,
        indirections: int,
        request_messages: int,
        forward_messages: int,
        retry_messages: int,
        data_messages: int,
        traffic_bytes: int,
        latency_ns_sum: float,
        retries: int,
    ) -> None:
        """Fold a columnar batch into the totals.

        All arguments are deltas except ``latency_ns_sum``, which is
        the batch accumulator *seeded from the current value* and
        assigned back — this preserves the exact sequential float
        summation order of per-record :meth:`add` calls.
        """
        self.misses += misses
        self.indirections += indirections
        self.request_messages += request_messages
        self.forward_messages += forward_messages
        self.retry_messages += retry_messages
        self.data_messages += data_messages
        self.traffic_bytes += traffic_bytes
        self.latency_ns_sum = latency_ns_sum
        self.retries += retries

    # ------------------------------------------------------------------
    @property
    def indirection_pct(self) -> float:
        """Percent of misses that required indirection (Fig 5 y-axis)."""
        return 100.0 * self.indirections / self.misses if self.misses else 0.0

    @property
    def request_messages_per_miss(self) -> float:
        """Requests + forwards + retries per miss (Fig 5 x-axis)."""
        total = (
            self.request_messages
            + self.forward_messages
            + self.retry_messages
        )
        return total / self.misses if self.misses else 0.0

    @property
    def traffic_bytes_per_miss(self) -> float:
        """Interconnect bytes per miss (Fig 7/8 x-axis, unnormalized)."""
        return self.traffic_bytes / self.misses if self.misses else 0.0

    @property
    def average_latency_ns(self) -> float:
        """Mean transaction latency under the Table 4 latency model."""
        return self.latency_ns_sum / self.misses if self.misses else 0.0


class CoherenceProtocol(abc.ABC):
    """A message-level protocol model consuming trace records."""

    #: Protocol name for reports.
    name: str = ""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.latency = LatencyModel.from_config(config)
        self.traffic = TrafficModel.from_config(config)
        self.state = GlobalCoherenceState(
            config.n_processors, config.block_size
        )
        self.totals = TrafficTotals()
        # Resolved latency constants for the scalar kernels.
        self._lat_memory = self.latency.memory_ns
        self._lat_direct = self.latency.cache_to_cache_direct_ns
        self._lat_indirect = self.latency.cache_to_cache_indirect_ns
        self._block_shift = config.block_size.bit_length() - 1
        self._fast_ok = self._probe_fast_path()

    def _probe_fast_path(self) -> bool:
        """True if this instance's ``_handle`` has a paired fast kernel.

        Walks the MRO: the fast path is sound only if no subclass
        overrides ``_handle`` below the class that provides
        ``_handle_fast`` (otherwise the override's behaviour would be
        skipped by the columnar loop).
        """
        for klass in type(self).__mro__:
            if "_handle_fast" in klass.__dict__:
                return True
            if "_handle" in klass.__dict__:
                return False
        return False

    # ------------------------------------------------------------------
    def handle(self, record: TraceRecord) -> RequestOutcome:
        """Process one coherence request and update the totals."""
        outcome = self._handle(record)
        self.totals.add(outcome, self.traffic, self.latency)
        return outcome

    def run(self, records) -> TrafficTotals:
        """Process a whole trace; returns the accumulated totals.

        A columnar :class:`Trace` is replayed through the
        allocation-free scalar kernel when available; any other
        iterable of records takes the object path.
        """
        if self._fast_ok and isinstance(records, Trace):
            self._run_columns(records)
            return self.totals
        for record in records:
            self.handle(record)
        return self.totals

    def _prepare_fast_run(self) -> None:
        """Hook run before each columnar replay.

        Protocols that cache derived hot-path state (e.g. bound
        training methods per predictor) refresh it here, so swapping
        components between runs stays safe.
        """

    def _run_columns(
        self, trace: Trace, out: "Optional[OutcomeColumns]" = None
    ) -> None:
        """Replay ``trace`` via ``_handle_fast``, accumulating locally.

        With ``out``, per-record latency and link-transfer bytes are
        appended to its columns for downstream batch consumers (the
        timing simulator's second pass).
        """
        self._prepare_fast_run()
        handle_fast = self._handle_fast
        control = self.traffic.control_bytes
        data_size = self.traffic.data_bytes
        totals = self.totals
        misses = indirections = 0
        request_messages = forward_messages = retry_messages = 0
        data_messages = traffic_bytes = retries = 0
        latency_sum = totals.latency_ns_sum
        addresses, pcs, requesters, accesses, _ = trace.boxed_columns()
        blocks = trace.block_keys_list(self.config.block_size)
        lat_append = byte_append = None
        if out is not None:
            lat_append = out.latency_ns.append
            byte_append = out.transfer_bytes.append
        for address, pc, requester, code, block in zip(
            addresses, pcs, requesters, accesses, blocks,
        ):
            req, fwd, ret, data, indirect, latency_ns, n_retries = (
                handle_fast(address, pc, requester, code, block)
            )
            misses += 1
            indirections += indirect
            request_messages += req
            forward_messages += fwd
            retry_messages += ret
            data_messages += data
            transfer = (req + fwd + ret) * control + data * data_size
            traffic_bytes += transfer
            latency_sum += latency_ns
            retries += n_retries
            if lat_append is not None:
                lat_append(latency_ns)
                byte_append(transfer)
        totals.add_batch(
            misses, indirections, request_messages, forward_messages,
            retry_messages, data_messages, traffic_bytes, latency_sum,
            retries,
        )

    def reset_totals(self) -> None:
        """Clear accounting (e.g. after predictor/cache warmup)."""
        self.totals = TrafficTotals()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _handle(self, record: TraceRecord) -> RequestOutcome:
        """Protocol-specific transaction handling."""

    # Concrete protocols pair ``_handle`` with a ``_handle_fast(address,
    # pc, requester, access_code, block)`` scalar kernel returning
    # ``(request_messages, forward_messages, retry_messages,
    # data_messages, indirection, latency_ns, retries)``.  The kernel
    # must update coherence/predictor state exactly as ``_handle`` does;
    # accounting is folded in by the caller.
