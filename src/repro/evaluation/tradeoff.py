"""Trace-driven latency/bandwidth tradeoff evaluation (Section 4).

Each protocol/predictor configuration becomes one point on the paper's
two-dimensional plane: request messages per miss (bandwidth) against
percent of misses requiring indirection (latency).  Figures 5 and 6
are sweeps over this evaluator.

These metrics are message *counts*, independent of the interconnect
timing model and its link bandwidth — which is why
``link_bandwidths`` is a runtime-kind spec axis only; the timed
counterpart of this plane (and its per-bandwidth curves) lives in
:mod:`repro.evaluation.runtime`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

from repro.common.params import PredictorConfig, SystemConfig
from repro.protocols.base import CoherenceProtocol
from repro.protocols.directory import DirectoryProtocol
from repro.protocols.multicast import MulticastSnoopingProtocol
from repro.protocols.snooping import BroadcastSnoopingProtocol
from repro.trace.trace import Trace

#: Fraction of the trace used to warm caches/predictors before
#: measurement begins (the paper uses its first million misses).
DEFAULT_WARMUP_FRACTION = 0.25


@dataclasses.dataclass(frozen=True)
class TradeoffPoint:
    """One protocol configuration's position on the tradeoff plane."""

    label: str
    workload: str
    indirection_pct: float
    request_messages_per_miss: float
    traffic_bytes_per_miss: float
    average_latency_ns: float
    misses: int
    retries: int = 0

    def __str__(self) -> str:
        return (
            f"{self.label:24s} ind={self.indirection_pct:5.1f}%  "
            f"req/miss={self.request_messages_per_miss:5.2f}  "
            f"bytes/miss={self.traffic_bytes_per_miss:6.1f}  "
            f"lat={self.average_latency_ns:5.1f}ns"
        )


def evaluate_protocol(
    protocol: CoherenceProtocol,
    trace: Trace,
    label: Optional[str] = None,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> TradeoffPoint:
    """Run ``trace`` through ``protocol``; measure the post-warmup part.

    The warmup prefix trains caches' coherence state and predictors
    without contributing to the reported metrics, mirroring the paper's
    warmup protocol.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    n_warmup = int(len(trace) * warmup_fraction)
    warmup, measured = trace.split_warmup(n_warmup)
    protocol.run(warmup)
    protocol.reset_totals()
    totals = protocol.run(measured)
    return TradeoffPoint(
        label=label if label is not None else protocol.name,
        workload=trace.name,
        indirection_pct=totals.indirection_pct,
        request_messages_per_miss=totals.request_messages_per_miss,
        traffic_bytes_per_miss=totals.traffic_bytes_per_miss,
        average_latency_ns=totals.average_latency_ns,
        misses=totals.misses,
        retries=totals.retries,
    )


def evaluate_design_space(
    trace: Trace,
    config: Optional[SystemConfig] = None,
    predictors: Sequence[str] = (
        "owner",
        "broadcast-if-shared",
        "group",
        "owner-group",
    ),
    predictor_config: Optional[PredictorConfig] = None,
    include_baselines: bool = True,
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
) -> List[TradeoffPoint]:
    """Evaluate baselines plus each named predictor on one trace.

    This reproduces one panel of Figure 5: the snooping and directory
    endpoints plus one point per prediction policy.
    """
    config = config if config is not None else SystemConfig()
    points: List[TradeoffPoint] = []
    if include_baselines:
        points.append(
            evaluate_protocol(
                DirectoryProtocol(config),
                trace,
                label="directory",
                warmup_fraction=warmup_fraction,
            )
        )
        points.append(
            evaluate_protocol(
                BroadcastSnoopingProtocol(config),
                trace,
                label="broadcast-snooping",
                warmup_fraction=warmup_fraction,
            )
        )
    for name in predictors:
        protocol = MulticastSnoopingProtocol(
            config, predictor=name, predictor_config=predictor_config
        )
        points.append(
            evaluate_protocol(
                protocol,
                trace,
                label=name,
                warmup_fraction=warmup_fraction,
            )
        )
    return points
