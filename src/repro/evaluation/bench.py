"""Core-simulation performance microbenchmarks (``repro bench``).

Measures the throughput of the hot paths the columnar trace engine
optimizes — protocol replay, the full Figure 5 tradeoff sweep, the
timing simulator, and the trace analyses — in *trace records per
second*, plus the cold path: ``trace_generation`` regenerates the
workload trace end-to-end (chunked reference synthesis through the
chunk-consuming cache/MOSI filter, no trace cache) and reports
*references* per second.  The ``sweep_inprocess``/``fabric_overhead``
pair runs one identical warm-cache sweep through the in-process
runner and through the distributed fabric (queue, claims, store,
reassembly); their gap prices the fabric's dispatch machinery.  The
``sweep_threads_1``/``sweep_threads_4`` pair runs one identical
multi-cell sweep through the thread executor over a shared in-memory
corpus at one and at :data:`SWEEP_THREADS` worker threads; their
ratio is the thread-scaling ``parallel_efficiency`` block — near 1×
under the GIL-bound Python tiers, multi-core under the native
kernels, which release the GIL around their compute phases.  All
four sweep entries run on the *selected* backend (they benchmark the
execution machinery, not a pinned Python tier) and record their
``executor``/``threads``/``backend`` alongside the throughput.

Two artifacts build on this module:

- ``repro bench --out BENCH.json`` writes the suite results; the
  committed ``BENCH.json`` documents the engine's measured speedup
  over the pre-columnar baseline (see :data:`PRE_COLUMNAR_BASELINE`).
- ``repro bench --check BENCH_baseline.json`` compares a fresh run
  against a committed reference and fails on regression; CI runs this
  on a small workload.  Comparisons use *calibrated* throughput —
  records/sec divided by a machine-speed score measured on the spot —
  so a slower CI runner does not read as an engine regression.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import pathlib
import platform
import shutil
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.locality import locality_cdf
from repro.analysis.sharing import degree_of_sharing, sharing_histogram
from repro.common import backend as _backend
from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.runtime import make_protocol
from repro.evaluation.tradeoff import (
    evaluate_design_space,
    evaluate_protocol,
)
from repro.timing.system import TimingSimulator
from repro.trace.stats import compute_trace_stats
from repro.trace.trace import Trace
from repro.workloads.registry import create_workload

#: Bump when the BENCH.json layout changes.
BENCH_FORMAT = 1

#: Pre-columnar engine throughput on the reference configuration
#: (``oltp``, 60,000 references, seed 42 — the Figure 5 predictor
#: tradeoff sweep), measured on the development machine at the commit
#: preceding the columnar engine, interleaved with the new engine
#: (best of 3 after warm-up) so both saw identical load.
#: ``repro bench`` reports the current engine's speedup against this
#: when run at the same configuration.
PRE_COLUMNAR_BASELINE = {
    "workload": "oltp",
    "n_references": 60_000,
    "seed": 42,
    "fig5_tradeoff_records_per_sec": 52_900.0,
}

#: Cold-path throughput on the reference configuration at the commit
#: preceding the batched generation layer, measured interleaved with
#: the new engine (best of 3 after warm-up) on the development
#: machine.  ``trace_generation`` is end-to-end cold collection
#: (references/sec through the record-loop generator + per-record
#: collector); ``analysis_sharing`` is the PR-3 record-loop entry
#: (trace records/sec, from the committed BENCH.json at that commit).
PRE_BATCHED_BASELINE = {
    "workload": "oltp",
    "n_references": 60_000,
    "seed": 42,
    "trace_generation_records_per_sec": 99_900.0,
    "analysis_sharing_records_per_sec": 1_498_634.0,
}

#: Default benchmark configuration (matches the baseline above).
DEFAULT_WORKLOAD = "oltp"
DEFAULT_REFERENCES = 60_000
DEFAULT_SEED = 42

#: Quick configuration for CI smoke runs.
QUICK_WORKLOAD = "barnes-hut"
QUICK_REFERENCES = 8_000

#: Entries re-run under the native kernel tier (as ``<name>_native``)
#: when the unified backend resolves to ``native``.  The regular
#: entries are pinned to the fastest *Python* tier so their numbers
#: stay comparable across machines and commits regardless of whether
#: the extension is built; the ``_native`` twins (plus the
#: ``pre_native_baseline`` block) document the compiled tier's
#: speedup on the same machine in the same run.  One twin per
#: compiled kernel: the five fused policy replays, both timing
#: passes, and the 64-node scaling entry (which exercises the
#: two-word destination-mask envelope).
NATIVE_BENCH_ENTRIES = (
    "protocol_multicast_group",
    "protocol_multicast_owner",
    "protocol_multicast_bifs",
    "protocol_multicast_sticky",
    "timing_runtime",
    "timing_detailed",
    "protocol_scale64",
)

#: Worker threads for the ``sweep_threads_4`` scaling entry.
SWEEP_THREADS = 4

#: Entries pinned to the *selected* backend rather than the Python
#: tier: they price execution machinery (runner dispatch, fabric
#: overhead, thread scaling), so they must measure the backend the
#: user actually sweeps with.  Each records its ``executor`` /
#: ``threads`` / ``backend`` in the report entry.
#: Worker processes for the ``sweep_coldstart`` entry.
COLDSTART_PROCESSES = 2

SWEEP_EXECUTION_ENTRIES = {
    "sweep_inprocess": {"executor": "serial", "threads": 1},
    "fabric_overhead": {"executor": "fabric", "threads": 1},
    "sweep_threads_1": {"executor": "threads", "threads": 1},
    "sweep_threads_4": {"executor": "threads", "threads": SWEEP_THREADS},
    # Process-pool sweep against a warmed on-disk cache: prices worker
    # spawn plus each worker's per-process trace-store loads — the
    # cold-start cost the zero-copy v2 store attacks.  `threads` here
    # is the worker count; >1 keeps it out of the cross-machine
    # calibrated gate (like sweep_threads_4, it measures topology).
    "sweep_coldstart": {
        "executor": "processes", "threads": COLDSTART_PROCESSES,
    },
}


@dataclasses.dataclass(frozen=True)
class BenchResult:
    """One microbenchmark's measured throughput."""

    name: str
    records: int
    seconds: float
    calibration_score: float
    #: Execution metadata (executor/threads/backend) for the sweep
    #: entries; None for the plain replay benchmarks.
    extra: Optional[dict] = None

    @property
    def records_per_sec(self) -> float:
        return self.records / self.seconds if self.seconds else 0.0

    @property
    def calibrated(self) -> float:
        """Throughput normalized by the machine-speed score.

        Dimensionless: comparable across machines of different speeds,
        which is what the CI regression check needs.
        """
        if not self.calibration_score:
            return 0.0
        return self.records_per_sec / self.calibration_score

    def to_dict(self) -> dict:
        entry = {
            "name": self.name,
            "records": self.records,
            "seconds": round(self.seconds, 6),
            "records_per_sec": round(self.records_per_sec, 1),
            "calibrated": round(self.calibrated, 4),
        }
        if self.extra:
            entry.update(self.extra)
        return entry


def calibration_score(loops: int = 200_000) -> float:
    """A machine-speed score in pure-Python kilo-operations per second.

    Runs a fixed dict/int workload resembling the simulator's inner
    loops.  Dividing a benchmark's records/sec by this score yields a
    machine-independent throughput used for CI regression checks.
    """
    best = float("inf")
    for _ in range(3):
        table: Dict[int, int] = {}
        started = time.perf_counter()
        acc = 0
        for i in range(loops):
            key = (i * 2654435761) & 0xFFFF
            value = table.get(key)
            if value is None:
                table[key] = i
            else:
                table[key] = value + 1
            acc += (key >> 3) & 7
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return loops / best / 1000.0


#: Minimum wall-clock per timing sample; sub-millisecond benchmarks
#: are looped until a sample is at least this long, so the regression
#: gate measures throughput rather than timer/scheduler noise.
MIN_SAMPLE_SECONDS = 0.05

def _time_best(function: Callable[[], int], repeats: int) -> Tuple[int, float]:
    """Best-of-``repeats`` per-call seconds for ``function``.

    One untimed warm-up call primes per-trace caches (e.g. the block
    key columns) so they are not charged to the first sample; fast
    functions are auto-ranged to several calls per sample.
    """
    records = function()  # warm-up
    inner = 1
    while True:
        started = time.perf_counter()
        for _ in range(inner):
            function()
        elapsed = time.perf_counter() - started
        if elapsed >= MIN_SAMPLE_SECONDS or inner >= 1024:
            break
        scale = MIN_SAMPLE_SECONDS / max(elapsed, 1e-9)
        inner = min(1024, max(inner * 2, int(inner * scale) + 1))
    best = elapsed / inner
    for _ in range(repeats - 1):
        started = time.perf_counter()
        for _ in range(inner):
            function()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed / inner)
    return records, best


def _benchmarks(
    trace: Trace,
    config: SystemConfig,
    predictor_config: PredictorConfig,
    workload: str,
    n_references: int,
    seed: int,
) -> "List[Tuple[str, Callable[[], int]]]":
    """The suite: name -> callable returning records processed."""

    def trace_generation() -> int:
        # Cold path end-to-end: chunked reference synthesis plus the
        # chunk-consuming cache/MOSI filter (no trace cache involved).
        # Throughput unit is *references*/sec, unlike the replay
        # benchmarks' trace records/sec.
        model = create_workload(workload, seed=seed)
        model.collect(n_references)
        return n_references

    def fig5_tradeoff() -> int:
        points = evaluate_design_space(
            trace, config=config, predictor_config=predictor_config
        )
        return len(trace) * len(points)

    def protocol(label: str) -> int:
        instance = make_protocol(label, config, predictor_config)
        evaluate_protocol(instance, trace, label=label)
        return len(trace)

    def timing_runtime() -> int:
        instance = make_protocol("group", config, predictor_config)
        simulator = TimingSimulator(config, instance)
        simulator.run(trace)
        return len(trace)

    def timing_detailed() -> int:
        # The detailed (bounded-outstanding-miss) processor model:
        # its per-node min-heaps are the second compiled timing pass.
        instance = make_protocol("group", config, predictor_config)
        simulator = TimingSimulator(
            config, instance, processor_model="detailed"
        )
        simulator.run(trace)
        return len(trace)

    def protocol_scale64() -> int:
        # The ROADMAP big-system gate: Group replay on a 64-node
        # machine, past the old single-word native envelope.  The
        # 64-node trace is collected once (during the untimed warm-up
        # call) and reused.
        if "scale64" not in state:
            scale_config = dataclasses.replace(config, n_processors=64)
            scale_trace = create_workload(
                workload, config=scale_config, seed=seed
            ).collect(n_references).trace
            state["scale64"] = (scale_config, scale_trace)
        scale_config, scale_trace = state["scale64"]
        instance = make_protocol("group", scale_config, predictor_config)
        evaluate_protocol(instance, scale_trace, label="group")
        return len(scale_trace)

    def timing_constrained_bw() -> int:
        # Timing throughput at a tenth of the configured link
        # bandwidth: the queueing/serialization arithmetic actually
        # fires (at the paper's ample 10 GB/s links it mostly
        # reduces to max() against the base latency), so bandwidth
        # sweeps are gated at the contended end of the axis too.
        constrained = dataclasses.replace(
            config,
            link_bandwidth_bytes_per_ns=(
                config.link_bandwidth_bytes_per_ns / 10.0
            ),
        )
        instance = make_protocol("group", constrained, predictor_config)
        simulator = TimingSimulator(constrained, instance)
        simulator.run(trace)
        return len(trace)

    def analysis_sharing() -> int:
        sharing_histogram(trace, block_size=config.block_size)
        degree_of_sharing(trace, config.block_size)
        return 2 * len(trace)

    def analysis_locality() -> int:
        for kind in ("block", "macroblock", "pc"):
            locality_cdf(
                trace,
                kind=kind,
                block_size=config.block_size,
                macroblock_size=config.macroblock_size,
            )
        return 3 * len(trace)

    def trace_stats() -> int:
        compute_trace_stats(
            trace, config.block_size, config.macroblock_size
        )
        return len(trace)

    # -- fabric dispatch overhead --------------------------------------
    # `sweep_inprocess` and `fabric_overhead` run the *same* one-cell-
    # per-label sweep against the *same* warmed on-disk trace cache;
    # the throughput gap between them is the cost of the distributed
    # fabric's machinery (queue files, claims, heartbeats, store
    # writes, reassembly) on top of identical simulation work.
    state: dict = {}

    def _sweep_spec():
        from repro.experiment.spec import ExperimentSpec

        return ExperimentSpec(
            workloads=(workload,),
            kind="tradeoff",
            n_references=n_references,
            seeds=(seed,),
            policies=("owner",),
            predictor_config=predictor_config,
            system_config=config,
        )

    def _shared_traces() -> pathlib.Path:
        if "traces" not in state:
            from repro.experiment.cache import PersistentTraceCorpus

            state["tmp"] = tempfile.TemporaryDirectory(
                prefix="repro-bench-fabric-"
            )
            root = pathlib.Path(state["tmp"].name)
            traces = root / "traces"
            # Warm once so neither contender pays trace generation.
            PersistentTraceCorpus(config, traces).collect(
                workload, n_references, seed
            )
            state["root"] = root
            state["traces"] = traces
            state["counter"] = itertools.count()
        return state["traces"]

    def sweep_inprocess() -> int:
        from repro.experiment.runner import Runner

        spec = _sweep_spec()
        Runner(jobs=1, cache_dir=_shared_traces()).run(spec)
        return spec.n_jobs * len(trace)

    def sweep_coldstart() -> int:
        from repro.experiment.runner import Runner

        spec = _sweep_spec()
        Runner(
            jobs=COLDSTART_PROCESSES,
            executor="processes",
            cache_dir=_shared_traces(),
        ).run(spec)
        return spec.n_jobs * len(trace)

    # -- trace store load path ----------------------------------------
    # `trace_load_binary` vs `trace_load_v2` price the per-cell setup
    # the v2 store deletes.  The v1 sidecar copies every column byte
    # (`array.frombytes`) and then recomputes the derived replay
    # columns from scratch; the v2 sidecar mmaps, serving the base
    # columns and the persisted block/macroblock keys as zero-copy
    # views — the replay-ready state for the compiled tier, which
    # consumes raw columns directly.  (The Python tiers still box
    # lists on first use; that cost is deferred to replay, not paid
    # per load, and the store serves it via C-level copies.)
    def _store_paths():
        if "store_bin" not in state:
            from repro.experiment.cache import derived_config
            from repro.trace.io import write_trace_binary, write_trace_v2

            _shared_traces()  # owns the tempdir
            root = state["root"]
            state["store_bin"] = root / "bench-trace.bin"
            state["store_bin2"] = root / "bench-trace.bin2"
            write_trace_binary(trace, state["store_bin"])
            write_trace_v2(
                trace, state["store_bin2"], derived_config(config)
            )
        return state["store_bin"], state["store_bin2"]

    def trace_load_binary() -> int:
        from repro.trace.io import read_trace_binary

        bin_path, _ = _store_paths()
        loaded = read_trace_binary(bin_path)
        loaded.derived_columns(
            config.block_size,
            config.n_processors,
            predictor_config.index_granularity,
            False,
        )
        loaded.block_keys(config.block_size)
        loaded.block_keys(config.macroblock_size)
        return len(loaded)

    def trace_load_v2() -> int:
        from repro.trace.io import read_trace_v2

        _, v2_path = _store_paths()
        loaded = read_trace_v2(v2_path)
        loaded.block_keys(config.block_size)
        loaded.block_keys(config.macroblock_size)
        return len(loaded)

    # -- thread scaling -----------------------------------------------
    # `sweep_threads_1` / `sweep_threads_4` run the *same* eight-cell
    # sweep (two seeds x four fused policies) through the thread
    # executor over one pre-warmed in-memory corpus; the throughput
    # ratio is the thread-scaling factor the parallel_efficiency
    # block reports.  Trace generation happens once, in the untimed
    # warm-up call.
    def _thread_corpus():
        if "thread_corpus" not in state:
            from repro.evaluation.corpus import TraceCorpus

            corpus = TraceCorpus(config)
            for thread_seed in (seed, seed + 1):
                corpus.collect(workload, n_references, thread_seed)
            state["thread_corpus"] = corpus
        return state["thread_corpus"]

    def _thread_spec():
        from repro.experiment.spec import ExperimentSpec

        return ExperimentSpec(
            workloads=(workload,),
            kind="tradeoff",
            n_references=n_references,
            seeds=(seed, seed + 1),
            policies=(
                "owner",
                "group",
                "broadcast-if-shared",
                "sticky-spatial",
            ),
            predictor_config=predictor_config,
            system_config=config,
        )

    def sweep_threads(n_threads: int) -> int:
        from repro.experiment.runner import Runner

        spec = _thread_spec()
        Runner(
            jobs=n_threads, executor="threads", corpus=_thread_corpus()
        ).run(spec)
        return spec.n_jobs * len(trace)

    def fabric_overhead() -> int:
        from repro.fabric import FabricCoordinator, FabricWorker

        traces = _shared_traces()
        fabric = state["root"] / f"fabric-{next(state['counter'])}"
        fabric.mkdir()
        # Share the warmed cache; everything else (queue, claims,
        # store, assembly) is paid fresh on every call.
        (fabric / "traces").symlink_to(traces)
        spec = _sweep_spec()
        coordinator = FabricCoordinator(fabric)
        coordinator.enqueue_missing(spec)
        FabricWorker(fabric).run()
        if coordinator.try_assemble(spec) is None:
            raise RuntimeError("fabric benchmark sweep incomplete")
        shutil.rmtree(fabric)
        return spec.n_jobs * len(trace)

    return [
        ("trace_generation", trace_generation),
        ("fig5_tradeoff", fig5_tradeoff),
        ("protocol_directory", lambda: protocol("directory")),
        ("protocol_snooping", lambda: protocol("broadcast-snooping")),
        ("protocol_multicast_group", lambda: protocol("group")),
        # Per-predictor multicast entries so the CI regression gate
        # covers every fused batch kernel, not just Group's.
        ("protocol_multicast_owner", lambda: protocol("owner")),
        (
            "protocol_multicast_bifs",
            lambda: protocol("broadcast-if-shared"),
        ),
        (
            "protocol_multicast_sticky",
            lambda: protocol("sticky-spatial"),
        ),
        ("timing_runtime", timing_runtime),
        ("timing_detailed", timing_detailed),
        ("timing_constrained_bw", timing_constrained_bw),
        # Big-system scaling gate (ROADMAP): 64 nodes, two-word masks.
        ("protocol_scale64", protocol_scale64),
        ("analysis_sharing", analysis_sharing),
        ("analysis_locality", analysis_locality),
        ("trace_stats", trace_stats),
        ("trace_load_binary", trace_load_binary),
        ("trace_load_v2", trace_load_v2),
        ("sweep_inprocess", sweep_inprocess),
        ("sweep_coldstart", sweep_coldstart),
        ("fabric_overhead", fabric_overhead),
        ("sweep_threads_1", lambda: sweep_threads(1)),
        ("sweep_threads_4", lambda: sweep_threads(SWEEP_THREADS)),
    ]


def run_suite(
    trace: Trace,
    workload: str,
    n_references: int,
    seed: int,
    config: Optional[SystemConfig] = None,
    predictor_config: Optional[PredictorConfig] = None,
    repeats: int = 2,
) -> dict:
    """Run every microbenchmark over ``trace``; return the BENCH dict."""
    config = config if config is not None else SystemConfig()
    predictor_config = (
        predictor_config if predictor_config is not None
        else PredictorConfig()
    )
    score = calibration_score()
    results: List[BenchResult] = []
    suite = _benchmarks(
        trace, config, predictor_config, workload, n_references, seed
    )

    def pinned(function, backend_name):
        def wrapped() -> int:
            with _backend.use(backend_name):
                return function()
        return wrapped

    # Pin the regular entries to a Python tier and twin the native-
    # accelerated hot paths (see NATIVE_BENCH_ENTRIES).  An explicit
    # pure/numpy selection is honoured as-is (REPRO_PURE_PYTHON=1 must
    # measure the pure floor); under the native backend the regular
    # entries run on the fastest *Python* tier so the cross-commit
    # trajectory stays comparable and the native twins have a
    # same-report denominator.  The sweep/fabric/thread entries
    # instead run on the *selected* backend — they benchmark the
    # execution machinery (SWEEP_EXECUTION_ENTRIES) — and stamp the
    # executor/threads/backend they ran with into their report entry.
    unified = _backend.backend_name()
    if unified == "native":
        python_tier = "numpy" if _backend._numpy_available() else "pure"
    else:
        python_tier = unified
    timed = [
        (
            name,
            pinned(
                fn,
                unified if name in SWEEP_EXECUTION_ENTRIES
                else python_tier,
            ),
        )
        for name, fn in suite
    ]
    if unified == "native":
        by_name = dict(suite)
        timed += [
            (f"{name}_native", pinned(by_name[name], "native"))
            for name in NATIVE_BENCH_ENTRIES
        ]
    for name, function in timed:
        records, seconds = _time_best(function, repeats)
        extra = None
        if name in SWEEP_EXECUTION_ENTRIES:
            extra = dict(
                SWEEP_EXECUTION_ENTRIES[name], backend=unified
            )
        results.append(BenchResult(name, records, seconds, score, extra))

    report = {
        "format": BENCH_FORMAT,
        "workload": workload,
        "n_references": n_references,
        "seed": seed,
        "trace_records": len(trace),
        "python": platform.python_version(),
        # Machine shape, so the thread-scaling / parallel_efficiency
        # entries are interpretable from the committed file alone
        # (earlier baselines were measured on a 1-core container with
        # no way to tell).
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "columns_backend": unified,
        "python_tier": python_tier,
        "calibration_kops": round(score, 1),
        "benchmarks": [r.to_dict() for r in results],
    }
    by_result = {r.name: r for r in results}
    threads_1 = by_result.get("sweep_threads_1")
    threads_4 = by_result.get("sweep_threads_4")
    if threads_1 is not None and threads_4 is not None:
        speedup = (
            threads_4.records_per_sec / threads_1.records_per_sec
            if threads_1.records_per_sec
            else 0.0
        )
        report["parallel_efficiency"] = {
            "executor": "threads",
            "backend": unified,
            "threads": SWEEP_THREADS,
            "cpus": os.cpu_count() or 1,
            "sweep_threads_1_records_per_sec": round(
                threads_1.records_per_sec, 1
            ),
            "sweep_threads_4_records_per_sec": round(
                threads_4.records_per_sec, 1
            ),
            "speedup": round(speedup, 2),
            "efficiency": round(speedup / SWEEP_THREADS, 3),
        }
    if unified == "native":
        natives = {}
        by_result = {r.name: r for r in results}
        for name in NATIVE_BENCH_ENTRIES:
            base = by_result[name]
            fast = by_result[f"{name}_native"]
            natives[f"{name}_records_per_sec"] = round(
                base.records_per_sec, 1
            )
            natives[f"{name}_native_speedup"] = round(
                fast.records_per_sec / base.records_per_sec, 2
            ) if base.records_per_sec else 0.0
        report["pre_native_baseline"] = natives

    baseline = PRE_COLUMNAR_BASELINE
    if (
        workload == baseline["workload"]
        and n_references == baseline["n_references"]
        and seed == baseline["seed"]
    ):
        fig5 = next(r for r in results if r.name == "fig5_tradeoff")
        reference = baseline["fig5_tradeoff_records_per_sec"]
        report["pre_columnar_baseline"] = {
            "fig5_tradeoff_records_per_sec": reference,
            "fig5_tradeoff_speedup": round(
                fig5.records_per_sec / reference, 2
            ),
        }
    batched = PRE_BATCHED_BASELINE
    if (
        workload == batched["workload"]
        and n_references == batched["n_references"]
        and seed == batched["seed"]
    ):
        entries = {}
        for name in ("trace_generation", "analysis_sharing"):
            reference = batched[f"{name}_records_per_sec"]
            measured = next(r for r in results if r.name == name)
            entries[f"{name}_records_per_sec"] = reference
            entries[f"{name}_speedup"] = round(
                measured.records_per_sec / reference, 2
            )
        report["pre_batched_baseline"] = entries
    return report


def check_against_baseline(
    report: dict, baseline: dict, tolerance: float = 0.30
) -> List[str]:
    """Regression check of ``report`` against a saved baseline report.

    Compares the *calibrated* throughput of benchmarks present in both
    reports; returns a list of human-readable failures (empty when the
    run passes).  ``tolerance`` is the allowed fractional drop.
    """
    failures = []
    current = {b["name"]: b for b in report.get("benchmarks", ())}
    for entry in baseline.get("benchmarks", ()):
        name = entry["name"]
        if entry.get("threads", 1) > 1:
            # Multi-thread scaling entries measure machine topology
            # (core count, GIL contention pattern), not engine speed;
            # calibration does not transfer across core counts, so CI
            # gates them with the parallel_efficiency assertion on a
            # known runner instead.
            continue
        reference = entry.get("calibrated", 0.0)
        observed = current.get(name, {}).get("calibrated")
        if observed is None:
            failures.append(f"{name}: missing from this run")
            continue
        if not reference:
            continue
        floor = (1.0 - tolerance) * reference
        if observed < floor:
            drop = 100.0 * (1.0 - observed / reference)
            failures.append(
                f"{name}: calibrated throughput {observed:.3f} is "
                f"{drop:.0f}% below baseline {reference:.3f} "
                f"(tolerance {tolerance:.0%})"
            )
    return failures


def load_report(path) -> dict:
    """Load a BENCH.json report from disk."""
    with open(path, "r", encoding="ascii") as handle:
        return json.load(handle)


def render_report(report: dict) -> str:
    """A human-readable table of one BENCH report."""
    backend = report.get("columns_backend", "python")
    tier = report.get("python_tier")
    backend_label = (
        f"{backend} (python tier: {tier})"
        if tier and tier != backend
        else backend
    )
    lines = [
        f"workload={report['workload']} "
        f"refs={report['n_references']} seed={report['seed']} "
        f"trace={report['trace_records']} records  "
        f"(calibration {report['calibration_kops']:.0f} kops/s, "
        f"python {report['python']}, backend {backend_label})",
        f"{'benchmark':31s} {'records':>10s} {'seconds':>9s} "
        f"{'records/sec':>12s} {'calibrated':>10s}",
    ]
    for entry in report["benchmarks"]:
        lines.append(
            f"{entry['name']:31s} {entry['records']:>10,d} "
            f"{entry['seconds']:>9.3f} {entry['records_per_sec']:>12,.0f} "
            f"{entry['calibrated']:>10.3f}"
        )
    baseline = report.get("pre_columnar_baseline")
    if baseline:
        lines.append(
            "fig5 tradeoff speedup vs pre-columnar engine "
            f"({baseline['fig5_tradeoff_records_per_sec']:,.0f} "
            f"records/sec): {baseline['fig5_tradeoff_speedup']:.2f}x"
        )
    batched = report.get("pre_batched_baseline")
    if batched:
        units = {
            "trace_generation": "references/sec",
            "analysis_sharing": "records/sec",
        }
        for name, unit in units.items():
            lines.append(
                f"{name} speedup vs pre-batched cold path "
                f"({batched[f'{name}_records_per_sec']:,.0f} "
                f"{unit}): {batched[f'{name}_speedup']:.2f}x"
            )
    native = report.get("pre_native_baseline")
    if native:
        for name in NATIVE_BENCH_ENTRIES:
            lines.append(
                f"{name} native-kernel speedup vs the Python tier "
                f"({native[f'{name}_records_per_sec']:,.0f} "
                f"records/sec): "
                f"{native[f'{name}_native_speedup']:.2f}x"
            )
    efficiency = report.get("parallel_efficiency")
    if efficiency:
        lines.append(
            f"thread scaling ({efficiency['backend']} backend, "
            f"{efficiency['threads']} threads on "
            f"{efficiency['cpus']} CPU(s)): "
            f"{efficiency['speedup']:.2f}x speedup, "
            f"{efficiency['efficiency']:.0%} parallel efficiency"
        )
    return "\n".join(lines)
