"""Plain-text rendering of tables and figure series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.analysis.locality import LocalityCdf
from repro.analysis.properties import WorkloadProperties
from repro.analysis.sharing import (
    SHARING_BINS,
    DegreeOfSharing,
    SharingHistogram,
)
from repro.evaluation.runtime import RuntimePoint
from repro.evaluation.tradeoff import TradeoffPoint


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_workload_properties(
    rows: Sequence[WorkloadProperties],
) -> str:
    """Table 2: workload properties."""
    return format_table(
        (
            "workload",
            "touched-64B",
            "touched-1KB",
            "miss-PCs",
            "misses",
            "miss/1k-instr",
            "dir-indirections",
        ),
        (
            (
                p.workload,
                f"{p.footprint_bytes / 2**20:.1f} MB",
                f"{p.macroblock_footprint_bytes / 2**20:.1f} MB",
                p.static_miss_pcs,
                p.total_misses,
                f"{p.misses_per_kilo_instruction:.1f}",
                f"{p.directory_indirection_pct:.0f}%",
            )
            for p in rows
        ),
    )


def render_sharing_histogram(rows: Sequence[SharingHistogram]) -> str:
    """Figure 2: required-recipient histogram, reads and writes."""
    headers = ["workload"]
    for b in SHARING_BINS:
        name = f"{b}" if b < SHARING_BINS[-1] else f"{b}+"
        headers += [f"R:{name}", f"W:{name}"]
    body = []
    for h in rows:
        row: List[str] = [h.workload]
        for b in SHARING_BINS:
            row.append(f"{h.read_pct[b]:.1f}%")
            row.append(f"{h.write_pct[b]:.1f}%")
        body.append(row)
    return format_table(headers, body)


def render_degree_of_sharing(
    rows: Sequence[DegreeOfSharing], thresholds: Sequence[int] = (1, 4, 8, 16)
) -> str:
    """Figure 3: cumulative blocks/misses by processor-touch degree."""
    headers = ["workload"]
    for t in thresholds:
        headers += [f"blocks<={t}", f"misses<={t}"]
    body = []
    for d in rows:
        row: List[str] = [d.workload]
        for t in thresholds:
            row.append(f"{d.blocks_cumulative(t):.1f}%")
            row.append(f"{d.misses_cumulative(t):.1f}%")
        body.append(row)
    return format_table(headers, body)


def render_locality(
    rows: Sequence[LocalityCdf],
    ks: Sequence[int] = (100, 1000, 10000),
) -> str:
    """Figure 4: cache-to-cache miss coverage by hottest-k entities."""
    headers = ["workload", "kind"] + [f"top-{k}" for k in ks]
    body = [
        [c.workload, c.kind, *(f"{c.coverage(k):.1f}%" for k in ks)]
        for c in rows
    ]
    return format_table(headers, body)


def render_tradeoff(points: Sequence[TradeoffPoint]) -> str:
    """Figure 5/6: the latency/bandwidth plane, one row per config."""
    return format_table(
        ("workload", "config", "req-msgs/miss", "indirections", "bytes/miss"),
        (
            (
                p.workload,
                p.label,
                f"{p.request_messages_per_miss:.2f}",
                f"{p.indirection_pct:.1f}%",
                f"{p.traffic_bytes_per_miss:.1f}",
            )
            for p in points
        ),
    )


def render_runtime(points: Sequence[RuntimePoint]) -> str:
    """Figure 7/8: normalized runtime vs normalized traffic."""
    return format_table(
        (
            "workload",
            "config",
            "norm-runtime",
            "norm-traffic/miss",
            "indirections",
        ),
        (
            (
                p.workload,
                p.label,
                f"{p.normalized_runtime:.1f}",
                f"{p.normalized_traffic_per_miss:.1f}",
                f"{p.indirection_pct:.1f}%",
            )
            for p in points
        ),
    )
