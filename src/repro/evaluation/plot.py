"""ASCII scatter plots of the tradeoff/runtime planes.

The paper presents Figures 5-8 as scatter plots; this module renders
the same planes in plain text so examples and benchmark output can
show the *shape* (who is where, where the frontier bends) without a
plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: Marker characters assigned to series in order.
_MARKERS = "XO*#@%&+=~"


def scatter_plot(
    points: Sequence[Tuple[float, float, str]],
    width: int = 64,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render labelled (x, y) points as an ASCII scatter plot.

    Each distinct label gets a marker; a legend maps markers back to
    labels.  Axes are scaled to the data with a small margin and
    annotated with their ranges.
    """
    if not points:
        return "(no points)"
    if width < 16 or height < 6:
        raise ValueError("plot must be at least 16x6 characters")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = _padded_range(min(xs), max(xs))
    y_lo, y_hi = _padded_range(min(ys), max(ys))

    labels: List[str] = []
    for _, _, label in points:
        if label not in labels:
            labels.append(label)
    markers = {
        label: _MARKERS[index % len(_MARKERS)]
        for index, label in enumerate(labels)
    }

    grid = [[" "] * width for _ in range(height)]
    for x, y, label in points:
        column = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][column] = markers[label]

    lines = []
    if y_label:
        lines.append(y_label)
    lines.append(f"{y_hi:8.1f} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row) + "|")
    lines.append(f"{y_lo:8.1f} +" + "-" * width + "+")
    lines.append(
        " " * 10 + f"{x_lo:<10.2f}" + " " * (width - 20) + f"{x_hi:>10.2f}"
    )
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "   ".join(
        f"{markers[label]}={label}" for label in labels
    )
    lines.append("")
    lines.append("  " + legend)
    return "\n".join(lines)


def plot_tradeoff(points, width: int = 64, height: int = 18) -> str:
    """Plot :class:`TradeoffPoint` rows as a Figure 5-style scatter."""
    return scatter_plot(
        [
            (p.request_messages_per_miss, p.indirection_pct, p.label)
            for p in points
        ],
        width=width,
        height=height,
        x_label="request messages per miss",
        y_label="indirections (percent of misses)",
    )


def plot_runtime(points, width: int = 64, height: int = 18) -> str:
    """Plot :class:`RuntimePoint` rows as a Figure 7-style scatter."""
    return scatter_plot(
        [
            (
                p.normalized_traffic_per_miss,
                p.normalized_runtime,
                p.label,
            )
            for p in points
        ],
        width=width,
        height=height,
        x_label="normalized traffic per miss (snooping = 100)",
        y_label="normalized runtime (directory = 100)",
    )


def plot_bandwidth_curves(
    curves,
    metric_label: str = "runtime (ms)",
    scale: float = 1e-6,
    width: int = 64,
    height: int = 18,
) -> str:
    """Plot per-protocol bandwidth curves (a Figure 7/8 frontier sweep).

    ``curves`` maps label -> sorted ``(bandwidth, value)`` points, as
    produced by :meth:`repro.experiment.ResultSet.bandwidth_curves`;
    ``scale`` converts the raw metric for display (default ns -> ms).
    """
    points = [
        (bandwidth, value * scale, label)
        for label, series in curves.items()
        for bandwidth, value in series
    ]
    return scatter_plot(
        points,
        width=width,
        height=height,
        x_label="link bandwidth (GB/s)",
        y_label=metric_label,
    )


def _padded_range(lo: float, hi: float) -> Tuple[float, float]:
    if lo == hi:
        pad = abs(lo) * 0.1 or 1.0
        return lo - pad, hi + pad
    pad = (hi - lo) * 0.05
    return lo - pad, hi + pad
