"""Memoized workload traces — the analogue of the paper's trace files.

The paper collects one trace per workload and reuses it across every
predictor experiment (deterministic, precise comparisons — Section
2.1).  :class:`TraceCorpus` does the same: the first request for a
workload's trace generates it through the cache pipeline; subsequent
requests return the cached result, so every predictor sees the
identical request stream.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.cache.pipeline import CollectionResult
from repro.common.params import SystemConfig
from repro.trace.trace import Trace
from repro.workloads.registry import create_workload

#: Default reference count: yields roughly 100k-200k misses per
#: workload at the default 1/16 scale — enough for stable shapes while
#: keeping a full six-workload sweep in CI time.  (The paper uses 1 M
#: misses of warmup plus measurement on its testbed.)
DEFAULT_REFERENCES = 240_000


class TraceCorpus:
    """Caches :class:`CollectionResult` per (workload, size, seed)."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config if config is not None else SystemConfig()
        self._cache: Dict[Tuple[str, int, int], CollectionResult] = {}

    def collect(
        self,
        workload: str,
        n_references: int = DEFAULT_REFERENCES,
        seed: int = 42,
    ) -> CollectionResult:
        """Trace plus counters for ``workload`` (cached)."""
        key = (workload, n_references, seed)
        if key not in self._cache:
            self._cache[key] = self._generate(workload, n_references, seed)
        return self._cache[key]

    def _generate(
        self, workload: str, n_references: int, seed: int
    ) -> CollectionResult:
        """Produce a fresh collection (subclasses may layer storage)."""
        model = create_workload(workload, config=self.config, seed=seed)
        return model.collect(n_references)

    def trace(
        self,
        workload: str,
        n_references: int = DEFAULT_REFERENCES,
        seed: int = 42,
    ) -> Trace:
        """Just the coherence-request trace for ``workload`` (cached)."""
        return self.collect(workload, n_references, seed).trace

    def clear(self) -> None:
        """Drop all cached traces."""
        self._cache.clear()


_DEFAULT: Optional[TraceCorpus] = None


def default_corpus() -> TraceCorpus:
    """The process-wide shared corpus (used by benchmarks/examples)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = TraceCorpus()
    return _DEFAULT
