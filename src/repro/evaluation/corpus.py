"""Memoized workload traces — the analogue of the paper's trace files.

The paper collects one trace per workload and reuses it across every
predictor experiment (deterministic, precise comparisons — Section
2.1).  :class:`TraceCorpus` does the same: the first request for a
workload's trace generates it through the cache pipeline; subsequent
requests return the cached result, so every predictor sees the
identical request stream.

Corpus traces are shared — across a sweep's threads within one
process, and (when the disk-backed subclass serves a ``.bin2`` store
entry zero-copy) across every process mapping the same file, whose
pages the OS cache holds once per host.  Treat them as read-only;
mutating accessors on a mapped trace copy-on-write first
(:meth:`repro.trace.trace.Trace.frozen`), so a misbehaving consumer
degrades to a private copy rather than corrupting the shared store.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.cache.pipeline import CollectionResult
from repro.common.params import SystemConfig
from repro.trace.trace import Trace
from repro.workloads.registry import create_workload

#: Default reference count: yields roughly 100k-200k misses per
#: workload at the default 1/16 scale — enough for stable shapes while
#: keeping a full six-workload sweep in CI time.  (The paper uses 1 M
#: misses of warmup plus measurement on its testbed.)
DEFAULT_REFERENCES = 240_000


class TraceCorpus:
    """Caches :class:`CollectionResult` per (workload, size, seed)."""

    def __init__(self, config: Optional[SystemConfig] = None):
        self.config = config if config is not None else SystemConfig()
        self._cache: Dict[Tuple[str, int, int], CollectionResult] = {}
        self._cache_lock = threading.Lock()
        self._key_locks: Dict[Tuple[str, int, int], threading.Lock] = {}

    def collect(
        self,
        workload: str,
        n_references: int = DEFAULT_REFERENCES,
        seed: int = 42,
    ) -> CollectionResult:
        """Trace plus counters for ``workload`` (cached).

        Generate-once under concurrency: one corpus is shared by every
        thread of a threaded sweep, so a miss is generated under a
        per-key lock — the first requester runs the pipeline, later
        requesters for the same key block until the result lands, and
        distinct workloads still generate in parallel.
        """
        key = (workload, n_references, seed)
        result = self._cache.get(key)
        if result is not None:
            return result
        with self._cache_lock:
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            result = self._cache.get(key)
            if result is None:
                result = self._generate(workload, n_references, seed)
                self._cache[key] = result
        return result

    def _generate(
        self, workload: str, n_references: int, seed: int
    ) -> CollectionResult:
        """Produce a fresh collection (subclasses may layer storage)."""
        model = create_workload(workload, config=self.config, seed=seed)
        return model.collect(n_references)

    def trace(
        self,
        workload: str,
        n_references: int = DEFAULT_REFERENCES,
        seed: int = 42,
    ) -> Trace:
        """Just the coherence-request trace for ``workload`` (cached)."""
        return self.collect(workload, n_references, seed).trace

    def clear(self) -> None:
        """Drop all cached traces."""
        self._cache.clear()


_DEFAULT: Optional[TraceCorpus] = None


def default_corpus() -> TraceCorpus:
    """The process-wide shared corpus (used by benchmarks/examples)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = TraceCorpus()
    return _DEFAULT
