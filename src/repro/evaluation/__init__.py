"""Experiment harnesses reproducing the paper's tables and figures.

- :mod:`repro.evaluation.corpus` — memoized workload trace generation
  (the analogue of the paper's trace files).
- :mod:`repro.evaluation.tradeoff` — the Section 4 trace-driven
  latency/bandwidth tradeoff (Figures 5 and 6).
- :mod:`repro.evaluation.runtime` — the Section 5 execution-driven
  runtime/traffic evaluation (Figures 7 and 8).
- :mod:`repro.evaluation.report` — plain-text table/series rendering.
"""

from repro.evaluation.corpus import TraceCorpus, default_corpus
from repro.evaluation.tradeoff import (
    TradeoffPoint,
    evaluate_design_space,
    evaluate_protocol,
)

__all__ = [
    "TraceCorpus",
    "TradeoffPoint",
    "default_corpus",
    "evaluate_design_space",
    "evaluate_protocol",
]
