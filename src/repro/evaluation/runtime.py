"""Runtime performance evaluation (Section 5, Figures 7 and 8).

For each workload, runs the timing simulator once per protocol
configuration and reports the paper's normalized metrics: runtime
normalized to the directory protocol (=100) and interconnect traffic
per miss normalized to broadcast snooping (=100).  The dotted "ideal"
lines of Figures 7/8 are the directory's traffic and snooping's
runtime.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.common.params import PredictorConfig, SystemConfig
from repro.protocols.base import CoherenceProtocol
from repro.protocols.directory import DirectoryProtocol
from repro.protocols.multicast import MulticastSnoopingProtocol
from repro.protocols.snooping import BroadcastSnoopingProtocol
from repro.timing.system import RuntimeResult, TimingSimulator
from repro.trace.trace import Trace

#: Baseline labels (always included so normalization is well defined).
DIRECTORY = "directory"
SNOOPING = "broadcast-snooping"


@dataclasses.dataclass(frozen=True)
class RuntimePoint:
    """One protocol's position on the Figure 7/8 plane."""

    label: str
    workload: str
    normalized_runtime: float
    normalized_traffic_per_miss: float
    runtime_ns: float
    traffic_bytes_per_miss: float
    indirection_pct: float

    def __str__(self) -> str:
        return (
            f"{self.label:24s} runtime={self.normalized_runtime:5.1f}  "
            f"traffic/miss={self.normalized_traffic_per_miss:5.1f}  "
            f"(abs {self.runtime_ns/1e6:.2f} ms, "
            f"{self.traffic_bytes_per_miss:.0f} B/miss)"
        )


def make_protocol(
    label: str,
    config: SystemConfig,
    predictor_config: Optional[PredictorConfig] = None,
) -> CoherenceProtocol:
    """Build the protocol a Figure 7/8 series point refers to.

    ``label`` is ``"directory"``, ``"broadcast-snooping"``, or a
    registered predictor name (run under multicast snooping).
    """
    if label == DIRECTORY:
        return DirectoryProtocol(config)
    if label == SNOOPING:
        return BroadcastSnoopingProtocol(config)
    return MulticastSnoopingProtocol(
        config, predictor=label, predictor_config=predictor_config
    )


def evaluate_runtime(
    trace: Trace,
    config: Optional[SystemConfig] = None,
    predictors: Sequence[str] = (
        "owner",
        "broadcast-if-shared",
        "group",
        "owner-group",
    ),
    predictor_config: Optional[PredictorConfig] = None,
    processor_model: str = "simple",
    max_outstanding: int = 4,
    warmup_fraction: float = 0.25,
) -> List[RuntimePoint]:
    """Produce one Figure 7 (or 8) panel for ``trace``.

    Always includes the directory and snooping baselines; normalizes
    runtime to directory=100 and traffic/miss to snooping=100.
    """
    config = config if config is not None else SystemConfig()
    labels = [DIRECTORY, SNOOPING, *predictors]
    raw: Dict[str, RuntimeResult] = {}
    for label in labels:
        protocol = make_protocol(label, config, predictor_config)
        simulator = TimingSimulator(
            config,
            protocol,
            processor_model=processor_model,
            max_outstanding=max_outstanding,
        )
        raw[label] = simulator.run(trace, warmup_fraction=warmup_fraction)

    directory_runtime = raw[DIRECTORY].runtime_ns
    snooping_traffic = raw[SNOOPING].traffic_bytes_per_miss
    points = []
    for label in labels:
        result = raw[label]
        points.append(
            RuntimePoint(
                label=label,
                workload=trace.name,
                normalized_runtime=(
                    100.0 * result.runtime_ns / directory_runtime
                    if directory_runtime
                    else 0.0
                ),
                normalized_traffic_per_miss=(
                    100.0 * result.traffic_bytes_per_miss / snooping_traffic
                    if snooping_traffic
                    else 0.0
                ),
                runtime_ns=result.runtime_ns,
                traffic_bytes_per_miss=result.traffic_bytes_per_miss,
                indirection_pct=result.indirection_pct,
            )
        )
    return points
