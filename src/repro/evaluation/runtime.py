"""Runtime performance evaluation (Section 5, Figures 7 and 8).

For each workload, runs the timing simulator once per protocol
configuration and reports the paper's normalized metrics: runtime
normalized to the directory protocol (=100) and interconnect traffic
per miss normalized to broadcast snooping (=100).  The dotted "ideal"
lines of Figures 7/8 are the directory's traffic and snooping's
runtime.

The interconnect model (and its bandwidth/hop-latency knobs) rides in
on the :class:`SystemConfig` each evaluation receives, so one panel
can be produced per fabric or per bandwidth point; sweeping the
bandwidth axis across a whole spec is
:func:`repro.experiment.bandwidth_sweep`'s job.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import PredictorConfig, SystemConfig
from repro.protocols.base import CoherenceProtocol
from repro.protocols.directory import DirectoryProtocol
from repro.protocols.multicast import MulticastSnoopingProtocol
from repro.protocols.snooping import BroadcastSnoopingProtocol
from repro.timing.system import RuntimeResult, TimingSimulator
from repro.trace.trace import Trace

#: Baseline labels (always included so normalization is well defined).
DIRECTORY = "directory"
SNOOPING = "broadcast-snooping"


@dataclasses.dataclass(frozen=True)
class RuntimePoint:
    """One protocol's position on the Figure 7/8 plane."""

    label: str
    workload: str
    normalized_runtime: float
    normalized_traffic_per_miss: float
    runtime_ns: float
    traffic_bytes_per_miss: float
    indirection_pct: float

    def __str__(self) -> str:
        return (
            f"{self.label:24s} runtime={self.normalized_runtime:5.1f}  "
            f"traffic/miss={self.normalized_traffic_per_miss:5.1f}  "
            f"(abs {self.runtime_ns/1e6:.2f} ms, "
            f"{self.traffic_bytes_per_miss:.0f} B/miss)"
        )


def make_protocol(
    label: str,
    config: SystemConfig,
    predictor_config: Optional[PredictorConfig] = None,
) -> CoherenceProtocol:
    """Build the protocol a Figure 7/8 series point refers to.

    ``label`` is ``"directory"``, ``"broadcast-snooping"``, or a
    registered predictor name (run under multicast snooping).
    """
    if label == DIRECTORY:
        return DirectoryProtocol(config)
    if label == SNOOPING:
        return BroadcastSnoopingProtocol(config)
    return MulticastSnoopingProtocol(
        config, predictor=label, predictor_config=predictor_config
    )


def evaluate_runtime_raw(
    trace: Trace,
    label: str,
    config: Optional[SystemConfig] = None,
    predictor_config: Optional[PredictorConfig] = None,
    processor_model: str = "simple",
    max_outstanding: int = 4,
    warmup_fraction: float = 0.25,
) -> RuntimeResult:
    """One label's raw (unnormalized) timing simulation on ``trace``.

    The independent unit of a runtime sweep: per-label cells run this
    in isolation (possibly in parallel processes) and the caller
    normalizes the group afterwards with
    :func:`normalize_runtime_points`.
    """
    config = config if config is not None else SystemConfig()
    protocol = make_protocol(label, config, predictor_config)
    simulator = TimingSimulator(
        config,
        protocol,
        processor_model=processor_model,
        max_outstanding=max_outstanding,
    )
    return simulator.run(trace, warmup_fraction=warmup_fraction)


def normalized_runtime_metrics(
    runtime_ns: float,
    traffic_bytes_per_miss: float,
    directory_runtime_ns: float,
    snooping_traffic_per_miss: float,
) -> "Tuple[float, float]":
    """The paper's normalized pair for one raw runtime result.

    Runtime normalized to directory=100, traffic per miss to
    broadcast-snooping=100.  The single source of these formulas:
    used by :func:`normalize_runtime_points` and by the sweep
    runner's per-label reassembly.
    """
    normalized_runtime = (
        100.0 * runtime_ns / directory_runtime_ns
        if directory_runtime_ns
        else 0.0
    )
    normalized_traffic = (
        100.0 * traffic_bytes_per_miss / snooping_traffic_per_miss
        if snooping_traffic_per_miss
        else 0.0
    )
    return normalized_runtime, normalized_traffic


def normalize_runtime_points(
    labels: Sequence[str],
    raw: "Dict[str, RuntimeResult]",
    workload: str,
) -> List[RuntimePoint]:
    """Normalize raw results (directory=100 runtime, snooping=100 traffic)."""
    directory_runtime = raw[DIRECTORY].runtime_ns
    snooping_traffic = raw[SNOOPING].traffic_bytes_per_miss
    points = []
    for label in labels:
        result = raw[label]
        normalized_runtime, normalized_traffic = (
            normalized_runtime_metrics(
                result.runtime_ns,
                result.traffic_bytes_per_miss,
                directory_runtime,
                snooping_traffic,
            )
        )
        points.append(
            RuntimePoint(
                label=label,
                workload=workload,
                normalized_runtime=normalized_runtime,
                normalized_traffic_per_miss=normalized_traffic,
                runtime_ns=result.runtime_ns,
                traffic_bytes_per_miss=result.traffic_bytes_per_miss,
                indirection_pct=result.indirection_pct,
            )
        )
    return points


def evaluate_runtime(
    trace: Trace,
    config: Optional[SystemConfig] = None,
    predictors: Sequence[str] = (
        "owner",
        "broadcast-if-shared",
        "group",
        "owner-group",
    ),
    predictor_config: Optional[PredictorConfig] = None,
    processor_model: str = "simple",
    max_outstanding: int = 4,
    warmup_fraction: float = 0.25,
) -> List[RuntimePoint]:
    """Produce one Figure 7 (or 8) panel for ``trace``.

    Always includes the directory and snooping baselines; normalizes
    runtime to directory=100 and traffic/miss to snooping=100.
    """
    config = config if config is not None else SystemConfig()
    labels = [DIRECTORY, SNOOPING, *predictors]
    raw: Dict[str, RuntimeResult] = {}
    for label in labels:
        raw[label] = evaluate_runtime_raw(
            trace,
            label,
            config=config,
            predictor_config=predictor_config,
            processor_model=processor_model,
            max_outstanding=max_outstanding,
            warmup_fraction=warmup_fraction,
        )
    return normalize_runtime_points(labels, raw, trace.name)
