"""The Group predictor (paper Table 3, column 3).

Targets sharing among groups smaller than the whole machine: each
entry holds one 2-bit saturating counter per processor plus a 5-bit
rollover counter.  Training increments the counter of the responding
or requesting processor; when the rollover counter wraps, every
per-processor counter is decremented — the explicit "train down"
mechanism that removes processors that stopped touching the block.

Each entry also carries its predicted bitmask, maintained
incrementally as counters cross the threshold, so predictions are O(1)
instead of scanning all per-processor counters on every request.
"""

from __future__ import annotations

from typing import List

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, MEMORY_NODE, NodeId
from repro.predictors.base import DestinationSetPredictor, PredictorTable

_COUNTER_MAX = 3  # 2-bit saturating counters
_ROLLOVER_PERIOD = 32  # 5-bit rollover counter


class _GroupEntry:
    """N 2-bit counters plus a 5-bit rollover counter.

    ``bits`` caches the predicted set (nodes whose counter exceeds the
    threshold) and is kept in sync by the predictor's training code.
    """

    __slots__ = ("counters", "rollover", "bits")

    def __init__(self, n_nodes: int):
        self.counters: List[int] = [0] * n_nodes
        self.rollover = 0
        self.bits = 0

    def predicted_nodes(self) -> List[NodeId]:
        """Processors whose counters exceed the threshold."""
        return [node for node, count in enumerate(self.counters) if count > 1]


class GroupPredictor(DestinationSetPredictor):
    """Predict the recently active sharing group of the block.

    ``counter_bits`` generalises Table 3's 2-bit saturating counters
    (an ablation knob): a node is predicted once its counter exceeds
    half the saturation value, so 2 bits reproduces the paper's
    "Counters[n] > 1" rule exactly.
    """

    policy_name = "group"

    def __init__(
        self,
        n_nodes: int,
        config: PredictorConfig,
        rollover_period: int = _ROLLOVER_PERIOD,
        train_down: bool = True,
        counter_bits: int = 2,
    ):
        super().__init__(n_nodes, config)
        if counter_bits < 1:
            raise ValueError("counter_bits must be at least 1")
        if rollover_period < 1:
            raise ValueError("rollover_period must be at least 1")
        self._rollover_period = rollover_period
        self._train_down = train_down
        self._counter_max = (1 << counter_bits) - 1
        self._threshold = self._counter_max // 2
        self._counter_bits = counter_bits
        self._table: PredictorTable[_GroupEntry] = PredictorTable(
            config, self._make_entry
        )
        self._empty = DestinationSet.empty(n_nodes)

    def _make_entry(self) -> _GroupEntry:
        return _GroupEntry(self.n_nodes)

    # ------------------------------------------------------------------
    def predict_key(
        self, key: int, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        entry = self._table.lookup(key)
        if entry is None:
            return self._empty
        return DestinationSet._from_bits(self.n_nodes, entry.bits)

    def train_response_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        table = self._table
        entry = (
            table.lookup_allocate(key) if allocate else table.lookup(key)
        )
        if entry is None:
            return
        if responder != MEMORY_NODE:
            self._train(entry, responder)

    def train_external_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        # "On each request or response, the predictor increments the
        # corresponding counter" (Section 3.3) — external reads train
        # too, which is what lets Group learn a producer's readers and
        # predict the sharers its next upgrade must invalidate.
        entry = self._table.lookup(key)
        if entry is not None:
            self._train(entry, requester)

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        return self.predict_key(
            self._table.key_for(address, pc), address, pc, access
        )

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self.train_response_key(
            self._table.key_for(address, pc),
            address, pc, responder, access, allocate,
        )

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self.train_external_key(
            self._table.key_for(address, pc),
            address, pc, requester, access,
        )

    # ------------------------------------------------------------------
    def train_external_batch(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
        count: int,
    ) -> None:
        entry = self._table.lookup(key)
        if entry is None:
            return
        if not self._train_down:
            # No decay: ``count`` saturating increments collapse to a
            # clamped add plus one threshold-crossing bits update.
            counters = entry.counters
            before = counters[requester]
            after = before + count
            if after > self._counter_max:
                after = self._counter_max
            counters[requester] = after
            if before <= self._threshold < after:
                entry.bits |= 1 << requester
            return
        # The rollover counter may wrap (triggering train-down decay)
        # mid-batch, so replay the events — inline, with the entry
        # looked up and LRU-touched exactly once for the whole batch.
        for _ in range(count):
            self._train(entry, requester)

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return self._counter_bits * self.n_nodes + 5

    def stats(self) -> dict:
        return {
            "entries": self._table.occupancy(),
            "allocations": self._table.n_allocations,
            "evictions": self._table.n_evictions,
        }

    def _train(self, entry: _GroupEntry, node: NodeId) -> None:
        # COUPLING: inlined copies of this rule live in the fused
        # replay loops (protocols/fused.py: run_group) and the
        # Owner/Group hybrid kernel (owner_group.py: _train_group);
        # mirror any semantic change there.  The columnar equivalence
        # suite compares full table state and catches divergence.
        counters = entry.counters
        count = counters[node]
        if count < self._counter_max:
            counters[node] = count + 1
            if count == self._threshold:
                entry.bits |= 1 << node
        if not self._train_down:
            return  # Stickiness ablation: never decay.
        entry.rollover += 1
        if entry.rollover >= self._rollover_period:
            entry.rollover = 0
            bits = 0
            threshold = self._threshold
            for index, value in enumerate(counters):
                if value > 0:
                    value -= 1
                    counters[index] = value
                if value > threshold:
                    bits |= 1 << index
            entry.bits = bits
