"""The Broadcast-If-Shared predictor (paper Table 3, column 2).

Targets latency: a single 2-bit saturating counter per entry decides
between broadcasting (block predicted shared) and the minimal set.
The counter is incremented on requests and responses from other
processors and decremented on responses from memory.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, MEMORY_NODE, NodeId
from repro.predictors.base import DestinationSetPredictor, PredictorTable

_COUNTER_MAX = 3  # 2-bit saturating counter


@dataclasses.dataclass
class _CounterEntry:
    """One 2-bit saturating counter."""

    counter: int = 0

    def increment(self) -> None:
        if self.counter < _COUNTER_MAX:
            self.counter += 1

    def decrement(self) -> None:
        if self.counter > 0:
            self.counter -= 1


class BroadcastIfSharedPredictor(DestinationSetPredictor):
    """Broadcast when the block appears shared, minimal set otherwise."""

    policy_name = "broadcast-if-shared"

    def __init__(self, n_nodes: int, config: PredictorConfig):
        super().__init__(n_nodes, config)
        self._table: PredictorTable[_CounterEntry] = PredictorTable(
            config, _CounterEntry
        )

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        entry = self._table.lookup(self._table.key_for(address, pc))
        if entry is not None and entry.counter > 1:
            return DestinationSet.broadcast(self.n_nodes)
        return DestinationSet.empty(self.n_nodes)

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        entry = self._entry(address, pc, allocate)
        if entry is None:
            return
        if responder == MEMORY_NODE and not allocate:
            # Memory satisfied the minimal set: block looks unshared.
            entry.decrement()
        else:
            # Another cache responded, or the transaction needed other
            # processors even though memory supplied/acked the data
            # (e.g. an upgrade invalidating sharers): block is shared.
            entry.increment()

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        # "incremented on requests and responses from other
        # processors" (Section 3.3) — any external request signals
        # sharing, reads included.
        entry = self._entry(address, pc, allocate=False)
        if entry is None:
            return
        entry.increment()

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return 2

    def stats(self) -> dict:
        return {
            "entries": self._table.occupancy(),
            "allocations": self._table.n_allocations,
            "evictions": self._table.n_evictions,
        }

    def _entry(
        self, address: Address, pc: Address, allocate: bool
    ) -> Optional[_CounterEntry]:
        key = self._table.key_for(address, pc)
        if allocate:
            return self._table.lookup_allocate(key)
        return self._table.lookup(key)
