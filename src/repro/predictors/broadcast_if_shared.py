"""The Broadcast-If-Shared predictor (paper Table 3, column 2).

Targets latency: a single 2-bit saturating counter per entry decides
between broadcasting (block predicted shared) and the minimal set.
The counter is incremented on requests and responses from other
processors and decremented on responses from memory.
"""

from __future__ import annotations

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, MEMORY_NODE, NodeId
from repro.predictors.base import DestinationSetPredictor, PredictorTable

_COUNTER_MAX = 3  # 2-bit saturating counter


class _CounterEntry:
    """One 2-bit saturating counter."""

    __slots__ = ("counter",)

    def __init__(self) -> None:
        self.counter = 0

    def increment(self) -> None:
        if self.counter < _COUNTER_MAX:
            self.counter += 1

    def decrement(self) -> None:
        if self.counter > 0:
            self.counter -= 1


class BroadcastIfSharedPredictor(DestinationSetPredictor):
    """Broadcast when the block appears shared, minimal set otherwise."""

    policy_name = "broadcast-if-shared"

    def __init__(self, n_nodes: int, config: PredictorConfig):
        super().__init__(n_nodes, config)
        self._table: PredictorTable[_CounterEntry] = PredictorTable(
            config, _CounterEntry
        )
        self._empty = DestinationSet.empty(n_nodes)
        self._broadcast = DestinationSet.broadcast(n_nodes)

    # ------------------------------------------------------------------
    def predict_key(
        self, key: int, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        entry = self._table.lookup(key)
        if entry is not None and entry.counter > 1:
            return self._broadcast
        return self._empty

    def train_response_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        table = self._table
        entry = (
            table.lookup_allocate(key) if allocate else table.lookup(key)
        )
        if entry is None:
            return
        if responder == MEMORY_NODE and not allocate:
            # Memory satisfied the minimal set: block looks unshared.
            if entry.counter > 0:
                entry.counter -= 1
        else:
            # Another cache responded, or the transaction needed other
            # processors even though memory supplied/acked the data
            # (e.g. an upgrade invalidating sharers): block is shared.
            if entry.counter < _COUNTER_MAX:
                entry.counter += 1

    def train_external_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        # "incremented on requests and responses from other
        # processors" (Section 3.3) — any external request signals
        # sharing, reads included.
        entry = self._table.lookup(key)
        if entry is not None and entry.counter < _COUNTER_MAX:
            entry.counter += 1

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        return self.predict_key(
            self._table.key_for(address, pc), address, pc, access
        )

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self.train_response_key(
            self._table.key_for(address, pc),
            address, pc, responder, access, allocate,
        )

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self.train_external_key(
            self._table.key_for(address, pc),
            address, pc, requester, access,
        )

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return 2

    def stats(self) -> dict:
        return {
            "entries": self._table.occupancy(),
            "allocations": self._table.n_allocations,
            "evictions": self._table.n_evictions,
        }
