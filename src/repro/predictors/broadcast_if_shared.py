"""The Broadcast-If-Shared predictor (paper Table 3, column 2).

Targets latency: a single 2-bit saturating counter per entry decides
between broadcasting (block predicted shared) and the minimal set.
The counter is incremented on requests and responses from other
processors and decremented on responses from memory.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.destset import DestinationSet, full_mask
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, MEMORY_NODE, NodeId
from repro.predictors.base import (
    DestinationSetPredictor,
    FusedKernel,
    PredictorTable,
)

_COUNTER_MAX = 3  # 2-bit saturating counter


class _CounterEntry:
    """One 2-bit saturating counter."""

    __slots__ = ("counter",)

    def __init__(self) -> None:
        self.counter = 0

    def increment(self) -> None:
        if self.counter < _COUNTER_MAX:
            self.counter += 1

    def decrement(self) -> None:
        if self.counter > 0:
            self.counter -= 1


class BroadcastIfSharedPredictor(DestinationSetPredictor):
    """Broadcast when the block appears shared, minimal set otherwise."""

    policy_name = "broadcast-if-shared"

    def __init__(self, n_nodes: int, config: PredictorConfig):
        super().__init__(n_nodes, config)
        self._table: PredictorTable[_CounterEntry] = PredictorTable(
            config, _CounterEntry
        )
        self._empty = DestinationSet.empty(n_nodes)
        self._broadcast = DestinationSet.broadcast(n_nodes)

    # ------------------------------------------------------------------
    def predict_key(
        self, key: int, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        entry = self._table.lookup(key)
        if entry is not None and entry.counter > 1:
            return self._broadcast
        return self._empty

    def train_response_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        table = self._table
        entry = (
            table.lookup_allocate(key) if allocate else table.lookup(key)
        )
        if entry is None:
            return
        if responder == MEMORY_NODE and not allocate:
            # Memory satisfied the minimal set: block looks unshared.
            if entry.counter > 0:
                entry.counter -= 1
        else:
            # Another cache responded, or the transaction needed other
            # processors even though memory supplied/acked the data
            # (e.g. an upgrade invalidating sharers): block is shared.
            if entry.counter < _COUNTER_MAX:
                entry.counter += 1

    def train_external_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        # "incremented on requests and responses from other
        # processors" (Section 3.3) — any external request signals
        # sharing, reads included.
        entry = self._table.lookup(key)
        if entry is not None and entry.counter < _COUNTER_MAX:
            entry.counter += 1

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        return self.predict_key(
            self._table.key_for(address, pc), address, pc, access
        )

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self.train_response_key(
            self._table.key_for(address, pc),
            address, pc, responder, access, allocate,
        )

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self.train_external_key(
            self._table.key_for(address, pc),
            address, pc, requester, access,
        )

    # ------------------------------------------------------------------
    def train_external_batch(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
        count: int,
    ) -> None:
        # ``count`` saturating increments collapse to one clamped add.
        entry = self._table.lookup(key)
        if entry is not None:
            total = entry.counter + count
            entry.counter = total if total < _COUNTER_MAX else _COUNTER_MAX

    # ------------------------------------------------------------------
    @classmethod
    def fused_kernel(
        cls, predictors: "Sequence[BroadcastIfSharedPredictor]"
    ) -> Optional[FusedKernel]:
        tables = [p._table for p in predictors]
        entries_l = [t._entries for t in tables]
        stamps_l = [t._stamps for t in tables]
        ticks = [t._tick for t in tables]
        bounded = tables[0]._bounded
        broadcast = full_mask(predictors[0].n_nodes)
        MEM = MEMORY_NODE
        cmax = _COUNTER_MAX
        scratch = [None]

        def predict(requester, key, address, code):
            entry = entries_l[requester].get(key)
            scratch[0] = entry
            if entry is None:
                return 0
            if bounded:
                stamps_l[requester][key] = ticks[requester]
                ticks[requester] += 1
            if entry.counter > 1:
                return broadcast
            return 0

        def train_response(requester, key, address, responder, code,
                           allocate):
            entry = scratch[0]
            if entry is None:
                if not allocate:
                    return
                table = tables[requester]
                table._tick = ticks[requester]
                entry = table.lookup_allocate(key)
                ticks[requester] = table._tick
            if responder == MEM and not allocate:
                if entry.counter > 0:
                    entry.counter -= 1
            elif entry.counter < cmax:
                entry.counter += 1

        def train_external(mask, key, address, requester, code, count):
            while mask:
                low = mask & -mask
                mask ^= low
                node = low.bit_length() - 1
                entry = entries_l[node].get(key)
                if entry is None:
                    continue
                if bounded:
                    stamps_l[node][key] = ticks[node]
                    ticks[node] += 1
                total = entry.counter + count
                entry.counter = total if total < cmax else cmax

        def sync():
            for table, tick in zip(tables, ticks):
                table._tick = tick

        return FusedKernel(
            predict, train_response, train_external, None, sync
        )

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return 2

    def stats(self) -> dict:
        return {
            "entries": self._table.occupancy(),
            "allocations": self._table.n_allocations,
            "evictions": self._table.n_evictions,
        }
