"""Degenerate predictors: the design-space endpoints and the oracle.

- :class:`MinimalPredictor` — always predicts the empty extra set, so
  requests go to the minimal destination set only.  In the multicast
  framework this behaves like a directory protocol's first hop.
- :class:`BroadcastPredictor` — always predicts all processors,
  recreating broadcast snooping.
- :class:`OraclePredictor` — predicts exactly the processors that must
  observe the request, by consulting the live global coherence state.
  Not in the paper; bounds what any predictor could achieve (an
  extension documented in DESIGN.md §6).
"""

from __future__ import annotations

from typing import Optional

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, NodeId
from repro.coherence.state import GlobalCoherenceState
from repro.predictors.base import DestinationSetPredictor


class _StaticPredictor(DestinationSetPredictor):
    """Shared no-training plumbing for the static policies."""

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        return None

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        return None

    def train_external_batch(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
        count: int,
    ) -> None:
        return None


class MinimalPredictor(_StaticPredictor):
    """Always the minimal destination set (directory-like)."""

    policy_name = "minimal"

    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        return DestinationSet.empty(self.n_nodes)


class BroadcastPredictor(_StaticPredictor):
    """Always every processor (broadcast snooping)."""

    policy_name = "broadcast"

    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        return DestinationSet.broadcast(self.n_nodes)


class OraclePredictor(_StaticPredictor):
    """Perfect destination-set prediction (an upper bound).

    The evaluator must attach itself as the oracle's information source
    via :meth:`bind`, and tell it which node it serves via ``node``.
    """

    policy_name = "oracle"

    def __init__(
        self,
        n_nodes: int,
        config: PredictorConfig,
        node: int = 0,
        state: Optional[GlobalCoherenceState] = None,
    ):
        super().__init__(n_nodes, config)
        self.node = node
        self._state = state

    def bind(self, state: GlobalCoherenceState, node: int) -> None:
        """Attach the live global state this oracle peeks at."""
        self._state = state
        self.node = node

    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        if self._state is None:
            raise RuntimeError(
                "OraclePredictor.predict before bind(); the evaluator "
                "must attach the global coherence state"
            )
        owner, sharers = self._state.lookup_fast(address)
        bits = 0
        if owner >= 0 and owner != self.node:
            bits = 1 << owner
        if access is AccessType.GETX:
            bits |= sharers & ~(1 << self.node)
        return DestinationSet._from_bits(self.n_nodes, bits)
