"""Predictor framework: interface and the tagged set-associative table.

Predictors are tagged, set-associative, and (by default) indexed by
data block address (paper Section 3.1); alternative indexings use
macroblock addresses (dropping low-order bits) or the miss PC
(Section 3.4).  On a predictor miss the predictor returns the empty
set, which the protocol unions with the minimal destination set —
reproducing the paper's "on a predictor miss, return the minimal
destination set" default.

Allocation policy (Section 3.1): "the predictor allocates an entry only
if the minimal destination set proves insufficient to directly locate
the requested block" — the ``allocate`` flag on
:meth:`DestinationSetPredictor.train_response` carries that signal.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Callable, Generic, Optional, TypeVar

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, NodeId

EntryT = TypeVar("EntryT")


def indexing_key(
    address: Address, pc: Address, config: PredictorConfig
) -> int:
    """The predictor index key for a miss at ``address`` / ``pc``."""
    if config.use_pc_index:
        return pc
    return address // config.index_granularity


class PredictorTable(Generic[EntryT]):
    """A tagged, set-associative (or unbounded) predictor table.

    Bounded tables use LRU replacement within each set; unbounded
    tables (``config.n_entries is None``) never evict, modelling the
    paper's "unbounded size" sensitivity points.
    """

    def __init__(
        self, config: PredictorConfig, entry_factory: Callable[[], EntryT]
    ):
        self._config = config
        self._entry_factory = entry_factory
        if config.unbounded:
            self._store: OrderedDict = OrderedDict()
            self._sets = None
        else:
            self._sets = [
                OrderedDict() for _ in range(config.n_sets)
            ]
            self._store = None
        self.n_allocations = 0
        self.n_evictions = 0

    # ------------------------------------------------------------------
    @property
    def config(self) -> PredictorConfig:
        return self._config

    def key_for(self, address: Address, pc: Address) -> int:
        """Index key for an access (see :func:`indexing_key`)."""
        return indexing_key(address, pc, self._config)

    def lookup(self, key: int) -> Optional[EntryT]:
        """Return the entry for ``key`` or None; refreshes LRU."""
        table = self._table_for(key)
        entry = table.get(key)
        if entry is not None:
            table.move_to_end(key)
        return entry

    def lookup_allocate(self, key: int) -> EntryT:
        """Return the entry for ``key``, allocating (evicting) if absent."""
        table = self._table_for(key)
        entry = table.get(key)
        if entry is not None:
            table.move_to_end(key)
            return entry
        if (
            self._sets is not None
            and len(table) >= self._config.associativity
        ):
            table.popitem(last=False)
            self.n_evictions += 1
        entry = self._entry_factory()
        table[key] = entry
        self.n_allocations += 1
        return entry

    def occupancy(self) -> int:
        """Number of live entries."""
        if self._store is not None:
            return len(self._store)
        return sum(len(s) for s in self._sets)

    # ------------------------------------------------------------------
    def _table_for(self, key: int) -> OrderedDict:
        if self._store is not None:
            return self._store
        return self._sets[key % self._config.n_sets]


class DestinationSetPredictor(abc.ABC):
    """Interface of a per-node destination-set predictor.

    The returned prediction contains only the *extra* processors the
    predictor nominates; the protocol always unions in the minimal
    destination set (requester + home), as in the paper.
    """

    #: Short name used in reports and the registry.
    policy_name: str = ""

    def __init__(self, n_nodes: int, config: PredictorConfig):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.n_nodes = n_nodes
        self.config = config

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        """Predict extra destinations for a miss at ``address``."""

    @abc.abstractmethod
    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        """Train on the data response for this node's own miss.

        ``responder`` is the supplying node, or ``MEMORY_NODE`` when
        memory responded.  ``allocate`` is True when the minimal
        destination set proved insufficient (the paper's allocation
        filter); when False only existing entries are updated.
        """

    @abc.abstractmethod
    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        """Train on an external coherence request delivered to this node."""

    # ------------------------------------------------------------------
    def train_truth(
        self, address: Address, pc: Address, truth: DestinationSet
    ) -> None:
        """Train with the corrected destination set from the directory.

        Only predictors that learn from directory retries/corrections
        (StickySpatial) implement this; the default is a no-op.
        """

    def entry_bits(self) -> int:
        """Approximate entry size in bits, excluding the tag (Table 3)."""
        return 0

    def stats(self) -> dict:
        """Implementation counters for reports/tests."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_nodes={self.n_nodes})"
