"""Predictor framework: interface and the tagged set-associative table.

Predictors are tagged, set-associative, and (by default) indexed by
data block address (paper Section 3.1); alternative indexings use
macroblock addresses (dropping low-order bits) or the miss PC
(Section 3.4).  On a predictor miss the predictor returns the empty
set, which the protocol unions with the minimal destination set —
reproducing the paper's "on a predictor miss, return the minimal
destination set" default.

Allocation policy (Section 3.1): "the predictor allocates an entry only
if the minimal destination set proves insufficient to directly locate
the requested block" — the ``allocate`` flag on
:meth:`DestinationSetPredictor.train_response` carries that signal.

Hot-path layout: the table stores all entries in a single flat dict
keyed by the full index key (which encodes ``(set, tag)``: the set is
``key % n_sets``), with LRU state carried intrusively as per-entry
access stamps instead of per-set ``OrderedDict`` ordering.  Eviction
picks the minimum stamp within the victim's set, which reproduces
exactly the per-set LRU order of the previous representation.
"""

from __future__ import annotations

import abc
from typing import (
    Callable,
    Dict,
    Generic,
    List,
    NamedTuple,
    Optional,
    Sequence,
    TypeVar,
)

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, NodeId

EntryT = TypeVar("EntryT")


class FusedKernel(NamedTuple):
    """Inlined per-policy kernels for the fused multicast replay loop.

    Built once per run over one protocol's per-node predictors (all of
    the same concrete type) by
    :meth:`DestinationSetPredictor.fused_kernel`.  The closures operate
    directly on the predictors' flat table state, so the hot loop pays
    one call per phase instead of one per (record, node):

    - ``predict(requester, key, address, code) -> int`` — predicted
      extra-destination bitmask,
    - ``train_response(requester, key, address, responder, code,
      allocate)`` — data-response training at the requester,
    - ``train_external(mask, key, address, requester, code, count)``
      — external-request training fanned out to every node in
      ``mask``, applied ``count`` times (a fused batch of identical
      consecutive requests); ``None`` for policies that ignore
      external requests,
    - ``train_truth(requester, address, truth_bits)`` — directory
      feedback; ``None`` for policies that ignore it,
    - ``sync()`` — write cached hot state (e.g. LRU ticks) back to
      the predictor objects after the loop.

    Kernels must leave predictor state *identical* to the equivalent
    sequence of per-record method calls (the columnar equivalence
    suite enforces this), with one sanctioned exception: collapsing
    repeated same-key LRU touches into one preserves relative
    recency order, so absolute tick values may differ.
    """

    predict: Callable[[int, int, int, int], int]
    train_response: Callable[[int, int, int, int, int, int], None]
    train_external: Optional[Callable[[int, int, int, int, int, int], None]]
    train_truth: Optional[Callable[[int, int, int], None]]
    sync: Callable[[], None]


def indexing_key(
    address: Address, pc: Address, config: PredictorConfig
) -> int:
    """The predictor index key for a miss at ``address`` / ``pc``."""
    if config.use_pc_index:
        return pc
    return address // config.index_granularity


class PredictorTable(Generic[EntryT]):
    """A tagged, set-associative (or unbounded) predictor table.

    Bounded tables use LRU replacement within each set; unbounded
    tables (``config.n_entries is None``) never evict, modelling the
    paper's "unbounded size" sensitivity points.
    """

    __slots__ = (
        "_config",
        "_entry_factory",
        "_entries",
        "_stamps",
        "_set_keys",
        "_tick",
        "_bounded",
        "_n_sets",
        "_assoc",
        "n_allocations",
        "n_evictions",
    )

    def __init__(
        self, config: PredictorConfig, entry_factory: Callable[[], EntryT]
    ):
        self._config = config
        self._entry_factory = entry_factory
        #: key -> entry, for bounded and unbounded tables alike.
        self._entries: Dict[int, EntryT] = {}
        self._bounded = not config.unbounded
        if self._bounded:
            self._n_sets = config.n_sets
            self._assoc = config.associativity
            #: key -> last-access stamp (the intrusive LRU state).
            self._stamps: Dict[int, int] = {}
            #: set index -> resident keys (only touched sets allocate).
            self._set_keys: Dict[int, List[int]] = {}
        else:
            self._n_sets = 0
            self._assoc = 0
            self._stamps = {}
            self._set_keys = {}
        self._tick = 0
        self.n_allocations = 0
        self.n_evictions = 0

    # ------------------------------------------------------------------
    @property
    def config(self) -> PredictorConfig:
        return self._config

    def key_for(self, address: Address, pc: Address) -> int:
        """Index key for an access (see :func:`indexing_key`)."""
        return indexing_key(address, pc, self._config)

    def lookup(self, key: int) -> Optional[EntryT]:
        """Return the entry for ``key`` or None; refreshes LRU."""
        entry = self._entries.get(key)
        if entry is not None and self._bounded:
            self._stamps[key] = self._tick
            self._tick += 1
        return entry

    def lookup_allocate(self, key: int) -> EntryT:
        """Return the entry for ``key``, allocating (evicting) if absent."""
        entries = self._entries
        entry = entries.get(key)
        if entry is not None:
            if self._bounded:
                self._stamps[key] = self._tick
                self._tick += 1
            return entry
        if self._bounded:
            set_index = key % self._n_sets
            bucket = self._set_keys.get(set_index)
            if bucket is None:
                bucket = self._set_keys[set_index] = []
            elif len(bucket) >= self._assoc:
                stamps = self._stamps
                victim = min(bucket, key=stamps.__getitem__)
                bucket.remove(victim)
                del entries[victim]
                del stamps[victim]
                self.n_evictions += 1
            bucket.append(key)
            self._stamps[key] = self._tick
            self._tick += 1
        entry = self._entry_factory()
        entries[key] = entry
        self.n_allocations += 1
        return entry

    def occupancy(self) -> int:
        """Number of live entries."""
        return len(self._entries)


class DestinationSetPredictor(abc.ABC):
    """Interface of a per-node destination-set predictor.

    The returned prediction contains only the *extra* processors the
    predictor nominates; the protocol always unions in the minimal
    destination set (requester + home), as in the paper.

    Protocol hot loops call the ``*_key`` variants with the table index
    key precomputed once per request (every per-node predictor of one
    protocol shares the same :class:`PredictorConfig`, hence the same
    key).  The default implementations delegate to the classic
    entry points, so predictors with non-standard indexing (e.g.
    StickySpatial) or no table at all need not override them.  Table
    predictors implement the ``*_key`` variants as the primary code
    path and the classic methods as thin key-computing wrappers;
    subclasses overriding behaviour should override the ``*_key``
    variants.
    """

    #: Short name used in reports and the registry.
    policy_name: str = ""

    def __init__(self, n_nodes: int, config: PredictorConfig):
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.n_nodes = n_nodes
        self.config = config

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        """Predict extra destinations for a miss at ``address``."""

    @abc.abstractmethod
    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        """Train on the data response for this node's own miss.

        ``responder`` is the supplying node, or ``MEMORY_NODE`` when
        memory responded.  ``allocate`` is True when the minimal
        destination set proved insufficient (the paper's allocation
        filter); when False only existing entries are updated.
        """

    @abc.abstractmethod
    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        """Train on an external coherence request delivered to this node."""

    # ------------------------------------------------------------------
    # Hot-path variants with the index key precomputed by the caller.
    # ------------------------------------------------------------------
    def predict_key(
        self, key: int, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        """:meth:`predict` with the table key already computed."""
        return self.predict(address, pc, access)

    def train_response_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        """:meth:`train_response` with the table key already computed."""
        self.train_response(address, pc, responder, access, allocate)

    def train_external_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        """:meth:`train_external` with the table key already computed."""
        self.train_external(address, pc, requester, access)

    def train_external_batch(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
        count: int,
    ) -> None:
        """Apply ``count`` identical external-request training events.

        The multicast replay loop groups consecutive requests with the
        same (table key, requester, access, destination set) into one
        batch and delivers a single call per trained predictor.  Table
        policies override this with count-aware kernels that update
        the entry once; the default replays the per-event call.

        Contract: training this node's predictor must not affect any
        *other* node's predictions (per-node state independence) —
        that is what makes deferring the fan-out to the end of a run
        of identical requests exact.
        """
        for _ in range(count):
            self.train_external_key(key, address, pc, requester, access)

    # ------------------------------------------------------------------
    @classmethod
    def fused_kernel(
        cls, predictors: "Sequence[DestinationSetPredictor]"
    ) -> Optional[FusedKernel]:
        """Build a :class:`FusedKernel` over one protocol's predictors.

        Called with the per-node predictor list when every instance is
        exactly of type ``cls``; returns ``None`` (the default) when
        the policy has no fused implementation, in which case the
        replay loop falls back to per-record method calls.
        """
        return None

    # ------------------------------------------------------------------
    def train_truth(
        self, address: Address, pc: Address, truth: DestinationSet
    ) -> None:
        """Train with the corrected destination set from the directory.

        Only predictors that learn from directory retries/corrections
        (StickySpatial) implement this; the default is a no-op.
        """

    def entry_bits(self) -> int:
        """Approximate entry size in bits, excluding the tag (Table 3)."""
        return 0

    def stats(self) -> dict:
        """Implementation counters for reports/tests."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_nodes={self.n_nodes})"
