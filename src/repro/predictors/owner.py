"""The Owner predictor (paper Table 3, column 1).

Targets pairwise sharing and bandwidth-limited systems: it records the
last processor known to own the block (the last responder or last
external writer) and predicts exactly that one processor — at most one
extra control message per request, independent of system size.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, MEMORY_NODE, NodeId
from repro.predictors.base import DestinationSetPredictor, PredictorTable


@dataclasses.dataclass
class _OwnerEntry:
    """Owner id plus a valid bit (entry size ~ log2(N) + 1 bits)."""

    owner: NodeId = 0
    valid: bool = False


class OwnerPredictor(DestinationSetPredictor):
    """Predict the last known owner of the block."""

    policy_name = "owner"

    def __init__(self, n_nodes: int, config: PredictorConfig):
        super().__init__(n_nodes, config)
        self._table: PredictorTable[_OwnerEntry] = PredictorTable(
            config, _OwnerEntry
        )

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        entry = self._table.lookup(self._table.key_for(address, pc))
        if entry is not None and entry.valid:
            return DestinationSet.of(self.n_nodes, entry.owner)
        return DestinationSet.empty(self.n_nodes)

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        entry = self._entry(address, pc, allocate)
        if entry is None:
            return
        if responder == MEMORY_NODE:
            # Memory responded: the minimal set suffices next time.
            entry.valid = False
        else:
            entry.owner = responder
            entry.valid = True

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        if access is not AccessType.GETX:
            return  # Table 3: requests for shared are ignored.
        entry = self._entry(address, pc, allocate=False)
        if entry is None:
            return
        entry.owner = requester
        entry.valid = True

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return max(1, (self.n_nodes - 1).bit_length()) + 1

    def stats(self) -> dict:
        return {
            "entries": self._table.occupancy(),
            "allocations": self._table.n_allocations,
            "evictions": self._table.n_evictions,
        }

    def _entry(
        self, address: Address, pc: Address, allocate: bool
    ) -> Optional[_OwnerEntry]:
        key = self._table.key_for(address, pc)
        if allocate:
            return self._table.lookup_allocate(key)
        return self._table.lookup(key)
