"""The Owner predictor (paper Table 3, column 1).

Targets pairwise sharing and bandwidth-limited systems: it records the
last processor known to own the block (the last responder or last
external writer) and predicts exactly that one processor — at most one
extra control message per request, independent of system size.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, MEMORY_NODE, NodeId
from repro.predictors.base import (
    DestinationSetPredictor,
    FusedKernel,
    PredictorTable,
)


class _OwnerEntry:
    """Owner id plus a valid bit (entry size ~ log2(N) + 1 bits)."""

    __slots__ = ("owner", "valid")

    def __init__(self) -> None:
        self.owner: NodeId = 0
        self.valid = False


class OwnerPredictor(DestinationSetPredictor):
    """Predict the last known owner of the block."""

    policy_name = "owner"

    def __init__(self, n_nodes: int, config: PredictorConfig):
        super().__init__(n_nodes, config)
        self._table: PredictorTable[_OwnerEntry] = PredictorTable(
            config, _OwnerEntry
        )
        self._empty = DestinationSet.empty(n_nodes)
        self._singletons = tuple(
            DestinationSet.of(n_nodes, node) for node in range(n_nodes)
        )

    # ------------------------------------------------------------------
    def predict_key(
        self, key: int, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        entry = self._table.lookup(key)
        if entry is not None and entry.valid:
            return self._singletons[entry.owner]
        return self._empty

    def train_response_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        table = self._table
        entry = (
            table.lookup_allocate(key) if allocate else table.lookup(key)
        )
        if entry is None:
            return
        if responder == MEMORY_NODE:
            # Memory responded: the minimal set suffices next time.
            entry.valid = False
        else:
            entry.owner = responder
            entry.valid = True

    def train_external_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        if access is not AccessType.GETX:
            return  # Table 3: requests for shared are ignored.
        entry = self._table.lookup(key)
        if entry is None:
            return
        entry.owner = requester
        entry.valid = True

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        return self.predict_key(
            self._table.key_for(address, pc), address, pc, access
        )

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self.train_response_key(
            self._table.key_for(address, pc),
            address, pc, responder, access, allocate,
        )

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self.train_external_key(
            self._table.key_for(address, pc),
            address, pc, requester, access,
        )

    # ------------------------------------------------------------------
    def train_external_batch(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
        count: int,
    ) -> None:
        # Setting the owner is idempotent: ``count`` repeats collapse
        # to one table update (one LRU touch keeps recency order).
        if access is AccessType.GETX:
            self.train_external_key(key, address, pc, requester, access)

    # ------------------------------------------------------------------
    @classmethod
    def fused_kernel(
        cls, predictors: "Sequence[OwnerPredictor]"
    ) -> Optional[FusedKernel]:
        tables = [p._table for p in predictors]
        entries_l = [t._entries for t in tables]
        stamps_l = [t._stamps for t in tables]
        ticks = [t._tick for t in tables]
        bounded = tables[0]._bounded
        MEM = MEMORY_NODE
        scratch = [None]  # entry found by predict, reused by train

        def predict(requester, key, address, code):
            entry = entries_l[requester].get(key)
            scratch[0] = entry
            if entry is None:
                return 0
            if bounded:
                stamps_l[requester][key] = ticks[requester]
                ticks[requester] += 1
            if entry.valid:
                return 1 << entry.owner
            return 0

        def train_response(requester, key, address, responder, code,
                           allocate):
            entry = scratch[0]
            if entry is None:
                if not allocate:
                    return
                table = tables[requester]
                table._tick = ticks[requester]
                entry = table.lookup_allocate(key)
                ticks[requester] = table._tick
            if responder == MEM:
                entry.valid = False
            else:
                entry.owner = responder
                entry.valid = True

        def train_external(mask, key, address, requester, code, count):
            if not code:
                return  # Table 3: requests for shared are ignored.
            while mask:
                low = mask & -mask
                mask ^= low
                node = low.bit_length() - 1
                entry = entries_l[node].get(key)
                if entry is None:
                    continue
                if bounded:
                    stamps_l[node][key] = ticks[node]
                    ticks[node] += 1
                entry.owner = requester
                entry.valid = True

        def sync():
            for table, tick in zip(tables, ticks):
                table._tick = tick

        return FusedKernel(
            predict, train_response, train_external, None, sync
        )

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return max(1, (self.n_nodes - 1).bit_length()) + 1

    def stats(self) -> dict:
        return {
            "entries": self._table.occupancy(),
            "allocations": self._table.n_allocations,
            "evictions": self._table.n_evictions,
        }
