"""The Owner/Group hybrid predictor (paper Section 3.3).

Uses a Group predictor for requests for exclusive and an Owner
predictor for requests for shared.  Because all processors in a stable
sharing set observe all GETX requests, each can track the current
owner, so GETS requests can go to just the predicted owner — cutting
bandwidth below Group while keeping its accuracy on writes.
"""

from __future__ import annotations

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, NodeId
from repro.predictors.base import DestinationSetPredictor
from repro.predictors.group import GroupPredictor
from repro.predictors.owner import OwnerPredictor


class OwnerGroupPredictor(DestinationSetPredictor):
    """Group for GETX, Owner for GETS."""

    policy_name = "owner-group"

    def __init__(self, n_nodes: int, config: PredictorConfig):
        super().__init__(n_nodes, config)
        self._owner = OwnerPredictor(n_nodes, config)
        self._group = GroupPredictor(n_nodes, config)

    # ------------------------------------------------------------------
    def predict_key(
        self, key: int, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        if access is AccessType.GETS:
            return self._owner.predict_key(key, address, pc, access)
        return self._group.predict_key(key, address, pc, access)

    def train_response_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self._owner.train_response_key(
            key, address, pc, responder, access, allocate
        )
        self._group.train_response_key(
            key, address, pc, responder, access, allocate
        )

    def train_external_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self._owner.train_external_key(key, address, pc, requester, access)
        self._group.train_external_key(key, address, pc, requester, access)

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        if access is AccessType.GETS:
            return self._owner.predict(address, pc, access)
        return self._group.predict(address, pc, access)

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self._owner.train_response(address, pc, responder, access, allocate)
        self._group.train_response(address, pc, responder, access, allocate)

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self._owner.train_external(address, pc, requester, access)
        self._group.train_external(address, pc, requester, access)

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return self._owner.entry_bits() + self._group.entry_bits()

    def stats(self) -> dict:
        return {
            "owner": self._owner.stats(),
            "group": self._group.stats(),
        }
