"""The Owner/Group hybrid predictor (paper Section 3.3).

Uses a Group predictor for requests for exclusive and an Owner
predictor for requests for shared.  Because all processors in a stable
sharing set observe all GETX requests, each can track the current
owner, so GETS requests can go to just the predicted owner — cutting
bandwidth below Group while keeping its accuracy on writes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, MEMORY_NODE, NodeId
from repro.predictors.base import DestinationSetPredictor, FusedKernel
from repro.predictors.group import GroupPredictor
from repro.predictors.owner import OwnerPredictor


class OwnerGroupPredictor(DestinationSetPredictor):
    """Group for GETX, Owner for GETS."""

    policy_name = "owner-group"

    def __init__(self, n_nodes: int, config: PredictorConfig):
        super().__init__(n_nodes, config)
        self._owner = OwnerPredictor(n_nodes, config)
        self._group = GroupPredictor(n_nodes, config)

    # ------------------------------------------------------------------
    def predict_key(
        self, key: int, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        if access is AccessType.GETS:
            return self._owner.predict_key(key, address, pc, access)
        return self._group.predict_key(key, address, pc, access)

    def train_response_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self._owner.train_response_key(
            key, address, pc, responder, access, allocate
        )
        self._group.train_response_key(
            key, address, pc, responder, access, allocate
        )

    def train_external_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self._owner.train_external_key(key, address, pc, requester, access)
        self._group.train_external_key(key, address, pc, requester, access)

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        if access is AccessType.GETS:
            return self._owner.predict(address, pc, access)
        return self._group.predict(address, pc, access)

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self._owner.train_response(address, pc, responder, access, allocate)
        self._group.train_response(address, pc, responder, access, allocate)

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self._owner.train_external(address, pc, requester, access)
        self._group.train_external(address, pc, requester, access)

    # ------------------------------------------------------------------
    def train_external_batch(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
        count: int,
    ) -> None:
        self._owner.train_external_batch(
            key, address, pc, requester, access, count
        )
        self._group.train_external_batch(
            key, address, pc, requester, access, count
        )

    # ------------------------------------------------------------------
    @classmethod
    def fused_kernel(
        cls, predictors: "Sequence[OwnerGroupPredictor]"
    ) -> Optional[FusedKernel]:
        owners = [p._owner for p in predictors]
        groups = [p._group for p in predictors]
        if any(type(o) is not OwnerPredictor for o in owners):
            return None
        if any(type(g) is not GroupPredictor for g in groups):
            return None
        g0 = groups[0]
        cmax = g0._counter_max
        thr = g0._threshold
        rperiod = g0._rollover_period
        tdown = g0._train_down
        if any(
            g._counter_max != cmax
            or g._threshold != thr
            or g._rollover_period != rperiod
            or g._train_down != tdown
            for g in groups
        ):
            return None
        o_tables = [o._table for o in owners]
        o_entries = [t._entries for t in o_tables]
        o_stamps = [t._stamps for t in o_tables]
        o_ticks = [t._tick for t in o_tables]
        g_tables = [g._table for g in groups]
        g_entries = [t._entries for t in g_tables]
        g_stamps = [t._stamps for t in g_tables]
        g_ticks = [t._tick for t in g_tables]
        bounded = o_tables[0]._bounded
        MEM = MEMORY_NODE

        def _train_group(entry, node):
            # COUPLING: GroupPredictor._train inlined on the entry —
            # mirror any change there and in protocols/fused.py.
            counters = entry.counters
            count = counters[node]
            if count < cmax:
                counters[node] = count + 1
                if count == thr:
                    entry.bits |= 1 << node
            if not tdown:
                return
            rollover = entry.rollover + 1
            if rollover < rperiod:
                entry.rollover = rollover
                return
            entry.rollover = 0
            bits = 0
            for index, value in enumerate(counters):
                if value > 0:
                    value -= 1
                    counters[index] = value
                if value > thr:
                    bits |= 1 << index
            entry.bits = bits

        def predict(requester, key, address, code):
            # Owner for GETS, Group for GETX (Section 3.3).
            if code:
                entry = g_entries[requester].get(key)
                if entry is None:
                    return 0
                if bounded:
                    g_stamps[requester][key] = g_ticks[requester]
                    g_ticks[requester] += 1
                return entry.bits
            entry = o_entries[requester].get(key)
            if entry is None:
                return 0
            if bounded:
                o_stamps[requester][key] = o_ticks[requester]
                o_ticks[requester] += 1
            if entry.valid:
                return 1 << entry.owner
            return 0

        def train_response(requester, key, address, responder, code,
                           allocate):
            entry = o_entries[requester].get(key)
            if entry is not None:
                if bounded:
                    o_stamps[requester][key] = o_ticks[requester]
                    o_ticks[requester] += 1
            elif allocate:
                table = o_tables[requester]
                table._tick = o_ticks[requester]
                entry = table.lookup_allocate(key)
                o_ticks[requester] = table._tick
            if entry is not None:
                if responder == MEM:
                    entry.valid = False
                else:
                    entry.owner = responder
                    entry.valid = True
            entry = g_entries[requester].get(key)
            if entry is not None:
                if bounded:
                    g_stamps[requester][key] = g_ticks[requester]
                    g_ticks[requester] += 1
            elif allocate:
                table = g_tables[requester]
                table._tick = g_ticks[requester]
                entry = table.lookup_allocate(key)
                g_ticks[requester] = table._tick
            if entry is not None and responder != MEM:
                _train_group(entry, responder)

        def train_external(mask, key, address, requester, code, count):
            while mask:
                low = mask & -mask
                mask ^= low
                node = low.bit_length() - 1
                if code:  # Owner ignores requests for shared.
                    entry = o_entries[node].get(key)
                    if entry is not None:
                        if bounded:
                            o_stamps[node][key] = o_ticks[node]
                            o_ticks[node] += 1
                        entry.owner = requester
                        entry.valid = True
                entry = g_entries[node].get(key)
                if entry is not None:
                    if bounded:
                        g_stamps[node][key] = g_ticks[node]
                        g_ticks[node] += 1
                    for _ in range(count):
                        _train_group(entry, requester)

        def sync():
            for table, tick in zip(o_tables, o_ticks):
                table._tick = tick
            for table, tick in zip(g_tables, g_ticks):
                table._tick = tick

        return FusedKernel(
            predict, train_response, train_external, None, sync
        )

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return self._owner.entry_bits() + self._group.entry_bits()

    def stats(self) -> dict:
        return {
            "owner": self._owner.stats(),
            "group": self._group.stats(),
        }
