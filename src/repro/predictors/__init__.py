"""Destination-set predictors (the paper's core contribution).

Each L2 cache controller owns one predictor.  On a miss the controller
asks the predictor for a destination set; the multicast-snooping
protocol sends the request to the predicted set unioned with the
minimal set (requester + home).  Predictors train on two cues
(Section 3.2): data responses (carrying the responder's identity) and
external coherence requests delivered to this node.

Policies (Table 3):

- :class:`OwnerPredictor` — predict just the last owner (bandwidth).
- :class:`BroadcastIfSharedPredictor` — broadcast when a 2-bit counter
  says the block is shared (latency).
- :class:`GroupPredictor` — per-processor 2-bit counters with a 5-bit
  rollover "train-down" mechanism (balanced).
- :class:`OwnerGroupPredictor` — Group for GETX, Owner for GETS.
- :class:`StickySpatialPredictor` — the original multicast-snooping
  predictor of Bilir et al. (prior work baseline).
- :class:`MinimalPredictor` / :class:`BroadcastPredictor` — the
  directory-like and snooping-like degenerate policies.
- :class:`OraclePredictor` — perfect prediction (a bound, not in the
  paper's figures).
"""

from repro.predictors.adaptive import BandwidthAdaptivePredictor
from repro.predictors.base import (
    DestinationSetPredictor,
    PredictorTable,
    indexing_key,
)
from repro.predictors.owner import OwnerPredictor
from repro.predictors.broadcast_if_shared import BroadcastIfSharedPredictor
from repro.predictors.group import GroupPredictor
from repro.predictors.owner_group import OwnerGroupPredictor
from repro.predictors.sticky_spatial import StickySpatialPredictor
from repro.predictors.static import (
    BroadcastPredictor,
    MinimalPredictor,
    OraclePredictor,
)
from repro.predictors.registry import PREDICTOR_NAMES, create_predictor

__all__ = [
    "BandwidthAdaptivePredictor",
    "BroadcastIfSharedPredictor",
    "BroadcastPredictor",
    "DestinationSetPredictor",
    "GroupPredictor",
    "MinimalPredictor",
    "OraclePredictor",
    "OwnerGroupPredictor",
    "OwnerPredictor",
    "PREDICTOR_NAMES",
    "PredictorTable",
    "StickySpatialPredictor",
    "create_predictor",
    "indexing_key",
]
