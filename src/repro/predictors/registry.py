"""Predictor registry: name -> factory."""

from __future__ import annotations

from typing import Callable, Dict

from repro.common.params import PredictorConfig
from repro.predictors.adaptive import BandwidthAdaptivePredictor
from repro.predictors.base import DestinationSetPredictor
from repro.predictors.broadcast_if_shared import BroadcastIfSharedPredictor
from repro.predictors.group import GroupPredictor
from repro.predictors.owner import OwnerPredictor
from repro.predictors.owner_group import OwnerGroupPredictor
from repro.predictors.static import (
    BroadcastPredictor,
    MinimalPredictor,
    OraclePredictor,
)
from repro.predictors.sticky_spatial import StickySpatialPredictor

PredictorFactory = Callable[[int, PredictorConfig], DestinationSetPredictor]

_REGISTRY: Dict[str, PredictorFactory] = {
    cls.policy_name: cls
    for cls in (
        BandwidthAdaptivePredictor,
        OwnerPredictor,
        BroadcastIfSharedPredictor,
        GroupPredictor,
        OwnerGroupPredictor,
        StickySpatialPredictor,
        MinimalPredictor,
        BroadcastPredictor,
        OraclePredictor,
    )
}

#: The paper's four proposed policies, in Table 3 order.
PAPER_POLICIES = ("owner", "broadcast-if-shared", "group", "owner-group")

#: All registered policy names.
PREDICTOR_NAMES = tuple(sorted(_REGISTRY))


def create_predictor(
    name: str, n_nodes: int, config: PredictorConfig
) -> DestinationSetPredictor:
    """Instantiate the predictor registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown predictor {name!r}; known: {known}")
    return factory(n_nodes, config)
