"""Bandwidth-adaptive hybrid predictor (extension, not in the paper).

The paper's related work cites bandwidth-adaptive snooping (Martin et
al., HPCA 2002): broadcast when bandwidth is plentiful, conserve when
it is not.  This predictor composes the paper's own two extreme
policies the same way: it behaves like Broadcast-If-Shared while its
recent request-message budget is undershot and falls back to Owner
when it is overshot, producing a predictor whose position on the
latency/bandwidth curve is *tunable* via a single budget knob.

The controller tracks an exponentially weighted moving average of the
destination-set sizes it has produced; each prediction picks the
aggressive or conservative sub-policy by comparing the average to
``budget_messages_per_miss``.
"""

from __future__ import annotations

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, NodeId
from repro.predictors.base import DestinationSetPredictor, indexing_key
from repro.predictors.broadcast_if_shared import BroadcastIfSharedPredictor
from repro.predictors.owner import OwnerPredictor


class BandwidthAdaptivePredictor(DestinationSetPredictor):
    """Broadcast-If-Shared under budget, Owner over budget."""

    policy_name = "bandwidth-adaptive"

    #: EWMA smoothing factor for the recent set-size estimate.
    SMOOTHING = 0.02

    def __init__(
        self,
        n_nodes: int,
        config: PredictorConfig,
        budget_messages_per_miss: float = 6.0,
    ):
        super().__init__(n_nodes, config)
        if budget_messages_per_miss <= 0:
            raise ValueError("budget_messages_per_miss must be positive")
        self.budget = budget_messages_per_miss
        self._aggressive = BroadcastIfSharedPredictor(n_nodes, config)
        self._conservative = OwnerPredictor(n_nodes, config)
        self._recent_set_size = 0.0
        self.n_aggressive = 0
        self.n_conservative = 0

    # ------------------------------------------------------------------
    def predict_key(
        self, key: int, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        if self._recent_set_size <= self.budget:
            prediction = self._aggressive.predict_key(
                key, address, pc, access
            )
            self.n_aggressive += 1
        else:
            prediction = self._conservative.predict_key(
                key, address, pc, access
            )
            self.n_conservative += 1
        self._recent_set_size += self.SMOOTHING * (
            prediction.count() - self._recent_set_size
        )
        return prediction

    def train_response_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self._aggressive.train_response_key(
            key, address, pc, responder, access, allocate
        )
        self._conservative.train_response_key(
            key, address, pc, responder, access, allocate
        )

    def train_external_key(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self._aggressive.train_external_key(
            key, address, pc, requester, access
        )
        self._conservative.train_external_key(
            key, address, pc, requester, access
        )

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        return self.predict_key(
            indexing_key(address, pc, self.config), address, pc, access
        )

    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        self._aggressive.train_response(
            address, pc, responder, access, allocate
        )
        self._conservative.train_response(
            address, pc, responder, access, allocate
        )

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        self._aggressive.train_external(address, pc, requester, access)
        self._conservative.train_external(address, pc, requester, access)

    # ------------------------------------------------------------------
    def train_external_batch(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
        count: int,
    ) -> None:
        self._aggressive.train_external_batch(
            key, address, pc, requester, access, count
        )
        self._conservative.train_external_batch(
            key, address, pc, requester, access, count
        )

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return (
            self._aggressive.entry_bits()
            + self._conservative.entry_bits()
        )

    def stats(self) -> dict:
        return {
            "aggressive_predictions": self.n_aggressive,
            "conservative_predictions": self.n_conservative,
            "recent_set_size": self._recent_set_size,
        }
