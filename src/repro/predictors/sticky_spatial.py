"""Sticky-Spatial(1) — the original multicast-snooping predictor.

Prior-work baseline from Bilir et al. [7], as described in the paper's
Section 3.5:

- **Sticky**: trains only up (set union); the destination set shrinks
  only when an entry is replaced.
- **Spatial(1)**: predictions aggregate the entry at the block's index
  with its two neighbouring entries, exploiting spatial locality the
  crude way (and forcing a direct-mapped organisation).
- Predictions ignore the tag, so aliasing blocks pollute each other.
- Trains on responses and retries from the memory controller — here
  modelled by :meth:`train_truth`, which receives the corrected
  destination set the directory computes when it handles the request.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.common.destset import DestinationSet
from repro.common.params import PredictorConfig
from repro.common.types import AccessType, Address, NodeId
from repro.predictors.base import DestinationSetPredictor, FusedKernel


class StickySpatialPredictor(DestinationSetPredictor):
    """Direct-mapped, train-up-only, neighbour-aggregating predictor."""

    policy_name = "sticky-spatial"

    #: The original predictor indexes by 64 B cache block and derives
    #: spatial information from neighbouring entries; macroblock
    #: indexing is precisely the improvement the paper introduces over
    #: it, so this baseline ignores ``config.index_granularity``.
    BLOCK_GRANULARITY = 64

    def __init__(self, n_nodes: int, config: PredictorConfig):
        super().__init__(n_nodes, config)
        # Entries: index -> (tag, mask-bits).  Direct mapped: the
        # associativity in ``config`` is ignored (Section 3.5 notes the
        # scheme restricts implementations to direct mapping).
        self._entries: Dict[int, Tuple[int, int]] = {}
        self.n_allocations = 0
        self.n_replacements = 0

    # ------------------------------------------------------------------
    def predict(
        self, address: Address, pc: Address, access: AccessType
    ) -> DestinationSet:
        block_number = address // self.BLOCK_GRANULARITY
        bits = 0
        for neighbour in (block_number - 1, block_number, block_number + 1):
            entry = self._entries.get(self._index(neighbour))
            if entry is not None:
                # Predictions ignore the tag (Section 3.5).
                bits |= entry[1]
        return DestinationSet(self.n_nodes, bits)

    def train_truth(
        self, address: Address, pc: Address, truth: DestinationSet
    ) -> None:
        """Train up from the directory's corrected destination set."""
        block_number = address // self.BLOCK_GRANULARITY
        index = self._index(block_number)
        entry = self._entries.get(index)
        if entry is None:
            self._entries[index] = (block_number, truth.bits)
            self.n_allocations += 1
        elif entry[0] == block_number:
            self._entries[index] = (block_number, entry[1] | truth.bits)
        else:
            # Replacement: the only mechanism that shrinks a set.
            self._entries[index] = (block_number, truth.bits)
            self.n_replacements += 1

    # StickySpatial learns exclusively from directory feedback.
    def train_response(
        self,
        address: Address,
        pc: Address,
        responder: NodeId,
        access: AccessType,
        allocate: bool,
    ) -> None:
        return None

    def train_external(
        self,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
    ) -> None:
        return None

    def train_external_batch(
        self,
        key: int,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
        count: int,
    ) -> None:
        return None  # StickySpatial learns only from the directory.

    # ------------------------------------------------------------------
    @classmethod
    def fused_kernel(
        cls, predictors: "Sequence[StickySpatialPredictor]"
    ) -> Optional[FusedKernel]:
        granularity = cls.BLOCK_GRANULARITY
        entries_l = [p._entries for p in predictors]
        config = predictors[0].config
        if any(p.config != config for p in predictors):
            return None
        unbounded = config.unbounded
        n_entries = None if unbounded else config.n_entries

        def predict(requester, key, address, code):
            block_number = address // granularity
            entries = entries_l[requester]
            bits = 0
            for neighbour in (
                block_number - 1, block_number, block_number + 1
            ):
                entry = entries.get(
                    neighbour if unbounded else neighbour % n_entries
                )
                if entry is not None:
                    bits |= entry[1]
            return bits

        def train_response(requester, key, address, responder, code,
                           allocate):
            return None  # Learns exclusively from directory feedback.

        def train_truth(requester, address, truth_bits):
            block_number = address // granularity
            index = (
                block_number if unbounded else block_number % n_entries
            )
            entries = entries_l[requester]
            entry = entries.get(index)
            if entry is None:
                entries[index] = (block_number, truth_bits)
                predictors[requester].n_allocations += 1
            elif entry[0] == block_number:
                entries[index] = (block_number, entry[1] | truth_bits)
            else:
                entries[index] = (block_number, truth_bits)
                predictors[requester].n_replacements += 1

        def sync():
            return None

        return FusedKernel(
            predict, train_response, None, train_truth, sync
        )

    # ------------------------------------------------------------------
    def entry_bits(self) -> int:
        return self.n_nodes

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "allocations": self.n_allocations,
            "replacements": self.n_replacements,
        }

    def _index(self, block_number: int) -> int:
        if self.config.unbounded:
            return block_number
        return block_number % self.config.n_entries
