"""Trace file round-tripping.

Traces are stored as a simple line-oriented text format so they are
diffable and greppable::

    # repro-trace v1 n_processors=16 name=apache
    <address-hex> <pc-hex> <requester> <GETS|GETX> [instructions]

One record per line; the optional fifth field is the instruction gap
since the requester's previous miss.  Comment lines start with ``#``.

Parsing writes straight into the trace's columns.  Field validation is
on by default for user-supplied files; internal callers that read files
they wrote themselves (the persistent trace cache) pass
``trusted=True`` to skip the per-record range checks.
"""

from __future__ import annotations

import os
from typing import Union

from repro.trace.trace import Trace

_HEADER_PREFIX = "# repro-trace v1"

_ACCESS_CODES = {"GETS": 0, "GETX": 1}
_ACCESS_NAMES = ("GETS", "GETX")

PathLike = Union[str, "os.PathLike[str]"]


def write_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the text format."""
    names = _ACCESS_NAMES
    with open(path, "w", encoding="ascii") as handle:
        handle.write(
            f"{_HEADER_PREFIX} n_processors={trace.n_processors} "
            f"name={trace.name or '-'}\n"
        )
        for address, pc, requester, code, instructions in zip(
            trace.addresses,
            trace.pcs,
            trace.requesters,
            trace.accesses,
            trace.instructions,
        ):
            handle.write(
                f"{address:x} {pc:x} {requester} {names[code]} "
                f"{instructions}\n"
            )


def read_trace(path: PathLike, trusted: bool = False) -> Trace:
    """Read a trace written by :func:`write_trace`.

    ``trusted=True`` skips per-record validation; use it only for files
    this package wrote itself (e.g. trace-cache entries).
    """
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        n_processors, name = _parse_header(header, path)
        trace = Trace(n_processors=n_processors, name=name)
        append = trace.append_fields
        codes = _ACCESS_CODES
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (4, 5):
                raise ValueError(
                    f"{path}:{line_number}: expected 4 or 5 fields"
                )
            try:
                address = int(parts[0], 16)
                pc = int(parts[1], 16)
                requester = int(parts[2])
                code = codes[parts[3]]
                instructions = int(parts[4]) if len(parts) == 5 else 0
            except KeyError:
                raise ValueError(
                    f"{path}:{line_number}: bad access kind {parts[3]!r}"
                ) from None
            except ValueError as exc:
                raise ValueError(f"{path}:{line_number}: {exc}") from exc
            if not trusted:
                _validate_fields(
                    address, pc, requester, instructions,
                    n_processors, path, line_number,
                )
            append(address, pc, requester, code, instructions)
    return trace


def _validate_fields(
    address: int,
    pc: int,
    requester: int,
    instructions: int,
    n_processors: int,
    path: PathLike,
    line_number: int,
) -> None:
    if address < 0 or pc < 0 or instructions < 0:
        raise ValueError(
            f"{path}:{line_number}: negative field in record"
        )
    if not 0 <= requester < n_processors:
        raise ValueError(
            f"{path}:{line_number}: requester {requester} outside "
            f"[0, {n_processors})"
        )


def _parse_header(header: str, path: PathLike) -> "tuple[int, str]":
    if not header.startswith(_HEADER_PREFIX):
        raise ValueError(f"{path}: not a repro-trace file (bad header)")
    fields = dict(
        part.split("=", 1)
        for part in header[len(_HEADER_PREFIX):].split()
        if "=" in part
    )
    try:
        n_processors = int(fields["n_processors"])
    except (KeyError, ValueError) as exc:
        raise ValueError(f"{path}: malformed trace header") from exc
    name = fields.get("name", "-")
    return n_processors, "" if name == "-" else name
