"""Trace file round-tripping.

Traces are stored as a simple line-oriented text format so they are
diffable and greppable::

    # repro-trace v1 n_processors=16 name=apache
    <address-hex> <pc-hex> <requester> <GETS|GETX> [instructions]

One record per line; the optional fifth field is the instruction gap
since the requester's previous miss.  Comment lines start with ``#``.

Parsing writes straight into the trace's columns.  Field validation is
on by default for user-supplied files; internal callers that read files
they wrote themselves (the persistent trace cache) pass
``trusted=True`` to skip the per-record range checks.

A binary companion format (:func:`write_trace_binary` /
:func:`read_trace_binary`) dumps the trace's flat columns verbatim
behind a JSON header.  Loading it is two orders of magnitude faster
than parsing text — the persistent trace cache stores both, so
per-label sweep cells (which each load their trace) pay milliseconds,
not a re-parse, while the text file stays diffable and greppable.
"""

from __future__ import annotations

import json
import os
import sys
from array import array
from typing import Union

from repro.trace.trace import Trace

_HEADER_PREFIX = "# repro-trace v1"

_BINARY_MAGIC = b"#repro-trace-bin v1\n"

#: Column order and typecodes in the binary format.
_BINARY_COLUMNS = (
    ("addresses", "q"),
    ("pcs", "q"),
    ("requesters", "i"),
    ("accesses", "b"),
    ("instructions", "q"),
)

_ACCESS_CODES = {"GETS": 0, "GETX": 1}
_ACCESS_NAMES = ("GETS", "GETX")

PathLike = Union[str, "os.PathLike[str]"]


def write_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the text format."""
    names = _ACCESS_NAMES
    with open(path, "w", encoding="ascii") as handle:
        handle.write(
            f"{_HEADER_PREFIX} n_processors={trace.n_processors} "
            f"name={trace.name or '-'}\n"
        )
        for address, pc, requester, code, instructions in zip(
            trace.addresses,
            trace.pcs,
            trace.requesters,
            trace.accesses,
            trace.instructions,
        ):
            handle.write(
                f"{address:x} {pc:x} {requester} {names[code]} "
                f"{instructions}\n"
            )


def write_trace_binary(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` as raw column bytes behind a JSON header."""
    columns = [
        getattr(trace, name) for name, _ in _BINARY_COLUMNS
    ]
    header = {
        "n_processors": trace.n_processors,
        "name": trace.name,
        "records": len(trace),
        "byteorder": sys.byteorder,
        "itemsizes": [column.itemsize for column in columns],
    }
    with open(path, "wb") as handle:
        handle.write(_BINARY_MAGIC)
        handle.write(json.dumps(header, sort_keys=True).encode("ascii"))
        handle.write(b"\n")
        for column in columns:
            handle.write(column.tobytes())


def read_trace_binary(path: PathLike) -> Trace:
    """Read a trace written by :func:`write_trace_binary`.

    Raises ``ValueError`` for malformed files or layout mismatches
    (callers fall back to the text format).  Binary loads are trusted:
    only this package writes the format.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(_BINARY_MAGIC))
        if magic != _BINARY_MAGIC:
            raise ValueError(f"{path}: not a binary repro-trace file")
        header_line = handle.readline()
        try:
            header = json.loads(header_line.decode("ascii"))
            n_processors = header["n_processors"]
            name = header["name"]
            records = header["records"]
            byteorder = header["byteorder"]
            itemsizes = header["itemsizes"]
        except (KeyError, TypeError, UnicodeDecodeError,
                json.JSONDecodeError) as exc:
            raise ValueError(f"{path}: bad binary header ({exc})")
        if (
            not isinstance(n_processors, int)
            or not isinstance(records, int)
            or records < 0
            or n_processors <= 0
            or not isinstance(name, str)
            or not isinstance(itemsizes, list)
            or len(itemsizes) != len(_BINARY_COLUMNS)
            or not all(isinstance(size, int) for size in itemsizes)
        ):
            raise ValueError(f"{path}: bad binary header field types")
        columns = []
        for (field, typecode), itemsize in zip(_BINARY_COLUMNS, itemsizes):
            column = array(typecode)
            if column.itemsize != itemsize:
                raise ValueError(
                    f"{path}: {field} itemsize {itemsize} does not "
                    f"match this platform"
                )
            payload = handle.read(records * itemsize)
            if len(payload) != records * itemsize:
                raise ValueError(f"{path}: truncated {field} column")
            column.frombytes(payload)
            if byteorder != sys.byteorder:
                column.byteswap()
            columns.append(column)
        if handle.read(1):
            raise ValueError(f"{path}: trailing bytes after columns")
    return Trace._from_columns(*columns, n_processors, name)


def read_trace(path: PathLike, trusted: bool = False) -> Trace:
    """Read a trace written by :func:`write_trace`.

    ``trusted=True`` skips per-record validation; use it only for files
    this package wrote itself (e.g. trace-cache entries).
    """
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        n_processors, name = _parse_header(header, path)
        trace = Trace(n_processors=n_processors, name=name)
        append = trace.append_fields
        codes = _ACCESS_CODES
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (4, 5):
                raise ValueError(
                    f"{path}:{line_number}: expected 4 or 5 fields"
                )
            try:
                address = int(parts[0], 16)
                pc = int(parts[1], 16)
                requester = int(parts[2])
                code = codes[parts[3]]
                instructions = int(parts[4]) if len(parts) == 5 else 0
            except KeyError:
                raise ValueError(
                    f"{path}:{line_number}: bad access kind {parts[3]!r}"
                ) from None
            except ValueError as exc:
                raise ValueError(f"{path}:{line_number}: {exc}") from exc
            if not trusted:
                _validate_fields(
                    address, pc, requester, instructions,
                    n_processors, path, line_number,
                )
            append(address, pc, requester, code, instructions)
    return trace


def _validate_fields(
    address: int,
    pc: int,
    requester: int,
    instructions: int,
    n_processors: int,
    path: PathLike,
    line_number: int,
) -> None:
    if address < 0 or pc < 0 or instructions < 0:
        raise ValueError(
            f"{path}:{line_number}: negative field in record"
        )
    if not 0 <= requester < n_processors:
        raise ValueError(
            f"{path}:{line_number}: requester {requester} outside "
            f"[0, {n_processors})"
        )


def _parse_header(header: str, path: PathLike) -> "tuple[int, str]":
    if not header.startswith(_HEADER_PREFIX):
        raise ValueError(f"{path}: not a repro-trace file (bad header)")
    fields = dict(
        part.split("=", 1)
        for part in header[len(_HEADER_PREFIX):].split()
        if "=" in part
    )
    try:
        n_processors = int(fields["n_processors"])
    except (KeyError, ValueError) as exc:
        raise ValueError(f"{path}: malformed trace header") from exc
    name = fields.get("name", "-")
    return n_processors, "" if name == "-" else name
