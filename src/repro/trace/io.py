"""Trace file round-tripping.

Traces are stored as a simple line-oriented text format so they are
diffable and greppable::

    # repro-trace v1 n_processors=16 name=apache
    <address-hex> <pc-hex> <requester> <GETS|GETX> [instructions]

One record per line; the optional fifth field is the instruction gap
since the requester's previous miss.  Comment lines start with ``#``.
"""

from __future__ import annotations

import os
from typing import Union

from repro.common.types import AccessType
from repro.trace.record import TraceRecord
from repro.trace.trace import Trace

_HEADER_PREFIX = "# repro-trace v1"

PathLike = Union[str, "os.PathLike[str]"]


def write_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the text format."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(
            f"{_HEADER_PREFIX} n_processors={trace.n_processors} "
            f"name={trace.name or '-'}\n"
        )
        for record in trace:
            handle.write(
                f"{record.address:x} {record.pc:x} "
                f"{record.requester} {record.access.value} "
                f"{record.instructions}\n"
            )


def read_trace(path: PathLike) -> Trace:
    """Read a trace written by :func:`write_trace`."""
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        n_processors, name = _parse_header(header, path)
        trace = Trace(n_processors=n_processors, name=name)
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            trace.append(_parse_record(line, path, line_number))
    return trace


def _parse_header(header: str, path: PathLike) -> tuple[int, str]:
    if not header.startswith(_HEADER_PREFIX):
        raise ValueError(f"{path}: not a repro-trace file (bad header)")
    fields = dict(
        part.split("=", 1)
        for part in header[len(_HEADER_PREFIX):].split()
        if "=" in part
    )
    try:
        n_processors = int(fields["n_processors"])
    except (KeyError, ValueError) as exc:
        raise ValueError(f"{path}: malformed trace header") from exc
    name = fields.get("name", "-")
    return n_processors, "" if name == "-" else name


def _parse_record(line: str, path: PathLike, line_number: int) -> TraceRecord:
    parts = line.split()
    if len(parts) not in (4, 5):
        raise ValueError(f"{path}:{line_number}: expected 4 or 5 fields")
    try:
        return TraceRecord(
            address=int(parts[0], 16),
            pc=int(parts[1], 16),
            requester=int(parts[2]),
            access=AccessType(parts[3]),
            instructions=int(parts[4]) if len(parts) == 5 else 0,
        )
    except ValueError as exc:
        raise ValueError(f"{path}:{line_number}: {exc}") from exc
