"""Trace file round-tripping.

Traces are stored as a simple line-oriented text format so they are
diffable and greppable::

    # repro-trace v1 n_processors=16 name=apache
    <address-hex> <pc-hex> <requester> <GETS|GETX> [instructions]

One record per line; the optional fifth field is the instruction gap
since the requester's previous miss.  Comment lines start with ``#``.

Parsing writes straight into the trace's columns.  Field validation is
on by default for user-supplied files; internal callers that read files
they wrote themselves (the persistent trace cache) pass
``trusted=True`` to skip the per-record range checks.

A binary companion format (:func:`write_trace_binary` /
:func:`read_trace_binary`) dumps the trace's flat columns verbatim
behind a JSON header.  Loading it is two orders of magnitude faster
than parsing text — the persistent trace cache stores both, so
per-label sweep cells (which each load their trace) pay milliseconds,
not a re-parse, while the text file stays diffable and greppable.

The v2 columnar container (:func:`write_trace_v2` /
:func:`read_trace_v2`, the ``.bin2`` sidecar) goes further: a JSON
header carries an explicit offset table and every column lives in its
own 64-byte-aligned raw segment, so loads are *zero-copy* — the file
is ``mmap``-ed and each column becomes a read-only ``memoryview``
over the mapping (see :meth:`Trace.frozen`).  Alongside the five base
columns it persists the derived replay columns
(:mod:`repro.trace.columns` otherwise recomputes them per process):
block/macroblock keys, predictor index keys, home nodes, and the
minimal/requester/not-requester bitmasks for one reference
configuration.  Because mappings share the OS page cache, every
same-host worker replaying one corpus holds a single physical copy.
Set ``REPRO_MMAP=0`` to fall back to copying loads (byte-identical
results; the columns are then views over a private ``bytes`` copy).
"""

from __future__ import annotations

import json
import mmap
import os
import sys
from array import array
from typing import Optional, Union

from repro.trace.trace import Trace

_HEADER_PREFIX = "# repro-trace v1"

_BINARY_MAGIC = b"#repro-trace-bin v1\n"

#: Column order and typecodes in the binary format.
_BINARY_COLUMNS = (
    ("addresses", "q"),
    ("pcs", "q"),
    ("requesters", "i"),
    ("accesses", "b"),
    ("instructions", "q"),
)

_ACCESS_CODES = {"GETS": 0, "GETX": 1}
_ACCESS_NAMES = ("GETS", "GETX")

_V2_MAGIC = b"#repro-trace-bin v2\n"

#: Column segments start on this boundary (cache-line aligned, and a
#: safe alignment for any vectorized consumer of the mapping).
_V2_ALIGNMENT = 64

#: Fixed per-typecode item sizes of the v2 format (the format is only
#: defined for these standard widths; ``array`` matches them on every
#: supported platform and the loader re-checks).
_V2_ITEMSIZES = {"q": 8, "i": 4, "b": 1}

#: Derived replay segments persisted alongside the base columns, in
#: file order.  All int64: the bitmask columns require the writing
#: config's node count to fit a signed 64-bit lane (the writer skips
#: derived persistence otherwise) and the others are int64 already.
_V2_DERIVED_SEGMENTS = (
    "blocks", "mblocks", "keys", "homes",
    "minimals", "reqbits", "notreqs",
)

#: Environment variable disabling the mmap load path (``0``/``false``
#: /``no``/``off``): ``read_trace_v2`` then reads the file into a
#: private ``bytes`` copy and builds the same read-only views over
#: that, so results are byte-identical either way.
MMAP_ENV = "REPRO_MMAP"

#: Largest node count whose derived bitmask columns fit int64
#: segments (mirrors the numpy tier's single-lane envelope).
_MAX_DERIVED_NODES = 62

PathLike = Union[str, "os.PathLike[str]"]


def mmap_enabled() -> bool:
    """Whether zero-copy mapped loads are enabled (default yes)."""
    return os.environ.get(MMAP_ENV, "").strip().lower() not in (
        "0", "false", "no", "off"
    )


def write_trace(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` to ``path`` in the text format."""
    names = _ACCESS_NAMES
    with open(path, "w", encoding="ascii") as handle:
        handle.write(
            f"{_HEADER_PREFIX} n_processors={trace.n_processors} "
            f"name={trace.name or '-'}\n"
        )
        for address, pc, requester, code, instructions in zip(
            trace.addresses,
            trace.pcs,
            trace.requesters,
            trace.accesses,
            trace.instructions,
        ):
            handle.write(
                f"{address:x} {pc:x} {requester} {names[code]} "
                f"{instructions}\n"
            )


def write_trace_binary(trace: Trace, path: PathLike) -> None:
    """Write ``trace`` as raw column bytes behind a JSON header."""
    columns = [
        getattr(trace, name) for name, _ in _BINARY_COLUMNS
    ]
    header = {
        "n_processors": trace.n_processors,
        "name": trace.name,
        "records": len(trace),
        "byteorder": sys.byteorder,
        "itemsizes": [column.itemsize for column in columns],
    }
    with open(path, "wb") as handle:
        handle.write(_BINARY_MAGIC)
        handle.write(json.dumps(header, sort_keys=True).encode("ascii"))
        handle.write(b"\n")
        for column in columns:
            handle.write(column.tobytes())


def read_trace_binary(path: PathLike) -> Trace:
    """Read a trace written by :func:`write_trace_binary`.

    Raises ``ValueError`` for malformed files or layout mismatches
    (callers fall back to the text format).  Binary loads are trusted:
    only this package writes the format.
    """
    with open(path, "rb") as handle:
        magic = handle.read(len(_BINARY_MAGIC))
        if magic != _BINARY_MAGIC:
            raise ValueError(f"{path}: not a binary repro-trace file")
        header_line = handle.readline()
        try:
            header = json.loads(header_line.decode("ascii"))
            n_processors = header["n_processors"]
            name = header["name"]
            records = header["records"]
            byteorder = header["byteorder"]
            itemsizes = header["itemsizes"]
        except (KeyError, TypeError, UnicodeDecodeError,
                json.JSONDecodeError) as exc:
            raise ValueError(f"{path}: bad binary header ({exc})")
        if (
            not isinstance(n_processors, int)
            or not isinstance(records, int)
            or records < 0
            or n_processors <= 0
            or not isinstance(name, str)
            or not isinstance(itemsizes, list)
            or len(itemsizes) != len(_BINARY_COLUMNS)
            or not all(isinstance(size, int) for size in itemsizes)
        ):
            raise ValueError(f"{path}: bad binary header field types")
        # Validate the advertised layout against the actual file size
        # up front (one fstat) so truncated or torn files are rejected
        # before any column bytes are read, instead of being
        # discovered column-by-column mid-load.
        _check_file_size(
            handle, path,
            handle.tell() + records * sum(itemsizes),
        )
        columns = []
        for (field, typecode), itemsize in zip(_BINARY_COLUMNS, itemsizes):
            column = array(typecode)
            if column.itemsize != itemsize:
                raise ValueError(
                    f"{path}: {field} itemsize {itemsize} does not "
                    f"match this platform"
                )
            payload = handle.read(records * itemsize)
            if len(payload) != records * itemsize:
                raise ValueError(f"{path}: truncated {field} column")
            column.frombytes(payload)
            if byteorder != sys.byteorder:
                column.byteswap()
            columns.append(column)
    return Trace._from_columns(*columns, n_processors, name)


def _check_file_size(handle, path: PathLike, expected: int) -> None:
    """Reject a file whose size disagrees with its header's layout."""
    size = os.fstat(handle.fileno()).st_size
    if size != expected:
        raise ValueError(
            f"{path}: file size {size} does not match the "
            f"header's layout ({expected} bytes expected; "
            f"truncated, torn, or trailing bytes)"
        )


# ----------------------------------------------------------------------
# v2 columnar container (.bin2): zero-copy mmap loads + persisted
# derived replay columns.
# ----------------------------------------------------------------------

def _align_v2(offset: int) -> int:
    return (offset + _V2_ALIGNMENT - 1) & ~(_V2_ALIGNMENT - 1)


def _derived_arrays(trace: Trace, derived: dict) -> "Optional[dict]":
    """The derived replay columns as int64 arrays, or None if any
    value falls outside an int64 segment (base columns still persist).
    """
    n = derived["n_processors"]
    if n > _MAX_DERIVED_NODES:
        return None
    columns = trace.derived_columns(
        derived["block_size"], n, derived["index_granularity"], False
    )
    try:
        return {
            "blocks": array("q", columns.blocks),
            "mblocks": array(
                "q", trace.block_keys(derived["macroblock_size"])
            ),
            "keys": array("q", columns.keys),
            "homes": array("q", columns.homes),
            "minimals": array("q", columns.minimals),
            "reqbits": array("q", columns.reqbits),
            "notreqs": array("q", columns.notreqs),
        }
    except OverflowError:
        return None


def write_trace_v2(
    trace: Trace, path: PathLike, derived: Optional[dict] = None
) -> None:
    """Write ``trace`` as the v2 columnar container.

    Layout: magic line, one JSON header line carrying the offset
    table, zero padding, then one raw 64-byte-aligned segment per
    column.  ``derived`` optionally persists the derived replay
    columns for one reference configuration — a dict with
    ``block_size``, ``macroblock_size``, ``n_processors``, and
    ``index_granularity`` keys (pure functions of the base columns
    plus those constants, so persisting them never changes trace
    content or its cache key).
    """
    segments = [
        (name, typecode, getattr(trace, name))
        for name, typecode in _BINARY_COLUMNS
    ]
    derived_header = None
    if derived is not None:
        arrays = _derived_arrays(trace, derived)
        if arrays is not None:
            derived_header = {
                "block_size": derived["block_size"],
                "macroblock_size": derived["macroblock_size"],
                "n_processors": derived["n_processors"],
                "index_granularity": derived["index_granularity"],
            }
            segments += [
                (name, "q", arrays[name])
                for name in _V2_DERIVED_SEGMENTS
            ]
    records = len(trace)
    sizes = [
        (name, typecode, records * _V2_ITEMSIZES[typecode])
        for name, typecode, _ in segments
    ]

    # The offset table lives inside the JSON header, whose own length
    # shifts the first segment; iterate to the fixed point (offsets
    # only grow with header length, so this settles in a pass or two).
    data_start = len(_V2_MAGIC)
    while True:
        offsets = []
        offset = _align_v2(data_start)
        for name, typecode, nbytes in sizes:
            offsets.append(
                [name, typecode, _V2_ITEMSIZES[typecode], offset, nbytes]
            )
            offset = _align_v2(offset + nbytes)
        header = json.dumps(
            {
                "version": 2,
                "n_processors": trace.n_processors,
                "name": trace.name,
                "records": records,
                "byteorder": sys.byteorder,
                "segments": offsets,
                "derived": derived_header,
            },
            sort_keys=True,
        ).encode("ascii")
        next_start = len(_V2_MAGIC) + len(header) + 1
        if next_start <= data_start:
            break
        data_start = next_start

    with open(path, "wb") as handle:
        handle.write(_V2_MAGIC)
        handle.write(header)
        handle.write(b"\n")
        position = next_start
        for (_, _, column), entry in zip(segments, offsets):
            _, _, _, offset, nbytes = entry
            handle.write(bytes(offset - position))
            payload = memoryview(column).tobytes()
            if len(payload) != nbytes:  # pragma: no cover - invariant
                raise ValueError("segment size mismatch while writing")
            handle.write(payload)
            position = offset + nbytes


def read_trace_v2(path: PathLike) -> Trace:
    """Read a trace written by :func:`write_trace_v2`, zero-copy.

    The file is mapped (``REPRO_MMAP=0`` substitutes a private bytes
    copy) and every column becomes a read-only ``memoryview`` over the
    mapping: no column bytes are copied, N same-host readers share one
    physical copy through the page cache, and the returned trace is
    *frozen* — mutation first materializes private columns
    (:class:`Trace` copy-on-write), so the store is never written
    through.  Raises ``ValueError`` for malformed, torn, truncated,
    or foreign-byteorder files (callers fall back to ``.bin`` /
    ``.trace``).
    """
    with open(path, "rb") as handle:
        size = os.fstat(handle.fileno()).st_size
        if size < len(_V2_MAGIC):
            raise ValueError(f"{path}: not a v2 repro-trace file")
        if mmap_enabled() and size > 0:
            buffer = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        else:  # copying fallback: same views over a private copy
            buffer = handle.read()
    base = memoryview(buffer)
    if base[: len(_V2_MAGIC)].tobytes() != _V2_MAGIC:
        raise ValueError(f"{path}: not a v2 repro-trace file")
    header_end = bytes(base[len(_V2_MAGIC): len(_V2_MAGIC) + 65536])
    newline = header_end.find(b"\n")
    if newline < 0:
        raise ValueError(f"{path}: unterminated v2 header")
    try:
        header = json.loads(header_end[:newline].decode("ascii"))
        n_processors = header["n_processors"]
        name = header["name"]
        records = header["records"]
        byteorder = header["byteorder"]
        segments = header["segments"]
        derived_header = header["derived"]
    except (KeyError, TypeError, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: bad v2 header ({exc})")
    if (
        not isinstance(n_processors, int)
        or not isinstance(records, int)
        or records < 0
        or n_processors <= 0
        or not isinstance(name, str)
        or not isinstance(segments, list)
        or not (derived_header is None or isinstance(derived_header, dict))
    ):
        raise ValueError(f"{path}: bad v2 header field types")
    if byteorder != sys.byteorder:
        raise ValueError(
            f"{path}: byteorder {byteorder!r} does not match this "
            f"platform ({sys.byteorder}); falling back to the "
            f"byte-swapping loader"
        )

    base_names = [name_ for name_, _ in _BINARY_COLUMNS]
    expected_names = list(base_names)
    if derived_header is not None:
        for field in (
            "block_size", "macroblock_size",
            "n_processors", "index_granularity",
        ):
            if not isinstance(derived_header.get(field), int):
                raise ValueError(f"{path}: bad v2 derived header")
        expected_names += list(_V2_DERIVED_SEGMENTS)
    typecodes = dict(_BINARY_COLUMNS)

    # Validate the whole offset table against the fstat size before
    # touching any segment: truncation and torn writes are rejected
    # up front, not discovered column-by-column.
    end = len(_V2_MAGIC) + newline + 1
    views = {}
    if [entry[0] for entry in segments] != expected_names:
        raise ValueError(f"{path}: bad v2 segment table")
    for entry in segments:
        if not (
            isinstance(entry, list)
            and len(entry) == 5
            and all(isinstance(field, int) for field in entry[2:])
        ):
            raise ValueError(f"{path}: bad v2 segment table")
        seg_name, typecode, itemsize, offset, nbytes = entry
        expected_code = typecodes.get(seg_name, "q")
        if (
            typecode != expected_code
            or itemsize != _V2_ITEMSIZES[expected_code]
            or nbytes != records * itemsize
            or offset % _V2_ALIGNMENT
            or offset < end
        ):
            raise ValueError(f"{path}: bad v2 segment {seg_name!r}")
        end = offset + nbytes
    if end != size:
        raise ValueError(
            f"{path}: file size {size} does not match the header's "
            f"offset table ({end} bytes expected; truncated or torn)"
        )
    for entry in segments:
        seg_name, typecode, _, offset, nbytes = entry
        views[seg_name] = base[offset: offset + nbytes].cast(typecode)

    derived_store = None
    if derived_header is not None:
        derived_store = {
            seg_name: views[seg_name]
            for seg_name in _V2_DERIVED_SEGMENTS
        }
    return Trace._from_buffers(
        *(views[name_] for name_ in base_names),
        n_processors=n_processors,
        name=name,
        source=buffer,
        derived_store=derived_store,
        derived_meta=derived_header,
    )


def read_trace(path: PathLike, trusted: bool = False) -> Trace:
    """Read a trace written by :func:`write_trace`.

    ``trusted=True`` skips per-record validation; use it only for files
    this package wrote itself (e.g. trace-cache entries).
    """
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline().rstrip("\n")
        n_processors, name = _parse_header(header, path)
        trace = Trace(n_processors=n_processors, name=name)
        append = trace.append_fields
        codes = _ACCESS_CODES
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (4, 5):
                raise ValueError(
                    f"{path}:{line_number}: expected 4 or 5 fields"
                )
            try:
                address = int(parts[0], 16)
                pc = int(parts[1], 16)
                requester = int(parts[2])
                code = codes[parts[3]]
                instructions = int(parts[4]) if len(parts) == 5 else 0
            except KeyError:
                raise ValueError(
                    f"{path}:{line_number}: bad access kind {parts[3]!r}"
                ) from None
            except ValueError as exc:
                raise ValueError(f"{path}:{line_number}: {exc}") from exc
            if not trusted:
                _validate_fields(
                    address, pc, requester, instructions,
                    n_processors, path, line_number,
                )
            append(address, pc, requester, code, instructions)
    return trace


def _validate_fields(
    address: int,
    pc: int,
    requester: int,
    instructions: int,
    n_processors: int,
    path: PathLike,
    line_number: int,
) -> None:
    if address < 0 or pc < 0 or instructions < 0:
        raise ValueError(
            f"{path}:{line_number}: negative field in record"
        )
    if not 0 <= requester < n_processors:
        raise ValueError(
            f"{path}:{line_number}: requester {requester} outside "
            f"[0, {n_processors})"
        )


def _parse_header(header: str, path: PathLike) -> "tuple[int, str]":
    if not header.startswith(_HEADER_PREFIX):
        raise ValueError(f"{path}: not a repro-trace file (bad header)")
    fields = dict(
        part.split("=", 1)
        for part in header[len(_HEADER_PREFIX):].split()
        if "=" in part
    )
    try:
        n_processors = int(fields["n_processors"])
    except (KeyError, ValueError) as exc:
        raise ValueError(f"{path}: malformed trace header") from exc
    name = fields.get("name", "-")
    return n_processors, "" if name == "-" else name
