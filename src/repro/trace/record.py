"""A single L2-miss coherence-request trace record.

Matches the paper's trace format (Section 2.1): "For each coherence
request, trace records contain the data address, program counter (PC)
address, requester, and request type."
"""

from __future__ import annotations

import dataclasses

from repro.common.types import AccessType, Address, NodeId


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One coherence request (an L2 miss) in program order.

    Attributes:
        address: physical data address of the miss (block-aligned or
            not — consumers align as needed).
        pc: program counter of the load/store instruction that missed.
        requester: node id of the requesting processor.
        access: ``GETS`` (read / request-for-shared) or ``GETX``
            (write / request-for-exclusive).
        instructions: instructions the requester executed since its
            previous L2 miss (paces the execution-driven timing model;
            zero when unknown, e.g. hand-built traces).
    """

    address: Address
    pc: Address
    requester: NodeId
    access: AccessType
    instructions: int = 0

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"negative address {self.address:#x}")
        if self.pc < 0:
            raise ValueError(f"negative pc {self.pc:#x}")
        if self.requester < 0:
            raise ValueError(f"negative requester {self.requester}")
        if self.instructions < 0:
            raise ValueError(f"negative instructions {self.instructions}")

    @classmethod
    def trusted(
        cls,
        address: Address,
        pc: Address,
        requester: NodeId,
        access: AccessType,
        instructions: int = 0,
    ) -> "TraceRecord":
        """Construct without validation, for already-validated sources.

        Trace containers and workload generators validate fields once
        on entry; re-running :meth:`__post_init__` for every record
        they materialize would dominate hot loops.  User-supplied and
        hand-built records should use the normal constructor.
        """
        self = object.__new__(cls)
        d = self.__dict__
        d["address"] = address
        d["pc"] = pc
        d["requester"] = requester
        d["access"] = access
        d["instructions"] = instructions
        return self

    def block(self, block_size: int) -> Address:
        """The record's block-aligned address."""
        return self.address & ~(block_size - 1)

    def macroblock(self, macroblock_size: int) -> Address:
        """The record's macroblock-aligned address."""
        return self.address & ~(macroblock_size - 1)

    @property
    def is_read(self) -> bool:
        """True for GETS records."""
        return self.access.is_read

    @property
    def is_write(self) -> bool:
        """True for GETX records."""
        return self.access.is_write
