"""Coherence-request traces.

The paper's trace-driven evaluation (Sections 2 and 4) works from traces
of second-level cache misses.  Each trace record contains the data
address, program counter (PC), requesting processor, and request type —
exactly the fields the paper lists in Section 2.1.

This subpackage provides the record type, an in-memory trace container,
text-file round-tripping, and stream filters/statistics.
"""

from repro.trace.record import TraceRecord
from repro.trace.trace import Trace
from repro.trace.io import read_trace, write_trace
from repro.trace.stats import TraceStats, compute_trace_stats

__all__ = [
    "Trace",
    "TraceRecord",
    "TraceStats",
    "compute_trace_stats",
    "read_trace",
    "write_trace",
]
