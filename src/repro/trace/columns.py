"""Vectorized derived-column computation (optional numpy backend).

The batch execution layer replays traces through fused loops that
iterate *pre-boxed* Python lists: every derived quantity the protocol
kernels need per record — block-aligned addresses, predictor index
keys, home nodes, and the minimal-destination-set / requester bitmasks
— is computed once per trace as a column instead of per record.

When numpy is importable the columns are produced by vectorized int64
arithmetic over the trace's flat ``array`` buffers and then boxed with
``tolist()``; otherwise a pure-Python comprehension produces the same
lists.  Both backends yield *identical* Python ints, so simulation
results are byte-for-byte independent of the backend — the equivalence
suite asserts this.

Set ``REPRO_BACKEND=pure`` (or the deprecated back-compat alias
``REPRO_PURE_PYTHON=1``) in the environment to force the pure backend
even when numpy is installed (CI runs both); see
:mod:`repro.common.backend` for the unified backend switch this
column-level selection is one layer of.
"""

from __future__ import annotations

import os
from typing import List, NamedTuple, Optional

#: Environment variable that force-disables the numpy backend
#: (deprecated alias of ``REPRO_BACKEND=pure``).
PURE_PYTHON_ENV = "REPRO_PURE_PYTHON"

#: Bitmask columns need one bit per node in an int64 numpy lane.
_MAX_NUMPY_NODES = 62


def _import_numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised on no-numpy CI
        return None
    return numpy


def _env_forces_pure() -> bool:
    return bool(
        os.environ.get(PURE_PYTHON_ENV)
        or os.environ.get("REPRO_BACKEND", "").strip().lower()
        in ("pure", "python")
    )


_np = None if _env_forces_pure() else _import_numpy()


def backend_name() -> str:
    """The active column backend: ``"numpy"`` or ``"python"``."""
    return "numpy" if _np is not None else "python"


def numpy_module():
    """The numpy module when the numpy backend is active, else None.

    The batched generation layer (:mod:`repro.workloads.genchunks`) and
    the analysis column kernels consult this at call time, so
    :func:`set_backend` switches every vectorized path at once.
    """
    return _np


def set_backend(name: str) -> None:
    """Select the column backend: ``"numpy"``, ``"python"``, ``"auto"``.

    Intended for tests and benchmarks; raises if numpy is requested
    but not importable.  ``"auto"`` re-runs the import-time detection
    (honouring ``REPRO_BACKEND`` and :data:`PURE_PYTHON_ENV`).

    Pinning a column backend also pins the matching unified tier in
    :mod:`repro.common.backend` ("python" -> pure, "numpy" -> numpy),
    so the equivalence suites that parametrize over this function
    compare the Python replay loops and never silently dispatch the
    native kernels.
    """
    _apply(name)
    from repro.common import backend as _backend

    _backend._sync_from_columns(name)


def _apply(name: str) -> None:
    """Low-level column switch (no unified-backend notification)."""
    global _np
    if name == "python":
        _np = None
    elif name in ("numpy", "numpy-if-available"):
        numpy = _import_numpy()
        if numpy is None:
            if name == "numpy-if-available":
                _np = None
                return
            raise RuntimeError("numpy backend requested but not importable")
        _np = numpy
    elif name == "auto":
        _np = None if _env_forces_pure() else _import_numpy()
    elif name == "auto-numpy":
        # Unified auto resolved to a non-pure tier: numpy when
        # importable regardless of the pure-forcing env (the caller
        # already decided the tier).
        _np = _import_numpy()
    else:
        raise ValueError(f"unknown backend {name!r}")


class DerivedColumns(NamedTuple):
    """Per-record derived columns for one protocol configuration.

    All fields are plain Python lists (pre-boxed ints), identical
    across backends:

    - ``blocks`` — block-aligned addresses,
    - ``keys`` — predictor table index keys (PC or ``address //
      granularity``; ``None`` when no granularity was requested),
    - ``homes`` — the home node of each block,
    - ``minimals`` — the minimal destination set bitmask
      (requester + home),
    - ``reqbits`` — ``1 << requester``,
    - ``notreqs`` — ``~(1 << requester)`` (the mask that strips the
      requester from a delivery set).
    """

    blocks: List[int]
    keys: Optional[List[int]]
    homes: List[int]
    minimals: List[int]
    reqbits: List[int]
    notreqs: List[int]


def derived_columns(
    addresses,
    pcs,
    requesters,
    block_size: int,
    n_processors: int,
    key_granularity: Optional[int] = None,
    use_pc_index: bool = False,
) -> DerivedColumns:
    """Build every derived replay column for one configuration at once.

    ``addresses``/``pcs``/``requesters`` are the trace's flat
    ``array`` columns.  Vectorized end-to-end under numpy; the pure
    fallback produces identical lists.
    """
    block_shift = block_size.bit_length() - 1
    n = n_processors
    if (
        _np is not None
        and n <= _MAX_NUMPY_NODES
        and addresses.itemsize == 8
        and requesters.itemsize == 4
    ):
        addr = _np.frombuffer(addresses, dtype=_np.int64)
        blocks = addr & _np.int64(~(block_size - 1))
        homes = (blocks >> block_shift) % n
        reqbits = _np.int64(1) << _np.frombuffer(
            requesters, dtype=_np.int32
        ).astype(_np.int64)
        minimals = reqbits | (_np.int64(1) << homes)
        if use_pc_index:
            keys = list(pcs)
        elif key_granularity is not None:
            keys = (addr // key_granularity).tolist()
        else:
            keys = None
        return DerivedColumns(
            blocks.tolist(),
            keys,
            homes.tolist(),
            minimals.tolist(),
            reqbits.tolist(),
            (~reqbits).tolist(),
        )

    mask = ~(block_size - 1)
    blocks_list = [a & mask for a in addresses]
    homes_list = [(b >> block_shift) % n for b in blocks_list]
    reqbits_list = [1 << r for r in requesters]
    minimals_list = [
        rb | (1 << h) for rb, h in zip(reqbits_list, homes_list)
    ]
    if use_pc_index:
        keys_list: Optional[List[int]] = list(pcs)
    elif key_granularity is not None:
        keys_list = [a // key_granularity for a in addresses]
    else:
        keys_list = None
    return DerivedColumns(
        blocks_list,
        keys_list,
        homes_list,
        minimals_list,
        reqbits_list,
        [~rb for rb in reqbits_list],
    )


def derived_from_segments(segments) -> DerivedColumns:
    """Box persisted derived segments into :class:`DerivedColumns`.

    ``segments`` maps segment names (as laid out by the v2 trace
    store — see :mod:`repro.trace.io`) to flat int64 buffers over the
    store mapping.  Boxing each segment once here replaces the
    per-process arithmetic recompute with straight C-level copies;
    the resulting lists are identical to what
    :func:`derived_columns` produces from the base columns.
    """
    return DerivedColumns(
        list(segments["blocks"]),
        list(segments["keys"]),
        list(segments["homes"]),
        list(segments["minimals"]),
        list(segments["reqbits"]),
        list(segments["notreqs"]),
    )


def aligned_list(addresses, block_size: int) -> List[int]:
    """Block-aligned addresses as a pre-boxed list.

    The lighter sibling of :func:`derived_columns` for consumers that
    only need the block keys (the baseline protocols' replay loop).
    """
    if _np is not None and addresses.itemsize == 8:
        return (
            _np.frombuffer(addresses, dtype=_np.int64)
            & _np.int64(~(block_size - 1))
        ).tolist()
    mask = ~(block_size - 1)
    return [a & mask for a in addresses]


def aligned_array(addresses, block_size: int, typecode: str):
    """Aligned addresses as a stdlib ``array`` (the legacy key API)."""
    from array import array

    if _np is not None and addresses.itemsize == 8:
        aligned = _np.frombuffer(
            addresses, dtype=_np.int64
        ) & _np.int64(~(block_size - 1))
        out = array(typecode)
        out.frombytes(aligned.tobytes())
        return out
    mask = ~(block_size - 1)
    return array(typecode, (a & mask for a in addresses))
