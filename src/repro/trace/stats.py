"""Aggregate trace statistics."""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict

from repro.trace import columns as _columns
from repro.trace.trace import Trace


@dataclasses.dataclass(frozen=True)
class TraceStats:
    """Summary statistics for a coherence-request trace."""

    n_records: int
    n_reads: int
    n_writes: int
    unique_blocks: int
    unique_macroblocks: int
    unique_pcs: int
    per_processor: Dict[int, int]

    @property
    def read_fraction(self) -> float:
        """Fraction of records that are GETS requests."""
        return self.n_reads / self.n_records if self.n_records else 0.0

    @property
    def write_fraction(self) -> float:
        """Fraction of records that are GETX requests."""
        return self.n_writes / self.n_records if self.n_records else 0.0

    @property
    def footprint_bytes(self) -> int:
        """Memory touched, in bytes of 64-byte blocks (Table 2 col 2)."""
        return self.unique_blocks * 64

    @property
    def macroblock_footprint_bytes(self) -> int:
        """Memory touched in 1024-byte macroblocks (Table 2 col 3)."""
        return self.unique_macroblocks * 1024


def compute_trace_stats_records(
    trace: Trace, block_size: int = 64, macroblock_size: int = 1024
) -> TraceStats:
    """:class:`TraceStats` via scalar column walks (oracle path)."""
    n_records = len(trace)
    n_reads = n_records - sum(trace.accesses)
    per_processor: Dict[int, int] = collections.Counter(trace.requesters)
    return TraceStats(
        n_records=n_records,
        n_reads=n_reads,
        n_writes=n_records - n_reads,
        unique_blocks=trace.unique_blocks(block_size),
        unique_macroblocks=trace.unique_blocks(macroblock_size),
        unique_pcs=trace.unique_pcs(),
        per_processor=dict(per_processor),
    )


def compute_trace_stats(
    trace: Trace, block_size: int = 64, macroblock_size: int = 1024
) -> TraceStats:
    """Compute :class:`TraceStats` from the trace's columns.

    Vectorized (``bincount``/``unique`` over the flat columns) when
    numpy is available; identical to
    :func:`compute_trace_stats_records` either way.
    """
    np_ = _columns.numpy_module()
    n_records = len(trace)
    if np_ is None or n_records == 0:
        return compute_trace_stats_records(
            trace, block_size, macroblock_size
        )
    n_writes = int(
        np_.frombuffer(trace.accesses, dtype=np_.int8).sum()
    )
    requesters = np_.frombuffer(trace.requesters, dtype=np_.int32)
    per_processor = {
        int(node): int(count)
        for node, count in enumerate(np_.bincount(requesters))
        if count
    }
    unique_blocks = len(
        np_.unique(
            np_.frombuffer(
                trace.block_keys(block_size), dtype=np_.int64
            )
        )
    )
    unique_macroblocks = len(
        np_.unique(
            np_.frombuffer(
                trace.block_keys(macroblock_size), dtype=np_.int64
            )
        )
    )
    unique_pcs = len(
        np_.unique(np_.frombuffer(trace.pcs, dtype=np_.int64))
    )
    return TraceStats(
        n_records=n_records,
        n_reads=n_records - n_writes,
        n_writes=n_writes,
        unique_blocks=unique_blocks,
        unique_macroblocks=unique_macroblocks,
        unique_pcs=unique_pcs,
        per_processor=per_processor,
    )
