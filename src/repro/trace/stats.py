"""Aggregate trace statistics."""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict

from repro.trace.trace import Trace


@dataclasses.dataclass(frozen=True)
class TraceStats:
    """Summary statistics for a coherence-request trace."""

    n_records: int
    n_reads: int
    n_writes: int
    unique_blocks: int
    unique_macroblocks: int
    unique_pcs: int
    per_processor: Dict[int, int]

    @property
    def read_fraction(self) -> float:
        """Fraction of records that are GETS requests."""
        return self.n_reads / self.n_records if self.n_records else 0.0

    @property
    def write_fraction(self) -> float:
        """Fraction of records that are GETX requests."""
        return self.n_writes / self.n_records if self.n_records else 0.0

    @property
    def footprint_bytes(self) -> int:
        """Memory touched, in bytes of 64-byte blocks (Table 2 col 2)."""
        return self.unique_blocks * 64

    @property
    def macroblock_footprint_bytes(self) -> int:
        """Memory touched in 1024-byte macroblocks (Table 2 col 3)."""
        return self.unique_macroblocks * 1024


def compute_trace_stats(
    trace: Trace, block_size: int = 64, macroblock_size: int = 1024
) -> TraceStats:
    """Compute :class:`TraceStats` in a single pass over ``trace``."""
    blocks = set()
    macroblocks = set()
    pcs = set()
    n_reads = 0
    per_processor: Dict[int, int] = collections.Counter()
    for record in trace:
        blocks.add(record.block(block_size))
        macroblocks.add(record.macroblock(macroblock_size))
        pcs.add(record.pc)
        if record.is_read:
            n_reads += 1
        per_processor[record.requester] += 1
    n_records = len(trace)
    return TraceStats(
        n_records=n_records,
        n_reads=n_reads,
        n_writes=n_records - n_reads,
        unique_blocks=len(blocks),
        unique_macroblocks=len(macroblocks),
        unique_pcs=len(pcs),
        per_processor=dict(per_processor),
    )
