"""In-memory coherence-request trace container (columnar engine).

The trace is stored as a structure of parallel arrays — one compact
``array`` per field (address, pc, requester, access, instructions) —
instead of a list of :class:`TraceRecord` objects.  The record-oriented
API is preserved: iteration and indexing materialize records on demand,
so existing consumers are unaffected, while hot loops (protocols, the
timing simulator, analyses) index the columns directly and never
allocate per-event objects.

Derived key columns (block- and macroblock-aligned addresses) are
computed once per trace via :meth:`Trace.block_keys` and cached, so the
six-protocol sweeps that replay one trace repeatedly share the aligned
addresses instead of recomputing them per consumer.
"""

from __future__ import annotations

import threading
from array import array
from typing import Callable, Iterable, Iterator, Optional, Sequence, Tuple

from repro.common.types import AccessType, NodeId
from repro.trace import columns as _columns
from repro.trace.record import TraceRecord

#: Access-kind column encoding: index into this tuple is the code.
ACCESS_BY_CODE = (AccessType.GETS, AccessType.GETX)

#: Array typecodes for each column (addresses/pcs/instruction gaps are
#: 64-bit; requesters are small ints; access codes fit a signed byte).
_ADDR_TYPE = "q"
_NODE_TYPE = "i"
_CODE_TYPE = "b"


class Trace:
    """An ordered sequence of coherence requests with provenance.

    The paper uses the first one million misses to warm caches and
    predictors; :meth:`split_warmup` supports the same protocol.
    """

    __slots__ = (
        "_n_processors",
        "_name",
        "_addresses",
        "_pcs",
        "_requesters",
        "_accesses",
        "_instructions",
        "_key_cache",
        "_memo_lock",
        "_frozen",
        "_source",
        "_derived_store",
        "_derived_meta",
    )

    def __init__(
        self,
        records: Iterable[TraceRecord] = (),
        n_processors: int = 16,
        name: str = "",
    ):
        if n_processors <= 0:
            raise ValueError("n_processors must be positive")
        self._n_processors = n_processors
        self._name = name
        self._addresses = array(_ADDR_TYPE)
        self._pcs = array(_ADDR_TYPE)
        self._requesters = array(_NODE_TYPE)
        self._accesses = array(_CODE_TYPE)
        self._instructions = array(_ADDR_TYPE)
        self._key_cache = {}
        self._memo_lock = threading.RLock()
        self._frozen = False
        self._source = None
        self._derived_store = None
        self._derived_meta = None
        for record in records:
            self.append(record)

    @classmethod
    def _from_columns(
        cls,
        addresses: array,
        pcs: array,
        requesters: array,
        accesses: array,
        instructions: array,
        n_processors: int,
        name: str,
    ) -> "Trace":
        """Adopt already-validated columns without copying or checking."""
        self = object.__new__(cls)
        self._n_processors = n_processors
        self._name = name
        self._addresses = addresses
        self._pcs = pcs
        self._requesters = requesters
        self._accesses = accesses
        self._instructions = instructions
        self._key_cache = {}
        self._memo_lock = threading.RLock()
        self._frozen = False
        self._source = None
        self._derived_store = None
        self._derived_meta = None
        return self

    @classmethod
    def _from_buffers(
        cls,
        addresses,
        pcs,
        requesters,
        accesses,
        instructions,
        *,
        n_processors: int,
        name: str,
        source=None,
        derived_store=None,
        derived_meta=None,
    ) -> "Trace":
        """Adopt read-only buffer-backed columns (frozen, zero-copy).

        Columns are C-contiguous ``memoryview`` slices of ``source``
        (an open ``mmap`` over the trace store, or a private bytes
        copy under ``REPRO_MMAP=0``).  The trace is *frozen*: the
        first mutation copies every column into private arrays
        (:meth:`_materialize`), so the backing store is never written
        through.  ``derived_store``/``derived_meta`` optionally carry
        the persisted derived replay columns, served by
        :meth:`block_keys` / :meth:`block_keys_list` /
        :meth:`derived_columns` without recomputation.
        """
        self = cls._from_columns(
            addresses, pcs, requesters, accesses, instructions,
            n_processors, name,
        )
        self._frozen = True
        self._source = source
        self._derived_store = derived_store
        self._derived_meta = derived_meta
        return self

    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """Whether columns are read-only views over a backing store."""
        return self._frozen

    def _materialize(self) -> None:
        """Copy-on-write: swap mapped columns for private arrays.

        Frozen traces serve columns as read-only views over the store
        mapping; the first mutation lands here, copying each column
        into a private ``array`` so the store file is never written
        through and concurrent readers of the same mapping are
        unaffected.
        """
        if not self._frozen:
            return
        with self._memo_lock:
            if not self._frozen:
                return
            self._addresses = array(_ADDR_TYPE, self._addresses.tobytes())
            self._pcs = array(_ADDR_TYPE, self._pcs.tobytes())
            self._requesters = array(_NODE_TYPE, self._requesters.tobytes())
            self._accesses = array(_CODE_TYPE, self._accesses.tobytes())
            self._instructions = array(
                _ADDR_TYPE, self._instructions.tobytes()
            )
            self._frozen = False
            self._source = None
            self._derived_store = None
            self._derived_meta = None
            self._key_cache.clear()

    def _stored_aligned(self, block_size: int):
        """The persisted aligned-address segment for ``block_size``.

        Returns the flat int64 view from the derived store when its
        configuration covers ``block_size`` (the store persists both
        block- and macroblock-aligned keys), else None.
        """
        store = self._derived_store
        if store is None:
            return None
        meta = self._derived_meta
        if block_size == meta["block_size"]:
            return store["blocks"]
        if block_size == meta["macroblock_size"]:
            return store["mblocks"]
        return None

    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        """Processor count of the traced system."""
        return self._n_processors

    @property
    def name(self) -> str:
        """Workload name (e.g. ``"apache"``), for reporting."""
        return self._name

    # ------------------------------------------------------------------
    # Columnar access (the hot-path API)
    # ------------------------------------------------------------------
    @property
    def addresses(self) -> Sequence[int]:
        """The data-address column."""
        return self._addresses

    @property
    def pcs(self) -> Sequence[int]:
        """The program-counter column."""
        return self._pcs

    @property
    def requesters(self) -> Sequence[int]:
        """The requesting-node column."""
        return self._requesters

    @property
    def accesses(self) -> Sequence[int]:
        """The access-kind column (codes indexing :data:`ACCESS_BY_CODE`)."""
        return self._accesses

    @property
    def instructions(self) -> Sequence[int]:
        """The instruction-gap column."""
        return self._instructions

    def _memoize(self, cache_key, factory):
        """Double-checked memoization into ``_key_cache``.

        Sweep cells replay one shared trace on threads, so a miss
        recomputes under the per-trace lock: exactly one thread runs
        ``factory`` and every caller observes the same cached object
        (no duplicate work, no torn cache).  The lock is reentrant —
        factories may themselves call memoized accessors.
        """
        cached = self._key_cache.get(cache_key)
        if cached is None:
            with self._memo_lock:
                cached = self._key_cache.get(cache_key)
                if cached is None:
                    cached = factory()
                    self._key_cache[cache_key] = cached
        return cached

    def block_keys(self, block_size: int) -> Sequence[int]:
        """Addresses aligned down to ``block_size`` (cached per trace).

        Computed once and shared by every consumer that needs
        block-aligned (or, with a macroblock size, macroblock-aligned)
        keys — protocols, coherence state, sharing/locality analyses.

        On a frozen trace whose store persisted this configuration's
        derived columns, the aligned keys are served as a zero-copy
        int64 view over the mapping instead of being recomputed.
        """
        stored = self._stored_aligned(block_size)
        if stored is not None:
            return stored
        return self._memoize(
            block_size,
            lambda: _columns.aligned_array(
                self._addresses, block_size, _ADDR_TYPE
            ),
        )

    def macroblock_keys(self, macroblock_size: int) -> Sequence[int]:
        """Addresses aligned down to ``macroblock_size`` (cached)."""
        return self.block_keys(macroblock_size)

    def boxed_column(self, name: str) -> list:
        """One raw column as a pre-boxed list (cached per column).

        Fused replay loops iterate lists instead of flat arrays so
        each element is boxed once per trace rather than once per
        replay; boxing lazily per column keeps consumers that need
        only a subset (the Group loop, the timing pass) from pinning
        the rest.  ``name`` is one of ``addresses``/``pcs``/
        ``requesters``/``accesses``/``instructions``.
        """
        if name not in (
            "addresses", "pcs", "requesters", "accesses", "instructions"
        ):
            raise ValueError(f"unknown column {name!r}")
        return self._memoize(
            ("boxed", name), lambda: list(getattr(self, "_" + name))
        )

    def boxed_columns(self) -> tuple:
        """All five raw columns as pre-boxed lists (cached).

        Returns ``(addresses, pcs, requesters, accesses,
        instructions)``; prefer :meth:`boxed_column` when only a
        subset is needed.
        """
        return (
            self.boxed_column("addresses"),
            self.boxed_column("pcs"),
            self.boxed_column("requesters"),
            self.boxed_column("accesses"),
            self.boxed_column("instructions"),
        )

    def block_keys_list(self, block_size: int) -> list:
        """Block-aligned addresses as a pre-boxed list (cached).

        The lighter companion of :meth:`derived_columns` for replay
        loops that only need block keys (directory/snooping).
        """
        def factory():
            stored = self._stored_aligned(block_size)
            if stored is not None:
                return list(stored)
            return _columns.aligned_list(self._addresses, block_size)

        return self._memoize(("blocks", block_size), factory)

    def memo(self, key, factory):
        """Memoize a value derived from this trace's columns.

        Stored alongside the cached key columns and invalidated on
        mutation, so analyses that share an expensive derived column
        (e.g. the vectorized MOSI replay behind Figures 2 and 4)
        compute it once per trace.  ``key`` must be hashable and
        namespaced by the caller.
        """
        return self._memoize(key, factory)

    def derived_columns(
        self,
        block_size: int,
        n_processors: int,
        key_granularity: Optional[int] = None,
        use_pc_index: bool = False,
    ) -> "_columns.DerivedColumns":
        """Derived replay columns for one configuration (cached).

        Block keys, predictor index keys, home nodes, and the
        minimal-set/requester bitmasks, computed vectorized once per
        trace (numpy when available — see :mod:`repro.trace.columns`)
        and shared by every replay of this trace at the same
        configuration.
        """
        cache_key = (
            "derived", block_size, n_processors,
            key_granularity, use_pc_index,
        )

        def factory():
            meta = self._derived_meta
            if (
                self._derived_store is not None
                and not use_pc_index
                and block_size == meta["block_size"]
                and n_processors == meta["n_processors"]
                and key_granularity == meta["index_granularity"]
            ):
                return _columns.derived_from_segments(self._derived_store)
            return _columns.derived_columns(
                self._addresses,
                self._pcs,
                self._requesters,
                block_size,
                n_processors,
                key_granularity,
                use_pc_index,
            )

        return self._memoize(cache_key, factory)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def append(self, record: TraceRecord) -> None:
        """Append one record (validated against the processor count)."""
        self._check_record(record)
        self.append_fields(
            record.address,
            record.pc,
            record.requester,
            1 if record.access is AccessType.GETX else 0,
            record.instructions,
        )

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    def append_fields(
        self,
        address: int,
        pc: int,
        requester: int,
        access_code: int,
        instructions: int = 0,
    ) -> None:
        """Append one request from already-validated scalar fields.

        The trusted fast path for workload generators and trace IO:
        callers guarantee non-negative fields, ``requester`` within
        range, and ``access_code`` in {0 (GETS), 1 (GETX)}.
        """
        if self._frozen:
            self._materialize()
        self._addresses.append(address)
        self._pcs.append(pc)
        self._requesters.append(requester)
        self._accesses.append(access_code)
        self._instructions.append(instructions)
        if self._key_cache:
            self._key_cache.clear()

    def extend_fields(
        self,
        addresses: Iterable[int],
        pcs: Iterable[int],
        requesters: Iterable[int],
        access_codes: Iterable[int],
        instructions: Iterable[int],
    ) -> None:
        """Bulk-append already-validated parallel field columns.

        The chunk-consuming collector accumulates a chunk's misses in
        Python lists and lands them here with five ``array.extend``
        calls instead of per-record appends.  Callers guarantee the
        same invariants as :meth:`append_fields` and equal lengths.
        """
        if self._frozen:
            self._materialize()
        self._addresses.extend(addresses)
        self._pcs.extend(pcs)
        self._requesters.extend(requesters)
        self._accesses.extend(access_codes)
        self._instructions.extend(instructions)
        if self._key_cache:
            self._key_cache.clear()

    # ------------------------------------------------------------------
    def split_warmup(self, n_warmup: int) -> "Tuple[Trace, Trace]":
        """Split into (warmup, measurement) traces at ``n_warmup``.

        The split is memoized per ``n_warmup``: a sweep that replays
        one trace through many protocol configurations receives the
        *same* warmup/measurement ``Trace`` objects each time, so
        their cached derived columns are computed once and shared.
        Treat the returned traces as read-only.
        """
        if n_warmup < 0:
            raise ValueError("n_warmup must be non-negative")
        return self._memoize(
            ("split", n_warmup),
            lambda: (self[:n_warmup], self[n_warmup:]),
        )

    def filtered(
        self, predicate: Callable[[TraceRecord], bool]
    ) -> "Trace":
        """A new trace with only records satisfying ``predicate``."""
        out = Trace(n_processors=self._n_processors, name=self._name)
        append = out.append_fields
        by_code = ACCESS_BY_CODE
        trusted = TraceRecord.trusted
        for fields in zip(
            self._addresses,
            self._pcs,
            self._requesters,
            self._accesses,
            self._instructions,
        ):
            record = trusted(
                fields[0], fields[1], fields[2],
                by_code[fields[3]], fields[4],
            )
            if predicate(record):
                append(*fields)
        return out

    def reads(self) -> "Trace":
        """Only the GETS records."""
        return self._select_code(0)

    def writes(self) -> "Trace":
        """Only the GETX records."""
        return self._select_code(1)

    def by_processor(self, node: NodeId) -> "Trace":
        """Only records issued by ``node``."""
        out = Trace(n_processors=self._n_processors, name=self._name)
        append = out.append_fields
        for fields in zip(
            self._addresses,
            self._pcs,
            self._requesters,
            self._accesses,
            self._instructions,
        ):
            if fields[2] == node:
                append(*fields)
        return out

    def head(self, n: int) -> "Trace":
        """The first ``n`` records."""
        return self[:n]

    def unique_blocks(self, block_size: int) -> int:
        """Number of distinct block addresses touched."""
        return len(set(self.block_keys(block_size)))

    def unique_pcs(self) -> int:
        """Number of distinct miss PCs."""
        return len(set(self._pcs))

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceRecord]:
        trusted = TraceRecord.trusted
        by_code = ACCESS_BY_CODE
        for address, pc, requester, code, instructions in zip(
            self._addresses,
            self._pcs,
            self._requesters,
            self._accesses,
            self._instructions,
        ):
            yield trusted(
                address, pc, requester, by_code[code], instructions
            )

    def __len__(self) -> int:
        return len(self._addresses)

    def __getitem__(self, index):
        if isinstance(index, slice):
            if self._frozen:
                return self._slice_frozen(index)
            return Trace._from_columns(
                self._addresses[index],
                self._pcs[index],
                self._requesters[index],
                self._accesses[index],
                self._instructions[index],
                self._n_processors,
                self._name,
            )
        return TraceRecord.trusted(
            self._addresses[index],
            self._pcs[index],
            self._requesters[index],
            ACCESS_BY_CODE[self._accesses[index]],
            self._instructions[index],
        )

    def __repr__(self) -> str:
        return (
            f"Trace(name={self._name!r}, records={len(self)}, "
            f"n_processors={self._n_processors})"
        )

    # ------------------------------------------------------------------
    def _slice_frozen(self, index: slice) -> "Trace":
        """Slice a frozen trace, zero-copy when the step is one.

        Unit-step slices return sub-views of the same mapping — the
        persisted derived columns are element-aligned with the base
        columns, so they slice along for free and ``split_warmup``
        on a mapped trace stays zero-copy.  Strided slices
        materialize private arrays: a strided ``memoryview`` is not
        C-contiguous and must never reach the vectorized or native
        tiers.
        """
        start, stop, step = index.indices(len(self))
        if step != 1:
            return Trace._from_columns(
                array(_ADDR_TYPE, self._addresses[index]),
                array(_ADDR_TYPE, self._pcs[index]),
                array(_NODE_TYPE, self._requesters[index]),
                array(_CODE_TYPE, self._accesses[index]),
                array(_ADDR_TYPE, self._instructions[index]),
                self._n_processors,
                self._name,
            )
        view = slice(start, stop)
        derived_store = None
        if self._derived_store is not None:
            derived_store = {
                segment: column[view]
                for segment, column in self._derived_store.items()
            }
        return Trace._from_buffers(
            self._addresses[view],
            self._pcs[view],
            self._requesters[view],
            self._accesses[view],
            self._instructions[view],
            n_processors=self._n_processors,
            name=self._name,
            source=self._source,
            derived_store=derived_store,
            derived_meta=self._derived_meta,
        )

    def _select_code(self, code: int) -> "Trace":
        out = Trace(n_processors=self._n_processors, name=self._name)
        append = out.append_fields
        for fields in zip(
            self._addresses,
            self._pcs,
            self._requesters,
            self._accesses,
            self._instructions,
        ):
            if fields[3] == code:
                append(*fields)
        return out

    def _check_record(self, record: TraceRecord) -> None:
        if not isinstance(record, TraceRecord):
            raise TypeError(f"expected TraceRecord, got {type(record)}")
        if record.requester >= self._n_processors:
            raise ValueError(
                f"requester {record.requester} outside "
                f"[0, {self._n_processors})"
            )


def merge_round_robin(
    traces: Sequence[Trace], name: Optional[str] = None
) -> Trace:
    """Interleave per-processor traces into one global order.

    Used by workload generators that produce per-processor streams; the
    round-robin interleave models the totally-ordered interconnect's
    arbitration among concurrently issuing processors.
    """
    if not traces:
        raise ValueError("need at least one trace to merge")
    n_processors = traces[0].n_processors
    for trace in traces:
        if trace.n_processors != n_processors:
            raise ValueError("traces disagree on processor count")
    merged = Trace(
        n_processors=n_processors,
        name=name if name is not None else traces[0].name,
    )
    iterators = [iter(t) for t in traces]
    live = list(range(len(iterators)))
    while live:
        still_live = []
        for idx in live:
            try:
                merged.append(next(iterators[idx]))
            except StopIteration:
                continue
            still_live.append(idx)
        live = still_live
    return merged
