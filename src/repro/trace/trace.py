"""In-memory coherence-request trace container."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.common.types import AccessType, NodeId
from repro.trace.record import TraceRecord


class Trace:
    """An ordered sequence of :class:`TraceRecord` with provenance.

    The paper uses the first one million misses to warm caches and
    predictors; :meth:`split_warmup` supports the same protocol.
    """

    def __init__(
        self,
        records: Iterable[TraceRecord] = (),
        n_processors: int = 16,
        name: str = "",
    ):
        if n_processors <= 0:
            raise ValueError("n_processors must be positive")
        self._records: List[TraceRecord] = list(records)
        self._n_processors = n_processors
        self._name = name
        for record in self._records:
            self._check_record(record)

    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        """Processor count of the traced system."""
        return self._n_processors

    @property
    def name(self) -> str:
        """Workload name (e.g. ``"apache"``), for reporting."""
        return self._name

    def append(self, record: TraceRecord) -> None:
        """Append one record (validated against the processor count)."""
        self._check_record(record)
        self._records.append(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        """Append many records."""
        for record in records:
            self.append(record)

    # ------------------------------------------------------------------
    def split_warmup(self, n_warmup: int) -> tuple["Trace", "Trace"]:
        """Split into (warmup, measurement) traces at ``n_warmup``."""
        if n_warmup < 0:
            raise ValueError("n_warmup must be non-negative")
        head = Trace(
            self._records[:n_warmup], self._n_processors, self._name
        )
        tail = Trace(
            self._records[n_warmup:], self._n_processors, self._name
        )
        return head, tail

    def filtered(
        self, predicate: Callable[[TraceRecord], bool]
    ) -> "Trace":
        """A new trace with only records satisfying ``predicate``."""
        return Trace(
            (r for r in self._records if predicate(r)),
            self._n_processors,
            self._name,
        )

    def reads(self) -> "Trace":
        """Only the GETS records."""
        return self.filtered(lambda r: r.access is AccessType.GETS)

    def writes(self) -> "Trace":
        """Only the GETX records."""
        return self.filtered(lambda r: r.access is AccessType.GETX)

    def by_processor(self, node: NodeId) -> "Trace":
        """Only records issued by ``node``."""
        return self.filtered(lambda r: r.requester == node)

    def head(self, n: int) -> "Trace":
        """The first ``n`` records."""
        return Trace(self._records[:n], self._n_processors, self._name)

    def unique_blocks(self, block_size: int) -> int:
        """Number of distinct block addresses touched."""
        return len({r.block(block_size) for r in self._records})

    def unique_pcs(self) -> int:
        """Number of distinct miss PCs."""
        return len({r.pc for r in self._records})

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(
                self._records[index], self._n_processors, self._name
            )
        return self._records[index]

    def __repr__(self) -> str:
        return (
            f"Trace(name={self._name!r}, records={len(self._records)}, "
            f"n_processors={self._n_processors})"
        )

    # ------------------------------------------------------------------
    def _check_record(self, record: TraceRecord) -> None:
        if not isinstance(record, TraceRecord):
            raise TypeError(f"expected TraceRecord, got {type(record)}")
        if record.requester >= self._n_processors:
            raise ValueError(
                f"requester {record.requester} outside "
                f"[0, {self._n_processors})"
            )


def merge_round_robin(
    traces: Sequence[Trace], name: Optional[str] = None
) -> Trace:
    """Interleave per-processor traces into one global order.

    Used by workload generators that produce per-processor streams; the
    round-robin interleave models the totally-ordered interconnect's
    arbitration among concurrently issuing processors.
    """
    if not traces:
        raise ValueError("need at least one trace to merge")
    n_processors = traces[0].n_processors
    for trace in traces:
        if trace.n_processors != n_processors:
            raise ValueError("traces disagree on processor count")
    merged = Trace(
        n_processors=n_processors,
        name=name if name is not None else traces[0].name,
    )
    iterators = [iter(t) for t in traces]
    live = list(range(len(iterators)))
    while live:
        still_live = []
        for idx in live:
            try:
                merged.append(next(iterators[idx]))
            except StopIteration:
                continue
            still_live.append(idx)
        live = still_live
    return merged
