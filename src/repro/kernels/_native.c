/* repro.kernels._native — compiled backend for the replay hot loops
 * (the kernel ABI in repro/kernels/__init__.py):
 *
 *   policy_replay        — mirror of repro.protocols.fused.run_group /
 *                          run_kernel for the five compiled policies
 *                          (Group, Owner, Broadcast-if-shared,
 *                          Owner-group, Sticky-spatial)
 *   timing_pass          — mirror of TimingSimulator._timing_pass_simple
 *   timing_pass_detailed — the same crossbar pass with the detailed
 *                          (bounded-outstanding-miss) processor model
 *   Collector            — mirror of TraceCollector.process_chunk
 *
 * The contract is byte identity with the Python loops: every integer
 * update, LRU stamp, eviction choice and IEEE-754 double operation is
 * replicated in the same order, so ResultSet JSON, predictor-table
 * state and the hex-float timing goldens come out identical.  The
 * equivalence suites are the oracle.
 *
 * Envelope: replay destination-set bitmasks are carried in two uint64
 * words, so policy_replay accepts node counts <= 128; the chunk
 * collector keeps the original <= 62-node single-lane envelope (its
 * sharer masks live in one int64 map value).  Addresses/pcs are
 * non-negative (the trace container's documented invariant) and the
 * index granularity is a power of two (validated by PredictorConfig).
 * Callers in repro/kernels/native.py check the envelope and fall back
 * to the Python tiers otherwise; functions here return None (without
 * touching any Python state) when they meet state outside it, e.g. a
 * key that overflows int64.
 *
 * Column buffers: trace columns arrive as PyArg_ParseTuple "y*"
 * (PyBUF_SIMPLE) buffers, so ANY C-contiguous buffer-protocol object
 * qualifies — stdlib array columns, and equally the read-only
 * memoryview columns of an mmap-backed frozen trace (the v2 trace
 * store, repro/trace/io.py).  Mapped store pages therefore flow into
 * compiled replay with zero copies; nothing here may write through a
 * "y*" buffer (output buffers are parsed "w*").  Non-contiguous views
 * are rejected by the parse itself; the marshal layer declines them
 * first.
 *
 * Threading: every kernel runs in three phases — marshal Python state
 * into C buffers (GIL held), pure-C compute inside
 * Py_BEGIN_ALLOW_THREADS/Py_END_ALLOW_THREADS, and write-back (GIL
 * reacquired).  The compute phases touch no Python objects and
 * allocate only through the PyMem_Raw* family (the GIL-requiring
 * PyMem_* tier must not be called without the GIL); errors discovered
 * mid-compute set a flag and raise after the GIL is back.  Concurrent
 * calls share no module state, so sweep cells can replay on threads
 * in parallel.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Open-addressing int64 hash map (two int64 values per key).          */
/* Keys are non-negative in every use here, so INT64_MIN sentinels     */
/* are safe.                                                           */
/* ------------------------------------------------------------------ */

#define MAP_EMPTY INT64_MIN
#define MAP_TOMB (INT64_MIN + 1)

typedef struct {
    int64_t *keys;
    int64_t *v1;
    int64_t *v2;
    int64_t *v3; /* third lane: high sharer word for wide MOSI state */
    Py_ssize_t cap;  /* power of two */
    Py_ssize_t used; /* live entries */
    Py_ssize_t fill; /* live + tombstones */
} I64Map;

static uint64_t
mix64(uint64_t z)
{
    z += 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

static int
map_init(I64Map *m, Py_ssize_t expect)
{
    Py_ssize_t cap = 16;
    while (cap < expect * 2)
        cap <<= 1;
    m->keys = PyMem_RawMalloc((size_t)cap * sizeof(int64_t));
    m->v1 = PyMem_RawMalloc((size_t)cap * sizeof(int64_t));
    m->v2 = PyMem_RawMalloc((size_t)cap * sizeof(int64_t));
    m->v3 = PyMem_RawMalloc((size_t)cap * sizeof(int64_t));
    if (!m->keys || !m->v1 || !m->v2 || !m->v3) {
        PyMem_RawFree(m->keys);
        PyMem_RawFree(m->v1);
        PyMem_RawFree(m->v2);
        PyMem_RawFree(m->v3);
        m->keys = NULL;
        return -1;
    }
    for (Py_ssize_t i = 0; i < cap; i++)
        m->keys[i] = MAP_EMPTY;
    m->cap = cap;
    m->used = 0;
    m->fill = 0;
    return 0;
}

static void
map_free(I64Map *m)
{
    PyMem_RawFree(m->keys);
    PyMem_RawFree(m->v1);
    PyMem_RawFree(m->v2);
    PyMem_RawFree(m->v3);
    m->keys = NULL;
}

static Py_ssize_t
map_find(const I64Map *m, int64_t key)
{
    uint64_t mask = (uint64_t)m->cap - 1;
    uint64_t i = mix64((uint64_t)key) & mask;
    while (1) {
        int64_t k = m->keys[i];
        if (k == key)
            return (Py_ssize_t)i;
        if (k == MAP_EMPTY)
            return -1;
        i = (i + 1) & mask;
    }
}

static int map_put3(I64Map *m, int64_t key, int64_t v1, int64_t v2,
                    int64_t v3);

static int
map_grow(I64Map *m)
{
    I64Map bigger;
    Py_ssize_t want = m->used ? m->used : 8;
    if (map_init(&bigger, want * 2) < 0)
        return -1;
    for (Py_ssize_t i = 0; i < m->cap; i++) {
        int64_t k = m->keys[i];
        if (k != MAP_EMPTY && k != MAP_TOMB) {
            if (map_put3(&bigger, k, m->v1[i], m->v2[i], m->v3[i]) < 0) {
                map_free(&bigger);
                return -1;
            }
        }
    }
    map_free(m);
    *m = bigger;
    return 0;
}

static int
map_put3(I64Map *m, int64_t key, int64_t v1, int64_t v2, int64_t v3)
{
    if ((m->fill + 1) * 10 >= m->cap * 7) {
        if (map_grow(m) < 0)
            return -1;
    }
    uint64_t mask = (uint64_t)m->cap - 1;
    uint64_t i = mix64((uint64_t)key) & mask;
    Py_ssize_t tomb = -1;
    while (1) {
        int64_t k = m->keys[i];
        if (k == key) {
            m->v1[i] = v1;
            m->v2[i] = v2;
            m->v3[i] = v3;
            return 0;
        }
        if (k == MAP_TOMB) {
            if (tomb < 0)
                tomb = (Py_ssize_t)i;
        }
        else if (k == MAP_EMPTY) {
            if (tomb >= 0) {
                i = (uint64_t)tomb;
            }
            else {
                m->fill++;
            }
            m->keys[i] = key;
            m->v1[i] = v1;
            m->v2[i] = v2;
            m->v3[i] = v3;
            m->used++;
            return 0;
        }
        i = (i + 1) & mask;
    }
}

static int
map_put(I64Map *m, int64_t key, int64_t v1, int64_t v2)
{
    return map_put3(m, key, v1, v2, 0);
}

static void
map_del_at(I64Map *m, Py_ssize_t slot)
{
    m->keys[slot] = MAP_TOMB;
    m->used--;
}

/* Exact int64 from a PyLong; *overflow set when it does not fit (the
 * caller then falls back to the Python tier — the int64 overflow
 * guard the dtype-edge satellite pins). */
static int64_t
as_i64(PyObject *obj, int *overflow)
{
    int of = 0;
    long long v = PyLong_AsLongLongAndOverflow(obj, &of);
    if (of || (v == -1 && PyErr_Occurred())) {
        PyErr_Clear();
        *overflow = 1;
        return 0;
    }
    return (int64_t)v;
}

/* Exact non-negative value < 2^128 from a PyLong into two uint64
 * words (the two-lane destination-set representation).  Returns 0,
 * 1 for "outside the envelope: fall back" (no error set), or -1 with
 * a Python error set. */
static int
as_u128(PyObject *obj, uint64_t *lo, uint64_t *hi)
{
    int of = 0;
    long long v = PyLong_AsLongLongAndOverflow(obj, &of);
    if (of == 0) {
        if (v == -1 && PyErr_Occurred()) {
            PyErr_Clear();
            return 1; /* not an integer */
        }
        if (v < 0)
            return 1;
        *lo = (uint64_t)v;
        *hi = 0;
        return 0;
    }
    if (of < 0)
        return 1;
    /* Overflow can only happen for a real int, so PyNumber shifts are
     * safe from here on. */
    int rc = -1;
    PyObject *shift = NULL, *hiobj = NULL, *topobj = NULL;
    shift = PyLong_FromLong(64);
    if (!shift)
        goto done;
    hiobj = PyNumber_Rshift(obj, shift);
    if (!hiobj)
        goto done;
    topobj = PyNumber_Rshift(hiobj, shift);
    if (!topobj)
        goto done;
    int top = PyObject_IsTrue(topobj);
    if (top < 0)
        goto done;
    if (top) {
        rc = 1; /* >= 2^128 */
        goto done;
    }
    *hi = PyLong_AsUnsignedLongLongMask(hiobj);
    *lo = PyLong_AsUnsignedLongLongMask(obj);
    if (PyErr_Occurred()) {
        PyErr_Clear();
        rc = 1;
        goto done;
    }
    rc = 0;
done:
    Py_XDECREF(shift);
    Py_XDECREF(hiobj);
    Py_XDECREF(topobj);
    return rc;
}

/* Rebuild the PyLong (lo | hi << 64).  NULL with an error set on
 * failure. */
static PyObject *
u128_to_pylong(uint64_t lo, uint64_t hi)
{
    if (hi == 0)
        return PyLong_FromUnsignedLongLong((unsigned long long)lo);
    PyObject *hiobj = PyLong_FromUnsignedLongLong((unsigned long long)hi);
    PyObject *shift = hiobj ? PyLong_FromLong(64) : NULL;
    PyObject *shifted = shift ? PyNumber_Lshift(hiobj, shift) : NULL;
    PyObject *loobj =
        shifted ? PyLong_FromUnsignedLongLong((unsigned long long)lo) : NULL;
    PyObject *result = loobj ? PyNumber_Or(shifted, loobj) : NULL;
    Py_XDECREF(hiobj);
    Py_XDECREF(shift);
    Py_XDECREF(shifted);
    Py_XDECREF(loobj);
    return result;
}

/* Two-lane bitmask helpers (nodes 0..63 in lo, 64..127 in hi). */
static inline void
bit128_set(uint64_t *lo, uint64_t *hi, int node)
{
    if (node < 64)
        *lo |= (uint64_t)1 << node;
    else
        *hi |= (uint64_t)1 << (node - 64);
}

static inline int64_t
popcount128(uint64_t lo, uint64_t hi)
{
    return (int64_t)(__builtin_popcountll(lo) + __builtin_popcountll(hi));
}

/* Python's floored %, for sticky-spatial neighbour indexes which can
 * be -1 (m is always > 0 here). */
static inline int64_t
floormod64(int64_t x, int64_t m)
{
    int64_t r = x % m;
    return r < 0 ? r + m : r;
}

/* ------------------------------------------------------------------ */
/* timing_pass: mirror of TimingSimulator._timing_pass_simple.         */
/* ------------------------------------------------------------------ */

static PyObject *
timing_pass(PyObject *self, PyObject *args)
{
    Py_buffer req, instr, lat, tb, clocks, link;
    double bandwidth, per_ns, queue_ns;

    if (!PyArg_ParseTuple(args, "y*y*y*y*w*w*ddd", &req, &instr, &lat,
                          &tb, &clocks, &link, &bandwidth, &per_ns,
                          &queue_ns))
        return NULL;

    PyObject *result = NULL;
    Py_ssize_t n = lat.len / (Py_ssize_t)sizeof(double);
    if (req.len != n * (Py_ssize_t)sizeof(int32_t)
        || instr.len != n * (Py_ssize_t)sizeof(int64_t)
        || tb.len != n * (Py_ssize_t)sizeof(int64_t)) {
        PyErr_SetString(PyExc_ValueError, "timing_pass: column length mismatch");
        goto done;
    }

    {
        const int32_t *reqs = req.buf;
        const int64_t *gaps = instr.buf;
        const double *lats = lat.buf;
        const int64_t *tbs = tb.buf;
        double *clk = clocks.buf;
        double *lnk = link.buf;
        Py_ssize_t nodes = clocks.len / (Py_ssize_t)sizeof(double);
        int64_t carried = 0;
        int bad = 0;

        Py_BEGIN_ALLOW_THREADS
        for (Py_ssize_t i = 0; i < n; i++) {
            int32_t r = reqs[i];
            if (r < 0 || r >= nodes) {
                bad = 1;
                break;
            }
            double issue = clk[r] + (double)gaps[i] / per_ns;
            double free_ns = lnk[r];
            double start = issue >= free_ns ? issue : free_ns;
            queue_ns += start - issue;
            double finish = start + (double)tbs[i] / bandwidth;
            lnk[r] = finish;
            carried += tbs[i];
            double link_delay = finish - issue;
            double base = lats[i];
            double completion =
                issue + (base > link_delay ? base : link_delay);
            clk[r] = issue >= completion ? issue : completion;
        }
        Py_END_ALLOW_THREADS
        if (bad) {
            PyErr_SetString(PyExc_ValueError,
                            "timing_pass: requester out of range");
            goto done;
        }
        result = Py_BuildValue("dL", queue_ns, (long long)carried);
    }

done:
    PyBuffer_Release(&req);
    PyBuffer_Release(&instr);
    PyBuffer_Release(&lat);
    PyBuffer_Release(&tb);
    PyBuffer_Release(&clocks);
    PyBuffer_Release(&link);
    return result;
}

/* ------------------------------------------------------------------ */
/* timing_pass_detailed: the crossbar pass with the detailed           */
/* (bounded-outstanding-miss) processor model.  The per-processor      */
/* min-heaps replicate CPython's heapq sift algorithms exactly so the  */
/* heap lists written back compare equal element-for-element.          */
/* ------------------------------------------------------------------ */

static void
heap_siftdown(double *h, Py_ssize_t startpos, Py_ssize_t pos)
{
    double newitem = h[pos];
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        double parent = h[parentpos];
        if (newitem < parent) {
            h[pos] = parent;
            pos = parentpos;
            continue;
        }
        break;
    }
    h[pos] = newitem;
}

static void
heap_siftup(double *h, Py_ssize_t endpos, Py_ssize_t pos)
{
    Py_ssize_t startpos = pos;
    double newitem = h[pos];
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos && !(h[childpos] < h[rightpos]))
            childpos = rightpos;
        h[pos] = h[childpos];
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    h[pos] = newitem;
    heap_siftdown(h, startpos, pos);
}

static void
heappush_d(double *h, int32_t *len, double item)
{
    h[*len] = item;
    (*len)++;
    heap_siftdown(h, 0, (Py_ssize_t)*len - 1);
}

static double
heappop_d(double *h, int32_t *len)
{
    double lastelt = h[--(*len)];
    if (*len) {
        double returnitem = h[0];
        h[0] = lastelt;
        heap_siftup(h, (Py_ssize_t)*len, 0);
        return returnitem;
    }
    return lastelt;
}

static PyObject *
timing_pass_detailed(PyObject *self, PyObject *args)
{
    Py_buffer req, instr, lat, tb, clocks, link, heaps, hlens;
    int max_out;
    double bandwidth, per_ns, queue_ns;

    if (!PyArg_ParseTuple(args, "y*y*y*y*w*w*w*w*iddd", &req, &instr,
                          &lat, &tb, &clocks, &link, &heaps, &hlens,
                          &max_out, &bandwidth, &per_ns, &queue_ns))
        return NULL;

    PyObject *result = NULL;
    Py_ssize_t n = lat.len / (Py_ssize_t)sizeof(double);
    Py_ssize_t nodes = clocks.len / (Py_ssize_t)sizeof(double);
    if (req.len != n * (Py_ssize_t)sizeof(int32_t)
        || instr.len != n * (Py_ssize_t)sizeof(int64_t)
        || tb.len != n * (Py_ssize_t)sizeof(int64_t)
        || link.len != nodes * (Py_ssize_t)sizeof(double)
        || hlens.len != nodes * (Py_ssize_t)sizeof(int32_t)
        || heaps.len != nodes * max_out * (Py_ssize_t)sizeof(double)
        || max_out <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "timing_pass_detailed: column length mismatch");
        goto done;
    }

    {
        const int32_t *reqs = req.buf;
        const int64_t *gaps = instr.buf;
        const double *lats = lat.buf;
        const int64_t *tbs = tb.buf;
        double *clk = clocks.buf;
        double *lnk = link.buf;
        double *heap_base = heaps.buf;
        int32_t *hlen = hlens.buf;
        int64_t carried = 0;
        int bad = 0;

        Py_BEGIN_ALLOW_THREADS
        for (Py_ssize_t i = 0; i < n; i++) {
            int32_t r = reqs[i];
            if (r < 0 || r >= nodes) {
                bad = 1;
                break;
            }
            double *h = heap_base + (Py_ssize_t)r * max_out;
            int32_t *len = &hlen[r];
            if (*len < 0 || *len > max_out) {
                bad = 2;
                break;
            }
            /* ProcessorModel.compute + DetailedProcessorModel.issue_miss */
            clk[r] += (double)gaps[i] / per_ns;
            while (*len && h[0] <= clk[r])
                heappop_d(h, len);
            while (*len >= max_out) {
                double v = heappop_d(h, len);
                if (v > clk[r])
                    clk[r] = v;
            }
            double issue = clk[r];
            /* CrossbarInterconnect.acquire */
            double free_ns = lnk[r];
            double start = issue >= free_ns ? issue : free_ns;
            queue_ns += start - issue;
            double finish = start + (double)tbs[i] / bandwidth;
            lnk[r] = finish;
            carried += tbs[i];
            double link_delay = finish - issue;
            double base = lats[i];
            double completion =
                issue + (base > link_delay ? base : link_delay);
            /* DetailedProcessorModel.complete_miss */
            heappush_d(h, len, completion);
        }
        Py_END_ALLOW_THREADS
        if (bad) {
            PyErr_SetString(
                PyExc_ValueError,
                bad == 1 ? "timing_pass_detailed: requester out of range"
                         : "timing_pass_detailed: heap length out of range");
            goto done;
        }
        result = Py_BuildValue("dL", queue_ns, (long long)carried);
    }

done:
    PyBuffer_Release(&req);
    PyBuffer_Release(&instr);
    PyBuffer_Release(&lat);
    PyBuffer_Release(&tb);
    PyBuffer_Release(&clocks);
    PyBuffer_Release(&link);
    PyBuffer_Release(&heaps);
    PyBuffer_Release(&hlens);
    return result;
}

/* ------------------------------------------------------------------ */
/* policy_replay: mirror of repro.protocols.fused.run_group /          */
/* run_kernel for the five compiled predictor policies.                */
/* ------------------------------------------------------------------ */

/* Entry payload kinds for the shared PredictorTable pool. */
#define PT_GROUP 0 /* counters[n_nodes], rollover, bits (two lanes) */
#define PT_OWNER 1 /* owner, valid */
#define PT_BIFS 2  /* counter */

typedef struct {
    I64Map map; /* key -> pool index (v1; v2/v3 unused) */
    int kind;
    int32_t *counters; /* PT_GROUP: pool_cap * n_nodes */
    int32_t *rollover; /* PT_GROUP */
    uint64_t *bits_lo; /* PT_GROUP */
    uint64_t *bits_hi; /* PT_GROUP */
    int32_t *owner;    /* PT_OWNER */
    uint8_t *valid;    /* PT_OWNER */
    int32_t *counter;  /* PT_BIFS */
    int64_t *stamps;
    int64_t *ekeys;
    uint8_t *live;
    Py_ssize_t pool_cap;
    Py_ssize_t pool_len;
    int32_t *free_list;
    Py_ssize_t free_len;
    int32_t *buckets; /* n_sets * assoc (bounded only) */
    int32_t *bucket_len;
    int64_t n_sets;
    int64_t assoc;
    int bounded;
    int64_t tick;
    int64_t n_alloc;
    int64_t n_evict;
} GTable;

static void
gtable_zero(GTable *t)
{
    memset(t, 0, sizeof(*t));
}

static void
gtable_free(GTable *t)
{
    if (t->map.keys)
        map_free(&t->map);
    PyMem_RawFree(t->counters);
    PyMem_RawFree(t->rollover);
    PyMem_RawFree(t->bits_lo);
    PyMem_RawFree(t->bits_hi);
    PyMem_RawFree(t->owner);
    PyMem_RawFree(t->valid);
    PyMem_RawFree(t->counter);
    PyMem_RawFree(t->stamps);
    PyMem_RawFree(t->ekeys);
    PyMem_RawFree(t->live);
    PyMem_RawFree(t->free_list);
    PyMem_RawFree(t->buckets);
    PyMem_RawFree(t->bucket_len);
    gtable_zero(t);
}

static int
gtable_reserve(GTable *t, Py_ssize_t cap, int n_nodes)
{
    if (cap <= t->pool_cap)
        return 0;
    if (t->kind == PT_GROUP) {
        int32_t *counters = PyMem_RawRealloc(
            t->counters, (size_t)cap * n_nodes * sizeof(int32_t));
        if (!counters)
            return -1;
        t->counters = counters;
        int32_t *rollover =
            PyMem_RawRealloc(t->rollover, (size_t)cap * sizeof(int32_t));
        if (!rollover)
            return -1;
        t->rollover = rollover;
        uint64_t *bits_lo =
            PyMem_RawRealloc(t->bits_lo, (size_t)cap * sizeof(uint64_t));
        if (!bits_lo)
            return -1;
        t->bits_lo = bits_lo;
        uint64_t *bits_hi =
            PyMem_RawRealloc(t->bits_hi, (size_t)cap * sizeof(uint64_t));
        if (!bits_hi)
            return -1;
        t->bits_hi = bits_hi;
    }
    else if (t->kind == PT_OWNER) {
        int32_t *owner =
            PyMem_RawRealloc(t->owner, (size_t)cap * sizeof(int32_t));
        if (!owner)
            return -1;
        t->owner = owner;
        uint8_t *valid = PyMem_RawRealloc(t->valid, (size_t)cap);
        if (!valid)
            return -1;
        t->valid = valid;
    }
    else {
        int32_t *counter =
            PyMem_RawRealloc(t->counter, (size_t)cap * sizeof(int32_t));
        if (!counter)
            return -1;
        t->counter = counter;
    }
    int64_t *stamps = PyMem_RawRealloc(t->stamps, (size_t)cap * sizeof(int64_t));
    if (!stamps)
        return -1;
    t->stamps = stamps;
    int64_t *ekeys = PyMem_RawRealloc(t->ekeys, (size_t)cap * sizeof(int64_t));
    if (!ekeys)
        return -1;
    t->ekeys = ekeys;
    uint8_t *live = PyMem_RawRealloc(t->live, (size_t)cap);
    if (!live)
        return -1;
    t->live = live;
    int32_t *free_list =
        PyMem_RawRealloc(t->free_list, (size_t)cap * sizeof(int32_t));
    if (!free_list)
        return -1;
    t->free_list = free_list;
    t->pool_cap = cap;
    return 0;
}

/* New zeroed entry (from the free list or the pool tail). */
static int32_t
gtable_new_entry(GTable *t, int n_nodes)
{
    int32_t e;
    if (t->free_len > 0) {
        e = t->free_list[--t->free_len];
    }
    else {
        if (t->pool_len >= t->pool_cap) {
            if (gtable_reserve(t, t->pool_cap * 2, n_nodes) < 0)
                return -1;
        }
        e = (int32_t)t->pool_len++;
    }
    if (t->kind == PT_GROUP) {
        memset(t->counters + (size_t)e * n_nodes, 0,
               (size_t)n_nodes * sizeof(int32_t));
        t->rollover[e] = 0;
        t->bits_lo[e] = 0;
        t->bits_hi[e] = 0;
    }
    else if (t->kind == PT_OWNER) {
        t->owner[e] = 0;
        t->valid[e] = 0;
    }
    else {
        t->counter[e] = 0;
    }
    t->live[e] = 1;
    return e;
}

/* PredictorTable.lookup_allocate for a key known to be absent. */
static int32_t
gtable_allocate(GTable *t, int64_t key, int n_nodes)
{
    if (t->bounded) {
        int64_t sidx = key % t->n_sets;
        int32_t *bucket = t->buckets + sidx * t->assoc;
        int32_t blen = t->bucket_len[sidx];
        if (blen >= t->assoc) {
            /* victim = first strictly-minimal stamp, matching
             * min(bucket, key=stamps.__getitem__) */
            int32_t pos = 0;
            int64_t best = t->stamps[bucket[0]];
            for (int32_t j = 1; j < blen; j++) {
                int64_t s = t->stamps[bucket[j]];
                if (s < best) {
                    best = s;
                    pos = j;
                }
            }
            int32_t victim = bucket[pos];
            memmove(bucket + pos, bucket + pos + 1,
                    (size_t)(blen - 1 - pos) * sizeof(int32_t));
            blen--;
            Py_ssize_t slot = map_find(&t->map, t->ekeys[victim]);
            if (slot >= 0)
                map_del_at(&t->map, slot);
            t->live[victim] = 0;
            t->free_list[t->free_len++] = victim;
            t->n_evict++;
        }
        int32_t e = gtable_new_entry(t, n_nodes);
        if (e < 0)
            return -1;
        bucket[blen] = e;
        t->bucket_len[sidx] = blen + 1;
        t->stamps[e] = t->tick++;
        t->ekeys[e] = key;
        if (map_put(&t->map, key, e, 0) < 0)
            return -1;
        t->n_alloc++;
        return e;
    }
    int32_t e = gtable_new_entry(t, n_nodes);
    if (e < 0)
        return -1;
    t->ekeys[e] = key;
    if (map_put(&t->map, key, e, 0) < 0)
        return -1;
    t->n_alloc++;
    return e;
}

/* Load one PredictorTable into native form.  Returns 0, or 1 for
 * "outside the envelope: fall back" (no error set), or -1 with a
 * Python error set. */
static int
gtable_load(GTable *t, PyObject *table, int n_nodes)
{
    int rc = -1;
    PyObject *entries = NULL, *stamps = NULL, *set_keys = NULL;
    PyObject *tmp = NULL;

    entries = PyObject_GetAttrString(table, "_entries");
    if (!entries)
        goto fail;
    if (!PyDict_CheckExact(entries))
        goto envelope;

    tmp = PyObject_GetAttrString(table, "_bounded");
    if (!tmp)
        goto fail;
    t->bounded = PyObject_IsTrue(tmp);
    Py_CLEAR(tmp);

#define GET_I64(attr, dest)                                               \
    do {                                                                  \
        tmp = PyObject_GetAttrString(table, attr);                        \
        if (!tmp)                                                         \
            goto fail;                                                    \
        int _of = 0;                                                      \
        (dest) = as_i64(tmp, &_of);                                       \
        Py_CLEAR(tmp);                                                    \
        if (_of)                                                          \
            goto envelope;                                                \
    } while (0)

    GET_I64("_n_sets", t->n_sets);
    GET_I64("_assoc", t->assoc);
    GET_I64("_tick", t->tick);
    GET_I64("n_allocations", t->n_alloc);
    GET_I64("n_evictions", t->n_evict);
#undef GET_I64

    if (t->bounded) {
        if (t->n_sets <= 0 || t->assoc <= 0 || t->assoc > INT32_MAX
            || t->n_sets > (int64_t)1 << 32)
            goto envelope;
        stamps = PyObject_GetAttrString(table, "_stamps");
        set_keys = PyObject_GetAttrString(table, "_set_keys");
        if (!stamps || !set_keys)
            goto fail;
        if (!PyDict_CheckExact(stamps) || !PyDict_CheckExact(set_keys))
            goto envelope;
        t->buckets =
            PyMem_RawMalloc((size_t)(t->n_sets * t->assoc) * sizeof(int32_t));
        t->bucket_len = PyMem_RawCalloc((size_t)t->n_sets, sizeof(int32_t));
        if (!t->buckets || !t->bucket_len) {
            PyErr_NoMemory();
            goto fail;
        }
    }

    Py_ssize_t n_entries = PyDict_Size(entries);
    if (map_init(&t->map, n_entries + 8) < 0) {
        PyErr_NoMemory();
        goto fail;
    }
    if (gtable_reserve(t, n_entries + 16, n_nodes) < 0) {
        PyErr_NoMemory();
        goto fail;
    }

    PyObject *keyobj, *entry;
    Py_ssize_t pos = 0;
    while (PyDict_Next(entries, &pos, &keyobj, &entry)) {
        int of = 0;
        int64_t key = as_i64(keyobj, &of);
        if (of || key < 0)
            goto envelope;
        int32_t e = (int32_t)t->pool_len++;
        t->ekeys[e] = key;
        t->live[e] = 1;

        if (t->kind == PT_GROUP) {
            tmp = PyObject_GetAttrString(entry, "counters");
            if (!tmp)
                goto fail;
            if (!PyList_CheckExact(tmp) || PyList_GET_SIZE(tmp) != n_nodes)
                goto envelope;
            for (int j = 0; j < n_nodes; j++) {
                int64_t v = as_i64(PyList_GET_ITEM(tmp, j), &of);
                if (of || v < 0 || v > INT32_MAX)
                    goto envelope;
                t->counters[(size_t)e * n_nodes + j] = (int32_t)v;
            }
            Py_CLEAR(tmp);

            tmp = PyObject_GetAttrString(entry, "rollover");
            if (!tmp)
                goto fail;
            int64_t ro = as_i64(tmp, &of);
            Py_CLEAR(tmp);
            if (of || ro < 0 || ro > INT32_MAX)
                goto envelope;
            t->rollover[e] = (int32_t)ro;

            tmp = PyObject_GetAttrString(entry, "bits");
            if (!tmp)
                goto fail;
            uint64_t blo = 0, bhi = 0;
            int brc = as_u128(tmp, &blo, &bhi);
            Py_CLEAR(tmp);
            if (brc < 0)
                goto fail;
            if (brc > 0)
                goto envelope;
            t->bits_lo[e] = blo;
            t->bits_hi[e] = bhi;
        }
        else if (t->kind == PT_OWNER) {
            tmp = PyObject_GetAttrString(entry, "owner");
            if (!tmp)
                goto fail;
            int64_t ov = as_i64(tmp, &of);
            Py_CLEAR(tmp);
            if (of || ov < 0 || ov >= n_nodes)
                goto envelope;
            t->owner[e] = (int32_t)ov;

            tmp = PyObject_GetAttrString(entry, "valid");
            if (!tmp)
                goto fail;
            int truth = PyObject_IsTrue(tmp);
            Py_CLEAR(tmp);
            if (truth < 0)
                goto fail;
            t->valid[e] = (uint8_t)truth;
        }
        else {
            tmp = PyObject_GetAttrString(entry, "counter");
            if (!tmp)
                goto fail;
            int64_t cv = as_i64(tmp, &of);
            Py_CLEAR(tmp);
            if (of || cv < 0 || cv > INT32_MAX)
                goto envelope;
            t->counter[e] = (int32_t)cv;
        }

        if (t->bounded) {
            PyObject *stampobj = PyDict_GetItem(stamps, keyobj);
            if (!stampobj)
                goto envelope;
            t->stamps[e] = as_i64(stampobj, &of);
            if (of)
                goto envelope;
        }
        if (map_put(&t->map, key, e, 0) < 0) {
            PyErr_NoMemory();
            goto fail;
        }
    }

    if (t->bounded) {
        PyObject *sidxobj, *bucketlist;
        pos = 0;
        while (PyDict_Next(set_keys, &pos, &sidxobj, &bucketlist)) {
            int of = 0;
            int64_t sidx = as_i64(sidxobj, &of);
            if (of || sidx < 0 || sidx >= t->n_sets)
                goto envelope;
            if (!PyList_CheckExact(bucketlist))
                goto envelope;
            Py_ssize_t blen = PyList_GET_SIZE(bucketlist);
            if (blen > t->assoc)
                goto envelope;
            for (Py_ssize_t j = 0; j < blen; j++) {
                int64_t k = as_i64(PyList_GET_ITEM(bucketlist, j), &of);
                if (of)
                    goto envelope;
                Py_ssize_t slot = map_find(&t->map, k);
                if (slot < 0)
                    goto envelope;
                t->buckets[sidx * t->assoc + j] = (int32_t)t->map.v1[slot];
            }
            t->bucket_len[sidx] = (int32_t)blen;
        }
    }

    rc = 0;
    goto done;
envelope:
    rc = 1;
done:
fail:
    Py_XDECREF(tmp);
    Py_XDECREF(entries);
    Py_XDECREF(stamps);
    Py_XDECREF(set_keys);
    return rc;
}

/* Write native table state back into the PredictorTable (same dict
 * objects, refilled).  Returns 0 / -1. */
static int
gtable_sync(GTable *t, PyObject *table, PyObject *factory, int n_nodes)
{
    int rc = -1;
    PyObject *entries = NULL, *stamps = NULL, *set_keys = NULL;
    PyObject *keyobj = NULL, *entry = NULL, *tmp = NULL;

    entries = PyObject_GetAttrString(table, "_entries");
    stamps = PyObject_GetAttrString(table, "_stamps");
    set_keys = PyObject_GetAttrString(table, "_set_keys");
    if (!entries || !stamps || !set_keys)
        goto done;
    PyDict_Clear(entries);
    PyDict_Clear(stamps);
    PyDict_Clear(set_keys);

    for (Py_ssize_t e = 0; e < t->pool_len; e++) {
        if (!t->live[e])
            continue;
        keyobj = PyLong_FromLongLong((long long)t->ekeys[e]);
        if (!keyobj)
            goto done;
        entry = PyObject_CallObject(factory, NULL);
        if (!entry)
            goto done;
        if (t->kind == PT_GROUP) {
            tmp = PyObject_GetAttrString(entry, "counters");
            if (!tmp || !PyList_CheckExact(tmp)
                || PyList_GET_SIZE(tmp) != n_nodes) {
                if (tmp && !PyErr_Occurred())
                    PyErr_SetString(
                        PyExc_TypeError,
                        "entry factory produced unexpected counters");
                goto done;
            }
            const int32_t *row = t->counters + (size_t)e * n_nodes;
            for (int j = 0; j < n_nodes; j++) {
                if (row[j] == 0)
                    continue; /* factory entries start at 0 */
                PyObject *v = PyLong_FromLong((long)row[j]);
                if (!v)
                    goto done;
                PyList_SetItem(tmp, j, v); /* steals v */
            }
            Py_CLEAR(tmp);
            if (t->rollover[e] != 0) {
                tmp = PyLong_FromLong((long)t->rollover[e]);
                if (!tmp
                    || PyObject_SetAttrString(entry, "rollover", tmp) < 0)
                    goto done;
                Py_CLEAR(tmp);
            }
            if (t->bits_lo[e] != 0 || t->bits_hi[e] != 0) {
                tmp = u128_to_pylong(t->bits_lo[e], t->bits_hi[e]);
                if (!tmp || PyObject_SetAttrString(entry, "bits", tmp) < 0)
                    goto done;
                Py_CLEAR(tmp);
            }
        }
        else if (t->kind == PT_OWNER) {
            if (t->owner[e] != 0) {
                tmp = PyLong_FromLong((long)t->owner[e]);
                if (!tmp || PyObject_SetAttrString(entry, "owner", tmp) < 0)
                    goto done;
                Py_CLEAR(tmp);
            }
            if (t->valid[e]
                && PyObject_SetAttrString(entry, "valid", Py_True) < 0)
                goto done;
        }
        else {
            if (t->counter[e] != 0) {
                tmp = PyLong_FromLong((long)t->counter[e]);
                if (!tmp
                    || PyObject_SetAttrString(entry, "counter", tmp) < 0)
                    goto done;
                Py_CLEAR(tmp);
            }
        }
        if (PyDict_SetItem(entries, keyobj, entry) < 0)
            goto done;
        if (t->bounded) {
            tmp = PyLong_FromLongLong((long long)t->stamps[e]);
            if (!tmp || PyDict_SetItem(stamps, keyobj, tmp) < 0)
                goto done;
            Py_CLEAR(tmp);
        }
        Py_CLEAR(keyobj);
        Py_CLEAR(entry);
    }

    if (t->bounded) {
        for (int64_t s = 0; s < t->n_sets; s++) {
            int32_t blen = t->bucket_len[s];
            if (blen == 0)
                continue;
            PyObject *bucketlist = PyList_New(blen);
            if (!bucketlist)
                goto done;
            for (int32_t j = 0; j < blen; j++) {
                PyObject *k = PyLong_FromLongLong(
                    (long long)t->ekeys[t->buckets[s * t->assoc + j]]);
                if (!k) {
                    Py_DECREF(bucketlist);
                    goto done;
                }
                PyList_SET_ITEM(bucketlist, j, k);
            }
            keyobj = PyLong_FromLongLong((long long)s);
            if (!keyobj
                || PyDict_SetItem(set_keys, keyobj, bucketlist) < 0) {
                Py_DECREF(bucketlist);
                goto done;
            }
            Py_DECREF(bucketlist);
            Py_CLEAR(keyobj);
        }
    }

#define SET_I64(attr, value)                                              \
    do {                                                                  \
        tmp = PyLong_FromLongLong((long long)(value));                    \
        if (!tmp || PyObject_SetAttrString(table, attr, tmp) < 0)         \
            goto done;                                                    \
        Py_CLEAR(tmp);                                                    \
    } while (0)

    SET_I64("_tick", t->tick);
    SET_I64("n_allocations", t->n_alloc);
    SET_I64("n_evictions", t->n_evict);
#undef SET_I64

    rc = 0;
done:
    Py_XDECREF(tmp);
    Py_XDECREF(keyobj);
    Py_XDECREF(entry);
    Py_XDECREF(entries);
    Py_XDECREF(stamps);
    Py_XDECREF(set_keys);
    return rc;
}

/* Load a MOSI state dict {block: (owner, sharers)} into a map.  The
 * sharer mask spans v2 (low word) and v3 (high word); allow_wide=0
 * keeps the collector's original single-lane (<= 62-node) envelope.
 * Returns 0 / 1 (envelope) / -1 (error). */
static int
mosi_load(I64Map *m, PyObject *state, int n_nodes, int allow_wide)
{
    if (!PyDict_CheckExact(state))
        return 1;
    if (map_init(m, PyDict_Size(state) + 8) < 0) {
        PyErr_NoMemory();
        return -1;
    }
    PyObject *keyobj, *packed;
    Py_ssize_t pos = 0;
    while (PyDict_Next(state, &pos, &keyobj, &packed)) {
        int of = 0;
        int64_t block = as_i64(keyobj, &of);
        if (of || block < 0)
            return 1;
        if (!PyTuple_CheckExact(packed) || PyTuple_GET_SIZE(packed) != 2)
            return 1;
        int64_t owner = as_i64(PyTuple_GET_ITEM(packed, 0), &of);
        if (of || owner < -1 || owner >= n_nodes)
            return 1;
        uint64_t sh_lo = 0, sh_hi = 0;
        int rc = as_u128(PyTuple_GET_ITEM(packed, 1), &sh_lo, &sh_hi);
        if (rc < 0)
            return -1;
        if (rc > 0)
            return 1;
        if (!allow_wide && (sh_hi != 0 || sh_lo > (uint64_t)INT64_MAX))
            return 1;
        if (map_put3(m, block, owner, (int64_t)sh_lo, (int64_t)sh_hi) < 0) {
            PyErr_NoMemory();
            return -1;
        }
    }
    return 0;
}

/* Refill the MOSI state dict from the map.  Returns 0 / -1. */
static int
mosi_sync(I64Map *m, PyObject *state)
{
    PyDict_Clear(state);
    for (Py_ssize_t i = 0; i < m->cap; i++) {
        int64_t k = m->keys[i];
        if (k == MAP_EMPTY || k == MAP_TOMB)
            continue;
        PyObject *keyobj = PyLong_FromLongLong((long long)k);
        PyObject *ownerobj =
            keyobj ? PyLong_FromLongLong((long long)m->v1[i]) : NULL;
        PyObject *sharersobj =
            ownerobj ? u128_to_pylong((uint64_t)m->v2[i], (uint64_t)m->v3[i])
                     : NULL;
        PyObject *packed =
            sharersobj ? PyTuple_Pack(2, ownerobj, sharersobj) : NULL;
        Py_XDECREF(ownerobj);
        Py_XDECREF(sharersobj);
        if (!packed || PyDict_SetItem(state, keyobj, packed) < 0) {
            Py_XDECREF(keyobj);
            Py_XDECREF(packed);
            return -1;
        }
        Py_DECREF(keyobj);
        Py_DECREF(packed);
    }
    return 0;
}

/* GroupPredictor._train's decay branch (rollover wrap). */
static void
group_decay(GTable *t, int32_t e, int n_nodes, int32_t thr)
{
    t->rollover[e] = 0;
    uint64_t lo = 0, hi = 0;
    int32_t *row = t->counters + (size_t)e * n_nodes;
    for (int j = 0; j < n_nodes; j++) {
        int32_t v = row[j];
        if (v > 0) {
            v--;
            row[j] = v;
        }
        if (v > thr)
            bit128_set(&lo, &hi, j);
    }
    t->bits_lo[e] = lo;
    t->bits_hi[e] = hi;
}

/* GroupPredictor._train for one training event at `node`. */
static void
group_train(GTable *t, int32_t e, int32_t node, int n_nodes, int32_t cmax,
            int32_t thr, int32_t rperiod, int tdown)
{
    int32_t *row = t->counters + (size_t)e * n_nodes;
    int32_t c = row[node];
    if (c < cmax) {
        row[node] = c + 1;
        if (c == thr)
            bit128_set(&t->bits_lo[e], &t->bits_hi[e], node);
    }
    if (tdown) {
        int32_t ro = t->rollover[e] + 1;
        if (ro < rperiod)
            t->rollover[e] = ro;
        else
            group_decay(t, e, n_nodes, thr);
    }
}

/* The compiled policy ids, mirrored in repro/kernels/native.py. */
#define POLICY_GROUP 0
#define POLICY_OWNER 1
#define POLICY_BIFS 2
#define POLICY_OWNER_GROUP 3
#define POLICY_STICKY 4

/* The fused external-training flush (FusedKernel.train_external) for
 * one pending batch, iterating set bits lowest-first across the two
 * mask lanes exactly like the Python closures.  tA is the policy's
 * primary table array; tB is the group half of Owner-group. */
static void
policy_flush(int policy, GTable *tA, GTable *tB, uint64_t mask_lo,
             uint64_t mask_hi, int64_t fkey, int32_t freq, int32_t fcode,
             int64_t count, int n_nodes, int32_t cmax, int32_t thr,
             int32_t rperiod, int tdown)
{
    if (policy == POLICY_OWNER && !fcode)
        return; /* owner training ignores external read requests */
    for (int word = 0; word < 2; word++) {
        uint64_t mask = word ? mask_hi : mask_lo;
        int base = word ? 64 : 0;
        while (mask) {
            uint64_t low = mask & (~mask + 1);
            mask ^= low;
            int node = base + __builtin_ctzll(low);
            GTable *t = &tA[node];
            Py_ssize_t slot;
            int32_t e;
            switch (policy) {
            case POLICY_GROUP:
                slot = map_find(&t->map, fkey);
                if (slot < 0)
                    break;
                e = (int32_t)t->map.v1[slot];
                if (t->bounded)
                    t->stamps[e] = t->tick++;
                for (int64_t r = 0; r < count; r++)
                    group_train(t, e, freq, n_nodes, cmax, thr, rperiod,
                                tdown);
                break;
            case POLICY_OWNER:
                slot = map_find(&t->map, fkey);
                if (slot < 0)
                    break;
                e = (int32_t)t->map.v1[slot];
                if (t->bounded)
                    t->stamps[e] = t->tick++;
                t->owner[e] = freq;
                t->valid[e] = 1;
                break;
            case POLICY_BIFS:
                slot = map_find(&t->map, fkey);
                if (slot < 0)
                    break;
                e = (int32_t)t->map.v1[slot];
                if (t->bounded)
                    t->stamps[e] = t->tick++;
                {
                    int64_t total = (int64_t)t->counter[e] + count;
                    t->counter[e] = total < cmax ? (int32_t)total : cmax;
                }
                break;
            case POLICY_OWNER_GROUP:
                if (fcode) {
                    slot = map_find(&t->map, fkey);
                    if (slot >= 0) {
                        e = (int32_t)t->map.v1[slot];
                        if (t->bounded)
                            t->stamps[e] = t->tick++;
                        t->owner[e] = freq;
                        t->valid[e] = 1;
                    }
                }
                {
                    GTable *g = &tB[node];
                    slot = map_find(&g->map, fkey);
                    if (slot < 0)
                        break;
                    e = (int32_t)g->map.v1[slot];
                    if (g->bounded)
                        g->stamps[e] = g->tick++;
                    for (int64_t r = 0; r < count; r++)
                        group_train(g, e, freq, n_nodes, cmax, thr, rperiod,
                                    tdown);
                }
                break;
            }
        }
    }
}

/* Sticky-spatial's direct-mapped entry pool: index -> (tag, bits).
 * Replacement rewrites in place, so pool order stays the Python
 * dict's insertion order. */
typedef struct {
    I64Map map; /* index -> pool slot (v1) */
    int64_t *idxs;
    int64_t *tags;
    uint64_t *bits_lo;
    uint64_t *bits_hi;
    Py_ssize_t len;
    Py_ssize_t cap;
    int64_t n_alloc;
    int64_t n_repl;
} STable;

static void
stable_free(STable *st)
{
    if (st->map.keys)
        map_free(&st->map);
    PyMem_RawFree(st->idxs);
    PyMem_RawFree(st->tags);
    PyMem_RawFree(st->bits_lo);
    PyMem_RawFree(st->bits_hi);
    memset(st, 0, sizeof(*st));
}

static int
stable_reserve(STable *st, Py_ssize_t cap)
{
    if (cap <= st->cap)
        return 0;
    int64_t *idxs = PyMem_RawRealloc(st->idxs, (size_t)cap * sizeof(int64_t));
    if (!idxs)
        return -1;
    st->idxs = idxs;
    int64_t *tags = PyMem_RawRealloc(st->tags, (size_t)cap * sizeof(int64_t));
    if (!tags)
        return -1;
    st->tags = tags;
    uint64_t *bits_lo =
        PyMem_RawRealloc(st->bits_lo, (size_t)cap * sizeof(uint64_t));
    if (!bits_lo)
        return -1;
    st->bits_lo = bits_lo;
    uint64_t *bits_hi =
        PyMem_RawRealloc(st->bits_hi, (size_t)cap * sizeof(uint64_t));
    if (!bits_hi)
        return -1;
    st->bits_hi = bits_hi;
    st->cap = cap;
    return 0;
}

static int
stable_append(STable *st, int64_t idx, int64_t tag, uint64_t lo,
              uint64_t hi)
{
    if (st->len >= st->cap
        && stable_reserve(st, st->cap ? st->cap * 2 : 64) < 0)
        return -1;
    Py_ssize_t s = st->len++;
    st->idxs[s] = idx;
    st->tags[s] = tag;
    st->bits_lo[s] = lo;
    st->bits_hi[s] = hi;
    return map_put(&st->map, idx, (int64_t)s, 0);
}

/* Load one StickySpatialPredictor.  Returns 0 / 1 (envelope) / -1. */
static int
stable_load(STable *st, PyObject *predictor)
{
    int rc = -1;
    PyObject *entries = NULL, *tmp = NULL;

    entries = PyObject_GetAttrString(predictor, "_entries");
    if (!entries)
        goto fail;
    if (!PyDict_CheckExact(entries))
        goto envelope;

    int of = 0;
    tmp = PyObject_GetAttrString(predictor, "n_allocations");
    if (!tmp)
        goto fail;
    st->n_alloc = as_i64(tmp, &of);
    Py_CLEAR(tmp);
    if (of)
        goto envelope;
    tmp = PyObject_GetAttrString(predictor, "n_replacements");
    if (!tmp)
        goto fail;
    st->n_repl = as_i64(tmp, &of);
    Py_CLEAR(tmp);
    if (of)
        goto envelope;

    Py_ssize_t n_entries = PyDict_Size(entries);
    if (map_init(&st->map, n_entries + 8) < 0) {
        PyErr_NoMemory();
        goto fail;
    }
    if (stable_reserve(st, n_entries + 16) < 0) {
        PyErr_NoMemory();
        goto fail;
    }

    PyObject *keyobj, *packed;
    Py_ssize_t pos = 0;
    while (PyDict_Next(entries, &pos, &keyobj, &packed)) {
        int64_t idx = as_i64(keyobj, &of);
        if (of || idx < 0)
            goto envelope;
        if (!PyTuple_CheckExact(packed) || PyTuple_GET_SIZE(packed) != 2)
            goto envelope;
        int64_t tag = as_i64(PyTuple_GET_ITEM(packed, 0), &of);
        if (of || tag < 0)
            goto envelope;
        uint64_t blo = 0, bhi = 0;
        int brc = as_u128(PyTuple_GET_ITEM(packed, 1), &blo, &bhi);
        if (brc < 0)
            goto fail;
        if (brc > 0)
            goto envelope;
        if (stable_append(st, idx, tag, blo, bhi) < 0) {
            PyErr_NoMemory();
            goto fail;
        }
    }

    rc = 0;
    goto done;
envelope:
    rc = 1;
done:
fail:
    Py_XDECREF(tmp);
    Py_XDECREF(entries);
    return rc;
}

/* Refill the predictor's entry dict and stat counters.  0 / -1. */
static int
stable_sync(STable *st, PyObject *predictor)
{
    int rc = -1;
    PyObject *entries = NULL, *keyobj = NULL, *packed = NULL, *tmp = NULL;

    entries = PyObject_GetAttrString(predictor, "_entries");
    if (!entries)
        goto done;
    PyDict_Clear(entries);
    for (Py_ssize_t s = 0; s < st->len; s++) {
        keyobj = PyLong_FromLongLong((long long)st->idxs[s]);
        if (!keyobj)
            goto done;
        PyObject *tagobj = PyLong_FromLongLong((long long)st->tags[s]);
        PyObject *bitsobj =
            tagobj ? u128_to_pylong(st->bits_lo[s], st->bits_hi[s]) : NULL;
        packed = bitsobj ? PyTuple_Pack(2, tagobj, bitsobj) : NULL;
        Py_XDECREF(tagobj);
        Py_XDECREF(bitsobj);
        if (!packed || PyDict_SetItem(entries, keyobj, packed) < 0)
            goto done;
        Py_CLEAR(keyobj);
        Py_CLEAR(packed);
    }

    tmp = PyLong_FromLongLong((long long)st->n_alloc);
    if (!tmp || PyObject_SetAttrString(predictor, "n_allocations", tmp) < 0)
        goto done;
    Py_CLEAR(tmp);
    tmp = PyLong_FromLongLong((long long)st->n_repl);
    if (!tmp
        || PyObject_SetAttrString(predictor, "n_replacements", tmp) < 0)
        goto done;
    Py_CLEAR(tmp);

    rc = 0;
done:
    Py_XDECREF(tmp);
    Py_XDECREF(keyobj);
    Py_XDECREF(packed);
    Py_XDECREF(entries);
    return rc;
}

static PyObject *
policy_replay(PyObject *self, PyObject *args)
{
    Py_buffer addr_b, pc_b, req_b, acc_b;
    int policy, n_nodes, block_shift, use_pc, gshift;
    PyObject *tablesA_obj, *factoriesA_obj, *tablesB_obj, *factoriesB_obj;
    PyObject *sticky_obj, *state_obj;
    int cmax_i, thr_i, rperiod_i, tdown;
    int sticky_unbounded, sticky_shift;
    long long sticky_entries_ll;
    double lat_mem, lat_dir, lat_ind, latency_sum;
    long long block_mask_ll, control_ll, data_ll;
    int want_out;

    if (!PyArg_ParseTuple(
            args, "iy*y*y*y*iLiiiOOOOiiiiOiLiOdddLLdi", &policy, &addr_b,
            &pc_b, &req_b, &acc_b, &n_nodes, &block_mask_ll, &block_shift,
            &use_pc, &gshift, &tablesA_obj, &factoriesA_obj, &tablesB_obj,
            &factoriesB_obj, &cmax_i, &thr_i, &rperiod_i, &tdown,
            &sticky_obj, &sticky_unbounded, &sticky_entries_ll,
            &sticky_shift, &state_obj, &lat_mem, &lat_dir, &lat_ind,
            &control_ll, &data_ll, &latency_sum, &want_out))
        return NULL;

    PyObject *result = NULL;
    GTable *tablesA = NULL;
    GTable *tablesB = NULL;
    STable *stables = NULL;
    I64Map mosi;
    mosi.keys = NULL;
    double *lat_out = NULL;
    int64_t *tb_out = NULL;
    int fallback = 0;

    Py_ssize_t nrec = req_b.len / (Py_ssize_t)sizeof(int32_t);
    const int64_t block_mask = (int64_t)block_mask_ll;
    const int64_t control = (int64_t)control_ll;
    const int64_t data_size = (int64_t)data_ll;
    const int32_t cmax = (int32_t)cmax_i;
    const int32_t thr = (int32_t)thr_i;
    const int32_t rperiod = (int32_t)rperiod_i;
    const int64_t sticky_entries = (int64_t)sticky_entries_ll;

    int ok = addr_b.len == nrec * (Py_ssize_t)sizeof(int64_t)
             && pc_b.len == nrec * (Py_ssize_t)sizeof(int64_t)
             && acc_b.len == nrec && n_nodes > 0 && n_nodes <= 128
             && policy >= POLICY_GROUP && policy <= POLICY_STICKY;
    if (ok) {
        if (policy == POLICY_STICKY)
            ok = PyList_CheckExact(sticky_obj)
                 && PyList_GET_SIZE(sticky_obj) == n_nodes
                 && (sticky_unbounded || sticky_entries > 0)
                 && sticky_shift >= 0;
        else
            ok = PyList_CheckExact(tablesA_obj)
                 && PyList_CheckExact(factoriesA_obj)
                 && PyList_GET_SIZE(tablesA_obj) == n_nodes
                 && PyList_GET_SIZE(factoriesA_obj) == n_nodes;
        if (ok && policy == POLICY_OWNER_GROUP)
            ok = PyList_CheckExact(tablesB_obj)
                 && PyList_CheckExact(factoriesB_obj)
                 && PyList_GET_SIZE(tablesB_obj) == n_nodes
                 && PyList_GET_SIZE(factoriesB_obj) == n_nodes;
    }
    if (!ok) {
        PyErr_SetString(PyExc_ValueError, "policy_replay: bad arguments");
        goto done;
    }

    if (policy == POLICY_STICKY) {
        stables = PyMem_RawCalloc((size_t)n_nodes, sizeof(STable));
        if (!stables) {
            PyErr_NoMemory();
            goto done;
        }
        for (int i = 0; i < n_nodes; i++) {
            int rc =
                stable_load(&stables[i], PyList_GET_ITEM(sticky_obj, i));
            if (rc < 0)
                goto done;
            if (rc > 0) {
                fallback = 1;
                goto done;
            }
        }
    }
    else {
        int kindA = policy == POLICY_GROUP
                        ? PT_GROUP
                        : (policy == POLICY_BIFS ? PT_BIFS : PT_OWNER);
        tablesA = PyMem_RawCalloc((size_t)n_nodes, sizeof(GTable));
        if (!tablesA) {
            PyErr_NoMemory();
            goto done;
        }
        for (int i = 0; i < n_nodes; i++) {
            tablesA[i].kind = kindA;
            int rc = gtable_load(&tablesA[i],
                                 PyList_GET_ITEM(tablesA_obj, i), n_nodes);
            if (rc < 0)
                goto done;
            if (rc > 0) {
                fallback = 1;
                goto done;
            }
        }
        if (policy == POLICY_OWNER_GROUP) {
            tablesB = PyMem_RawCalloc((size_t)n_nodes, sizeof(GTable));
            if (!tablesB) {
                PyErr_NoMemory();
                goto done;
            }
            for (int i = 0; i < n_nodes; i++) {
                tablesB[i].kind = PT_GROUP;
                int rc = gtable_load(
                    &tablesB[i], PyList_GET_ITEM(tablesB_obj, i), n_nodes);
                if (rc < 0)
                    goto done;
                if (rc > 0) {
                    fallback = 1;
                    goto done;
                }
            }
        }
    }
    {
        int rc = mosi_load(&mosi, state_obj, n_nodes, /*allow_wide=*/1);
        if (rc < 0)
            goto done;
        if (rc > 0) {
            fallback = 1;
            goto done;
        }
    }
    if (want_out) {
        lat_out = PyMem_RawMalloc((size_t)(nrec ? nrec : 1) * sizeof(double));
        tb_out = PyMem_RawMalloc((size_t)(nrec ? nrec : 1) * sizeof(int64_t));
        if (!lat_out || !tb_out) {
            PyErr_NoMemory();
            goto done;
        }
    }

    {
        const int64_t *addrs = addr_b.buf;
        const int64_t *pcs = pc_b.buf;
        const int32_t *reqs = req_b.buf;
        const int8_t *accs = acc_b.buf;

        /* Broadcast-if-shared's full destination set. */
        uint64_t full_lo, full_hi;
        if (n_nodes >= 128) {
            full_lo = ~(uint64_t)0;
            full_hi = ~(uint64_t)0;
        }
        else if (n_nodes >= 64) {
            full_lo = ~(uint64_t)0;
            full_hi = n_nodes > 64
                          ? (((uint64_t)1 << (n_nodes - 64)) - 1)
                          : 0;
        }
        else {
            full_lo = ((uint64_t)1 << n_nodes) - 1;
            full_hi = 0;
        }

        int64_t indirections = 0;
        int64_t request_sum = 0;
        int64_t retry_sum = 0;
        int64_t retries_total = 0;

        /* Pending fused training batch (never engages for sticky,
         * whose kernel has no train_external). */
        int64_t p_key = 0;
        int32_t p_req = -1;
        int32_t p_code = -1;
        uint64_t p_lo = 0, p_hi = 0;
        int64_t p_count = 0;
        int oom = 0;

        Py_BEGIN_ALLOW_THREADS
        for (Py_ssize_t i = 0; i < nrec; i++) {
            const int64_t address = addrs[i];
            const int32_t requester = reqs[i];
            const int32_t code = accs[i];
            const int64_t block = address & block_mask;
            const int64_t key = use_pc ? pcs[i] : (address >> gshift);
            const int32_t home = (int32_t)((block >> block_shift) % n_nodes);
            uint64_t reqbit_lo = 0, reqbit_hi = 0;
            bit128_set(&reqbit_lo, &reqbit_hi, requester);
            uint64_t minimal_lo = reqbit_lo, minimal_hi = reqbit_hi;
            bit128_set(&minimal_lo, &minimal_hi, home);
            const uint64_t notreq_lo = ~reqbit_lo;
            const uint64_t notreq_hi = ~reqbit_hi;

            if (p_count
                && (key != p_key || requester != p_req || code != p_code)) {
                policy_flush(policy, tablesA, tablesB, p_lo, p_hi, p_key,
                             p_req, p_code, p_count, n_nodes, cmax, thr,
                             rperiod, tdown);
                p_count = 0;
            }

            /* FusedKernel.predict (destination = prediction | minimal). */
            uint64_t dest_lo = minimal_lo, dest_hi = minimal_hi;
            int32_t scratch = -1; /* predict's entry, reused by response */
            switch (policy) {
            case POLICY_GROUP: {
                GTable *t = &tablesA[requester];
                Py_ssize_t slot = map_find(&t->map, key);
                if (slot >= 0) {
                    scratch = (int32_t)t->map.v1[slot];
                    if (t->bounded)
                        t->stamps[scratch] = t->tick++;
                    dest_lo |= t->bits_lo[scratch];
                    dest_hi |= t->bits_hi[scratch];
                }
                break;
            }
            case POLICY_OWNER: {
                GTable *t = &tablesA[requester];
                Py_ssize_t slot = map_find(&t->map, key);
                if (slot >= 0) {
                    scratch = (int32_t)t->map.v1[slot];
                    if (t->bounded)
                        t->stamps[scratch] = t->tick++;
                    if (t->valid[scratch])
                        bit128_set(&dest_lo, &dest_hi, t->owner[scratch]);
                }
                break;
            }
            case POLICY_BIFS: {
                GTable *t = &tablesA[requester];
                Py_ssize_t slot = map_find(&t->map, key);
                if (slot >= 0) {
                    scratch = (int32_t)t->map.v1[slot];
                    if (t->bounded)
                        t->stamps[scratch] = t->tick++;
                    if (t->counter[scratch] > 1) {
                        dest_lo |= full_lo;
                        dest_hi |= full_hi;
                    }
                }
                break;
            }
            case POLICY_OWNER_GROUP: {
                GTable *t =
                    code ? &tablesB[requester] : &tablesA[requester];
                Py_ssize_t slot = map_find(&t->map, key);
                if (slot >= 0) {
                    int32_t e = (int32_t)t->map.v1[slot];
                    if (t->bounded)
                        t->stamps[e] = t->tick++;
                    if (code) {
                        dest_lo |= t->bits_lo[e];
                        dest_hi |= t->bits_hi[e];
                    }
                    else if (t->valid[e]) {
                        bit128_set(&dest_lo, &dest_hi, t->owner[e]);
                    }
                }
                break;
            }
            default: { /* POLICY_STICKY: three neighbouring entries */
                STable *st = &stables[requester];
                int64_t bn = address >> sticky_shift;
                for (int d = -1; d <= 1; d++) {
                    int64_t nb = bn + d;
                    int64_t idx = sticky_unbounded
                                      ? nb
                                      : floormod64(nb, sticky_entries);
                    Py_ssize_t slot = map_find(&st->map, idx);
                    if (slot >= 0) {
                        Py_ssize_t s = (Py_ssize_t)st->map.v1[slot];
                        dest_lo |= st->bits_lo[s];
                        dest_hi |= st->bits_hi[s];
                    }
                }
                break;
            }
            }

            /* Order on the global MOSI state (apply_fast). */
            int64_t owner;
            uint64_t sh_lo, sh_hi;
            Py_ssize_t mslot = map_find(&mosi, block);
            if (mslot < 0) {
                owner = -1;
                sh_lo = 0;
                sh_hi = 0;
            }
            else {
                owner = mosi.v1[mslot];
                sh_lo = (uint64_t)mosi.v2[mslot];
                sh_hi = (uint64_t)mosi.v3[mslot];
            }
            uint64_t req_lo = 0, req_hi = 0;
            int64_t responder;
            if (owner >= 0 && owner != requester) {
                bit128_set(&req_lo, &req_hi, (int)owner);
                responder = owner;
            }
            else {
                responder = -1;
            }
            if (code) {
                req_lo |= sh_lo & notreq_lo;
                req_hi |= sh_hi & notreq_hi;
                if (map_put3(&mosi, block, requester, 0, 0) < 0) {
                    oom = 1;
                    goto compute_halt;
                }
            }
            else if (owner != requester) {
                if (map_put3(&mosi, block, owner,
                             (int64_t)(sh_lo | reqbit_lo),
                             (int64_t)(sh_hi | reqbit_hi)) < 0) {
                    oom = 1;
                    goto compute_halt;
                }
            }

            int64_t dcount = popcount128(dest_lo, dest_hi);
            request_sum += dcount;
            uint64_t del_lo = dest_lo, del_hi = dest_hi;
            if (((req_lo & ~dest_lo) | (req_hi & ~dest_hi)) == 0) {
                double lat = responder == -1 ? lat_mem : lat_dir;
                latency_sum += lat;
                if (want_out) {
                    lat_out[i] = lat;
                    tb_out[i] = (dcount - 1) * control + data_size;
                }
            }
            else {
                uint64_t cor_lo = req_lo | minimal_lo;
                uint64_t cor_hi = req_hi | minimal_hi;
                int64_t retry_messages = popcount128(cor_lo, cor_hi) - 1;
                del_lo |= cor_lo;
                del_hi |= cor_hi;
                retry_sum += retry_messages;
                retries_total += 1;
                indirections++;
                latency_sum += lat_ind;
                if (want_out) {
                    lat_out[i] = lat_ind;
                    tb_out[i] =
                        (dcount - 1 + retry_messages) * control + data_size;
                }
            }

            /* Data-response training at the requester. */
            int allocate = (req_lo | req_hi) != 0;
            switch (policy) {
            case POLICY_GROUP: {
                GTable *t = &tablesA[requester];
                int32_t e = scratch;
                if (e < 0 && allocate) {
                    e = gtable_allocate(t, key, n_nodes);
                    if (e < 0) {
                        oom = 1;
                        goto compute_halt;
                    }
                }
                if (e >= 0 && responder != -1)
                    group_train(t, e, (int32_t)responder, n_nodes, cmax,
                                thr, rperiod, tdown);
                break;
            }
            case POLICY_OWNER: {
                GTable *t = &tablesA[requester];
                int32_t e = scratch;
                if (e < 0) {
                    if (!allocate)
                        break;
                    e = gtable_allocate(t, key, n_nodes);
                    if (e < 0) {
                        oom = 1;
                        goto compute_halt;
                    }
                }
                if (responder == -1) {
                    t->valid[e] = 0;
                }
                else {
                    t->owner[e] = (int32_t)responder;
                    t->valid[e] = 1;
                }
                break;
            }
            case POLICY_BIFS: {
                GTable *t = &tablesA[requester];
                int32_t e = scratch;
                if (e < 0) {
                    if (!allocate)
                        break;
                    e = gtable_allocate(t, key, n_nodes);
                    if (e < 0) {
                        oom = 1;
                        goto compute_halt;
                    }
                }
                if (responder == -1 && !allocate) {
                    if (t->counter[e] > 0)
                        t->counter[e]--;
                }
                else if (t->counter[e] < cmax) {
                    t->counter[e]++;
                }
                break;
            }
            case POLICY_OWNER_GROUP: {
                GTable *t = &tablesA[requester];
                Py_ssize_t slot = map_find(&t->map, key);
                int32_t e = -1;
                if (slot >= 0) {
                    e = (int32_t)t->map.v1[slot];
                    if (t->bounded)
                        t->stamps[e] = t->tick++;
                }
                else if (allocate) {
                    e = gtable_allocate(t, key, n_nodes);
                    if (e < 0) {
                        oom = 1;
                        goto compute_halt;
                    }
                }
                if (e >= 0) {
                    if (responder == -1) {
                        t->valid[e] = 0;
                    }
                    else {
                        t->owner[e] = (int32_t)responder;
                        t->valid[e] = 1;
                    }
                }
                GTable *g = &tablesB[requester];
                slot = map_find(&g->map, key);
                e = -1;
                if (slot >= 0) {
                    e = (int32_t)g->map.v1[slot];
                    if (g->bounded)
                        g->stamps[e] = g->tick++;
                }
                else if (allocate) {
                    e = gtable_allocate(g, key, n_nodes);
                    if (e < 0) {
                        oom = 1;
                        goto compute_halt;
                    }
                }
                if (e >= 0 && responder != -1)
                    group_train(g, e, (int32_t)responder, n_nodes, cmax,
                                thr, rperiod, tdown);
                break;
            }
            default:
                break; /* sticky train_response is a no-op */
            }

            if (policy == POLICY_STICKY) {
                /* Directory truth training (train_truth). */
                uint64_t tr_lo = req_lo, tr_hi = req_hi;
                bit128_set(&tr_lo, &tr_hi, home);
                STable *st = &stables[requester];
                int64_t bn = address >> sticky_shift;
                int64_t idx = sticky_unbounded
                                  ? bn
                                  : floormod64(bn, sticky_entries);
                Py_ssize_t slot = map_find(&st->map, idx);
                if (slot < 0) {
                    if (stable_append(st, idx, bn, tr_lo, tr_hi) < 0) {
                        oom = 1;
                        goto compute_halt;
                    }
                    st->n_alloc++;
                }
                else {
                    Py_ssize_t s = (Py_ssize_t)st->map.v1[slot];
                    if (st->tags[s] == bn) {
                        st->bits_lo[s] |= tr_lo;
                        st->bits_hi[s] |= tr_hi;
                    }
                    else {
                        st->tags[s] = bn;
                        st->bits_lo[s] = tr_lo;
                        st->bits_hi[s] = tr_hi;
                        st->n_repl++;
                    }
                }
            }
            else {
                /* External-request training batch. */
                uint64_t ext_lo = del_lo & notreq_lo;
                uint64_t ext_hi = del_hi & notreq_hi;
                if (p_count && ext_lo == p_lo && ext_hi == p_hi) {
                    p_count++;
                }
                else {
                    if (p_count)
                        policy_flush(policy, tablesA, tablesB, p_lo, p_hi,
                                     p_key, p_req, p_code, p_count, n_nodes,
                                     cmax, thr, rperiod, tdown);
                    p_key = key;
                    p_req = requester;
                    p_code = code;
                    p_lo = ext_lo;
                    p_hi = ext_hi;
                    p_count = 1;
                }
            }
        }
        if (p_count)
            policy_flush(policy, tablesA, tablesB, p_lo, p_hi, p_key,
                         p_req, p_code, p_count, n_nodes, cmax, thr,
                         rperiod, tdown);
    compute_halt:;
        Py_END_ALLOW_THREADS
        if (oom) {
            PyErr_NoMemory();
            goto done;
        }

        /* Write every piece of state back, then build the result. */
        if (policy == POLICY_STICKY) {
            for (int i = 0; i < n_nodes; i++) {
                if (stable_sync(&stables[i],
                                PyList_GET_ITEM(sticky_obj, i)) < 0)
                    goto done;
            }
        }
        else {
            for (int i = 0; i < n_nodes; i++) {
                if (gtable_sync(&tablesA[i],
                                PyList_GET_ITEM(tablesA_obj, i),
                                PyList_GET_ITEM(factoriesA_obj, i), n_nodes)
                    < 0)
                    goto done;
            }
            if (policy == POLICY_OWNER_GROUP) {
                for (int i = 0; i < n_nodes; i++) {
                    if (gtable_sync(&tablesB[i],
                                    PyList_GET_ITEM(tablesB_obj, i),
                                    PyList_GET_ITEM(factoriesB_obj, i),
                                    n_nodes)
                        < 0)
                        goto done;
                }
            }
        }
        if (mosi_sync(&mosi, state_obj) < 0)
            goto done;

        PyObject *lat_bytes = Py_None;
        PyObject *tb_bytes = Py_None;
        Py_INCREF(Py_None);
        Py_INCREF(Py_None);
        if (want_out) {
            Py_DECREF(Py_None);
            Py_DECREF(Py_None);
            lat_bytes = PyBytes_FromStringAndSize(
                (const char *)lat_out, nrec * (Py_ssize_t)sizeof(double));
            tb_bytes = PyBytes_FromStringAndSize(
                (const char *)tb_out, nrec * (Py_ssize_t)sizeof(int64_t));
            if (!lat_bytes || !tb_bytes) {
                Py_XDECREF(lat_bytes);
                Py_XDECREF(tb_bytes);
                goto done;
            }
        }
        result = Py_BuildValue(
            "LLLLLdNN", (long long)nrec, (long long)indirections,
            (long long)request_sum, (long long)retry_sum,
            (long long)retries_total, latency_sum, lat_bytes, tb_bytes);
    }

done:
    if (fallback && !PyErr_Occurred()) {
        result = Py_None;
        Py_INCREF(Py_None);
    }
    if (tablesA) {
        for (int i = 0; i < n_nodes; i++)
            gtable_free(&tablesA[i]);
        PyMem_RawFree(tablesA);
    }
    if (tablesB) {
        for (int i = 0; i < n_nodes; i++)
            gtable_free(&tablesB[i]);
        PyMem_RawFree(tablesB);
    }
    if (stables) {
        for (int i = 0; i < n_nodes; i++)
            stable_free(&stables[i]);
        PyMem_RawFree(stables);
    }
    if (mosi.keys)
        map_free(&mosi);
    PyMem_RawFree(lat_out);
    PyMem_RawFree(tb_out);
    PyBuffer_Release(&addr_b);
    PyBuffer_Release(&pc_b);
    PyBuffer_Release(&req_b);
    PyBuffer_Release(&acc_b);
    return result;
}

/* ------------------------------------------------------------------ */
/* Collector: mirror of TraceCollector.process_chunk with the cache    */
/* LRU arrays and MOSI map held natively across chunks.                */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    int n_procs;
    int64_t block_mask;
    int block_shift;
    int64_t n1, n2;
    int32_t a1, a2;
    int64_t *l1; /* n_procs * n1 * a1, LRU-first packed */
    int32_t *l1_len;
    int64_t *l2;
    int32_t *l2_len;
    I64Map mosi;
    int64_t *executed;
    int64_t *at_last_miss;
    int loaded;
} NCollector;

static void
ncollector_dealloc(NCollector *self)
{
    PyMem_RawFree(self->l1);
    PyMem_RawFree(self->l1_len);
    PyMem_RawFree(self->l2);
    PyMem_RawFree(self->l2_len);
    PyMem_RawFree(self->executed);
    PyMem_RawFree(self->at_last_miss);
    if (self->mosi.keys)
        map_free(&self->mosi);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
ncollector_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    int n_procs, block_shift;
    long long block_mask;
    long long n1, n2;
    int a1, a2;
    if (!PyArg_ParseTuple(args, "iLiLiLi", &n_procs, &block_mask,
                          &block_shift, &n1, &a1, &n2, &a2))
        return NULL;
    if (n_procs <= 0 || n_procs > 62 || n1 <= 0 || n2 <= 0 || a1 <= 0
        || a2 <= 0) {
        PyErr_SetString(PyExc_ValueError, "Collector: bad geometry");
        return NULL;
    }
    /* Keep the flat set arrays bounded (~1 GiB of int64 slots). */
    if ((int64_t)n_procs * n1 * a1 > ((int64_t)1 << 27)
        || (int64_t)n_procs * n2 * a2 > ((int64_t)1 << 27)) {
        PyErr_SetString(PyExc_ValueError, "Collector: geometry too large");
        return NULL;
    }
    NCollector *self = (NCollector *)type->tp_alloc(type, 0);
    if (!self)
        return NULL;
    self->n_procs = n_procs;
    self->block_mask = (int64_t)block_mask;
    self->block_shift = block_shift;
    self->n1 = (int64_t)n1;
    self->n2 = (int64_t)n2;
    self->a1 = a1;
    self->a2 = a2;
    self->mosi.keys = NULL;
    self->loaded = 0;

    size_t c1 = (size_t)n_procs * (size_t)n1;
    size_t c2 = (size_t)n_procs * (size_t)n2;
    self->l1 = PyMem_RawMalloc(c1 * (size_t)a1 * sizeof(int64_t));
    self->l1_len = PyMem_RawCalloc(c1, sizeof(int32_t));
    self->l2 = PyMem_RawMalloc(c2 * (size_t)a2 * sizeof(int64_t));
    self->l2_len = PyMem_RawCalloc(c2, sizeof(int32_t));
    self->executed = PyMem_RawCalloc((size_t)n_procs, sizeof(int64_t));
    self->at_last_miss = PyMem_RawCalloc((size_t)n_procs, sizeof(int64_t));
    if (!self->l1 || !self->l1_len || !self->l2 || !self->l2_len
        || !self->executed || !self->at_last_miss) {
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    return (PyObject *)self;
}

/* Load one level's OrderedDict sets into the flat arrays.  raw is a
 * list (per node) of lists (per set) of OrderedDicts whose iteration
 * order is LRU-first.  Returns 0 / 1 (envelope) / -1 (error). */
static int
load_level(PyObject *raw, int n_procs, int64_t n_sets, int32_t assoc,
           int64_t *slots, int32_t *lens)
{
    if (!PyList_CheckExact(raw) || PyList_GET_SIZE(raw) != n_procs)
        return 1;
    for (int node = 0; node < n_procs; node++) {
        PyObject *sets = PyList_GET_ITEM(raw, node);
        if (!PyList_CheckExact(sets) || PyList_GET_SIZE(sets) != n_sets)
            return 1;
        for (int64_t s = 0; s < n_sets; s++) {
            PyObject *od = PyList_GET_ITEM(sets, s);
            Py_ssize_t sz = PyObject_Size(od);
            if (sz < 0)
                return -1;
            if (sz == 0)
                continue;
            if (sz > assoc)
                return 1;
            PyObject *it = PyObject_GetIter(od);
            if (!it)
                return -1;
            int64_t *seg = slots + ((size_t)node * n_sets + s) * assoc;
            int32_t count = 0;
            PyObject *keyobj;
            while ((keyobj = PyIter_Next(it)) != NULL) {
                int of = 0;
                int64_t block = as_i64(keyobj, &of);
                Py_DECREF(keyobj);
                if (of || count >= assoc) {
                    Py_DECREF(it);
                    return 1;
                }
                seg[count++] = block;
            }
            Py_DECREF(it);
            if (PyErr_Occurred())
                return -1;
            lens[(size_t)node * n_sets + s] = count;
        }
    }
    return 0;
}

static int
load_counter_dict(PyObject *d, int n_procs, int64_t *dest)
{
    if (!PyDict_CheckExact(d) || PyDict_Size(d) != n_procs)
        return 1;
    for (int node = 0; node < n_procs; node++) {
        PyObject *keyobj = PyLong_FromLong(node);
        if (!keyobj)
            return -1;
        PyObject *v = PyDict_GetItem(d, keyobj);
        Py_DECREF(keyobj);
        if (!v)
            return 1;
        int of = 0;
        dest[node] = as_i64(v, &of);
        if (of)
            return 1;
    }
    return 0;
}

static PyObject *
ncollector_load(NCollector *self, PyObject *args)
{
    PyObject *l1_raw, *l2_raw, *blocks, *executed, *at_last;
    if (!PyArg_ParseTuple(args, "OOOOO", &l1_raw, &l2_raw, &blocks,
                          &executed, &at_last))
        return NULL;
    int rc = load_level(l1_raw, self->n_procs, self->n1, self->a1,
                        self->l1, self->l1_len);
    if (rc == 0)
        rc = load_level(l2_raw, self->n_procs, self->n2, self->a2,
                        self->l2, self->l2_len);
    if (rc == 0) {
        if (self->mosi.keys)
            map_free(&self->mosi);
        rc = mosi_load(&self->mosi, blocks, self->n_procs,
                       /*allow_wide=*/0);
    }
    if (rc == 0)
        rc = load_counter_dict(executed, self->n_procs, self->executed);
    if (rc == 0)
        rc = load_counter_dict(at_last, self->n_procs, self->at_last_miss);
    if (rc < 0)
        return NULL;
    if (rc > 0)
        Py_RETURN_FALSE; /* envelope: caller uses the Python loop */
    self->loaded = 1;
    Py_RETURN_TRUE;
}

/* Linear scan of one packed LRU set.  Returns position or -1. */
static inline int32_t
set_find(const int64_t *seg, int32_t len, int64_t block)
{
    for (int32_t j = 0; j < len; j++)
        if (seg[j] == block)
            return j;
    return -1;
}

/* OrderedDict.move_to_end: remove at pos, append at the MRU end. */
static inline void
set_move_to_end(int64_t *seg, int32_t len, int32_t pos)
{
    int64_t block = seg[pos];
    memmove(seg + pos, seg + pos + 1,
            (size_t)(len - 1 - pos) * sizeof(int64_t));
    seg[len - 1] = block;
}

static inline void
set_remove_at(int64_t *seg, int32_t *len, int32_t pos)
{
    memmove(seg + pos, seg + pos + 1,
            (size_t)(*len - 1 - pos) * sizeof(int64_t));
    (*len)--;
}

/* Growable miss-output buffers. */
typedef struct {
    int64_t *addr;
    int64_t *pc;
    int32_t *node;
    int8_t *code;
    int64_t *gap;
    Py_ssize_t len, cap;
} MissOut;

static int
missout_reserve(MissOut *o, Py_ssize_t cap)
{
    if (cap <= o->cap)
        return 0;
    int64_t *addr = PyMem_RawRealloc(o->addr, (size_t)cap * sizeof(int64_t));
    if (!addr)
        return -1;
    o->addr = addr;
    int64_t *pc = PyMem_RawRealloc(o->pc, (size_t)cap * sizeof(int64_t));
    if (!pc)
        return -1;
    o->pc = pc;
    int32_t *node = PyMem_RawRealloc(o->node, (size_t)cap * sizeof(int32_t));
    if (!node)
        return -1;
    o->node = node;
    int8_t *code = PyMem_RawRealloc(o->code, (size_t)cap);
    if (!code)
        return -1;
    o->code = code;
    int64_t *gap = PyMem_RawRealloc(o->gap, (size_t)cap * sizeof(int64_t));
    if (!gap)
        return -1;
    o->gap = gap;
    o->cap = cap;
    return 0;
}

static PyObject *
ncollector_process_chunk(NCollector *self, PyObject *args)
{
    PyObject *nodes_l, *addrs_obj, *pcs_l, *writes_l, *gaps_l;
    if (!PyArg_ParseTuple(args, "OOOOO", &nodes_l, &addrs_obj, &pcs_l,
                          &writes_l, &gaps_l))
        return NULL;
    if (!self->loaded) {
        PyErr_SetString(PyExc_RuntimeError, "Collector: load() first");
        return NULL;
    }
    if (!PyList_CheckExact(nodes_l) || !PyList_CheckExact(pcs_l)
        || !PyList_CheckExact(writes_l) || !PyList_CheckExact(gaps_l))
        Py_RETURN_NONE; /* envelope: caller uses the Python loop */
    Py_ssize_t length = PyList_GET_SIZE(nodes_l);
    if (PyList_GET_SIZE(pcs_l) != length
        || PyList_GET_SIZE(writes_l) != length
        || PyList_GET_SIZE(gaps_l) != length)
        Py_RETURN_NONE;

    /* Addresses: an int64 buffer (numpy chunk column) or a list. */
    Py_buffer addr_buf;
    const int64_t *addr_arr = NULL;
    PyObject *addr_list = NULL;
    addr_buf.buf = NULL;
    if (PyObject_CheckBuffer(addrs_obj)
        && PyObject_GetBuffer(addrs_obj, &addr_buf, PyBUF_CONTIG_RO) == 0) {
        if (addr_buf.len == length * (Py_ssize_t)sizeof(int64_t)
            && addr_buf.itemsize == (Py_ssize_t)sizeof(int64_t)) {
            addr_arr = addr_buf.buf;
        }
        else {
            PyBuffer_Release(&addr_buf);
            addr_buf.buf = NULL;
        }
    }
    else {
        PyErr_Clear();
    }
    if (!addr_arr) {
        if (!PyList_CheckExact(addrs_obj)
            || PyList_GET_SIZE(addrs_obj) != length)
            Py_RETURN_NONE;
        addr_list = addrs_obj;
    }

#define RELEASE_ADDR()                                                     \
    do {                                                                   \
        if (addr_buf.buf)                                                  \
            PyBuffer_Release(&addr_buf);                                   \
    } while (0)

    /* Marshal (GIL held): flatten every chunk column into C arrays,
     * mirroring the Python loop's node-range pre-check and pulling the
     * int64-envelope validation forward so the compute loop below can
     * run with the GIL released. */
    const int n_procs = self->n_procs;
    int64_t *m_cols = PyMem_RawMalloc(
        (size_t)(length ? length : 1) * 5 * sizeof(int64_t));
    if (!m_cols) {
        RELEASE_ADDR();
        return PyErr_NoMemory();
    }
    int64_t *m_node = m_cols;
    int64_t *m_gap = m_cols + length;
    int64_t *m_pc = m_cols + 2 * length;
    int64_t *m_write = m_cols + 3 * length;
    int64_t *m_addr = m_cols + 4 * length;
    for (Py_ssize_t i = 0; i < length; i++) {
        int of = 0;
        int64_t node = as_i64(PyList_GET_ITEM(nodes_l, i), &of);
        if (of || node < 0 || node >= n_procs) {
            PyMem_RawFree(m_cols);
            RELEASE_ADDR();
            if (!of) {
                PyErr_Format(PyExc_ValueError,
                             "chunk contains nodes outside [0, %d)",
                             n_procs);
                return NULL;
            }
            Py_RETURN_NONE;
        }
        m_node[i] = node;
        m_gap[i] = as_i64(PyList_GET_ITEM(gaps_l, i), &of);
        m_pc[i] = as_i64(PyList_GET_ITEM(pcs_l, i), &of);
        m_write[i] = as_i64(PyList_GET_ITEM(writes_l, i), &of);
        m_addr[i] = addr_arr
                        ? addr_arr[i]
                        : as_i64(PyList_GET_ITEM(addr_list, i), &of);
        if (of || m_addr[i] < 0) {
            /* Outside the envelope mid-chunk cannot happen for real
             * generator output; bail out loudly rather than guessing. */
            PyMem_RawFree(m_cols);
            RELEASE_ADDR();
            PyErr_SetString(PyExc_OverflowError,
                            "Collector: value outside int64 envelope");
            return NULL;
        }
    }
    /* Every column is copied; drop the address view before compute. */
    RELEASE_ADDR();
    addr_buf.buf = NULL;

    MissOut out;
    memset(&out, 0, sizeof(out));
    if (missout_reserve(&out, length > 16 ? length / 4 : 16) < 0) {
        PyMem_RawFree(m_cols);
        return PyErr_NoMemory();
    }

    const int64_t block_mask = self->block_mask;
    const int block_shift = self->block_shift;
    const int64_t n1 = self->n1, n2 = self->n2;
    const int32_t a1 = self->a1, a2 = self->a2;
    PyObject *result = NULL;
    int oom = 0;

    Py_BEGIN_ALLOW_THREADS
    for (Py_ssize_t i = 0; i < length; i++) {
        const int64_t node = m_node[i];
        const int64_t gap = m_gap[i];
        const int64_t pc = m_pc[i];
        const int64_t is_write = m_write[i];
        const int64_t address = m_addr[i];

        self->executed[node] += gap;
        int64_t block = address & block_mask;
        int64_t s1 = (block >> block_shift) % n1;
        int64_t s2 = (block >> block_shift) % n2;

        int64_t owner;
        uint64_t sharers;
        Py_ssize_t mslot = map_find(&self->mosi, block);
        if (mslot < 0) {
            owner = -1;
            sharers = 0;
        }
        else {
            owner = self->mosi.v1[mslot];
            sharers = (uint64_t)self->mosi.v2[mslot];
        }
        int permitted;
        if (is_write)
            permitted = owner == node && !sharers;
        else
            permitted = owner == node || ((sharers >> node) & 1);

        int64_t *l1_seg = self->l1 + ((size_t)node * n1 + s1) * a1;
        int32_t *l1_len = &self->l1_len[(size_t)node * n1 + s1];
        int64_t *l2_seg = self->l2 + ((size_t)node * n2 + s2) * a2;
        int32_t *l2_len = &self->l2_len[(size_t)node * n2 + s2];

        if (permitted) {
            int32_t pos = set_find(l1_seg, *l1_len, block);
            if (pos >= 0) {
                set_move_to_end(l1_seg, *l1_len, pos);
                int32_t p2 = set_find(l2_seg, *l2_len, block);
                if (p2 >= 0)
                    set_move_to_end(l2_seg, *l2_len, p2);
                continue;
            }
            int32_t p2 = set_find(l2_seg, *l2_len, block);
            if (p2 >= 0) {
                set_move_to_end(l2_seg, *l2_len, p2);
                if (*l1_len >= a1)
                    set_remove_at(l1_seg, l1_len, 0);
                l1_seg[(*l1_len)++] = block;
                continue;
            }
        }

        /* -- miss: record, apply MOSI, invalidate, fill ---------- */
        int64_t done_instr = self->executed[node];
        if (out.len >= out.cap
            && missout_reserve(&out, out.cap * 2) < 0) {
            oom = 1;
            goto chunk_halt;
        }
        out.gap[out.len] = done_instr - self->at_last_miss[node];
        self->at_last_miss[node] = done_instr;
        uint64_t required;
        if (owner >= 0 && owner != node)
            required = (uint64_t)1 << owner;
        else
            required = 0;
        if (is_write) {
            required |= sharers & ~((uint64_t)1 << node);
            if (map_put(&self->mosi, block, node, 0) < 0) {
                oom = 1;
                goto chunk_halt;
            }
        }
        else if (owner != node) {
            if (map_put(&self->mosi, block, owner,
                        (int64_t)(sharers | ((uint64_t)1 << node))) < 0) {
                oom = 1;
                goto chunk_halt;
            }
        }
        out.addr[out.len] = block;
        out.pc[out.len] = pc;
        out.node[out.len] = (int32_t)node;
        out.code[out.len] = is_write ? 1 : 0;
        out.len++;

        if (is_write && required) {
            uint64_t remaining = required;
            while (remaining) {
                uint64_t low = remaining & (~remaining + 1);
                int victim_node = __builtin_ctzll(low);
                int64_t *vseg =
                    self->l1 + ((size_t)victim_node * n1 + s1) * a1;
                int32_t *vlen = &self->l1_len[(size_t)victim_node * n1 + s1];
                int32_t vpos = set_find(vseg, *vlen, block);
                if (vpos >= 0)
                    set_remove_at(vseg, vlen, vpos);
                vseg = self->l2 + ((size_t)victim_node * n2 + s2) * a2;
                vlen = &self->l2_len[(size_t)victim_node * n2 + s2];
                vpos = set_find(vseg, *vlen, block);
                if (vpos >= 0)
                    set_remove_at(vseg, vlen, vpos);
                remaining ^= low;
            }
        }

        int32_t p2 = set_find(l2_seg, *l2_len, block);
        if (p2 >= 0) {
            set_move_to_end(l2_seg, *l2_len, p2);
        }
        else {
            if (*l2_len >= a2) {
                int64_t victim = l2_seg[0];
                set_remove_at(l2_seg, l2_len, 0);
                int64_t vs1 = (victim >> block_shift) % n1;
                int64_t *vseg = self->l1 + ((size_t)node * n1 + vs1) * a1;
                int32_t *vlen = &self->l1_len[(size_t)node * n1 + vs1];
                int32_t vpos = set_find(vseg, *vlen, victim);
                if (vpos >= 0)
                    set_remove_at(vseg, vlen, vpos);
                Py_ssize_t vslot = map_find(&self->mosi, victim);
                if (vslot >= 0) {
                    int64_t vowner = self->mosi.v1[vslot];
                    uint64_t vsharers = (uint64_t)self->mosi.v2[vslot];
                    if (vowner == node) {
                        self->mosi.v1[vslot] = -1;
                    }
                    else if ((vsharers >> node) & 1) {
                        self->mosi.v2[vslot] = (int64_t)(
                            vsharers & ~((uint64_t)1 << node));
                    }
                }
            }
            l2_seg[(*l2_len)++] = block;
        }
        int32_t p1 = set_find(l1_seg, *l1_len, block);
        if (p1 >= 0) {
            set_move_to_end(l1_seg, *l1_len, p1);
        }
        else {
            if (*l1_len >= a1)
                set_remove_at(l1_seg, l1_len, 0);
            l1_seg[(*l1_len)++] = block;
        }
    }
chunk_halt:;
    Py_END_ALLOW_THREADS
    if (oom) {
        PyErr_NoMemory();
        goto done;
    }

    result = Py_BuildValue(
        "ny#y#y#y#y#", out.len, (const char *)out.addr,
        out.len * (Py_ssize_t)sizeof(int64_t), (const char *)out.pc,
        out.len * (Py_ssize_t)sizeof(int64_t), (const char *)out.node,
        out.len * (Py_ssize_t)sizeof(int32_t), (const char *)out.code,
        out.len, (const char *)out.gap,
        out.len * (Py_ssize_t)sizeof(int64_t));

done:
#undef RELEASE_ADDR
    PyMem_RawFree(m_cols);
    PyMem_RawFree(out.addr);
    PyMem_RawFree(out.pc);
    PyMem_RawFree(out.node);
    PyMem_RawFree(out.code);
    PyMem_RawFree(out.gap);
    return result;
}

/* Write the native cache/MOSI/counter state back into the Python
 * structures (same objects, refilled in LRU order). */
static int
sync_level(PyObject *raw, int n_procs, int64_t n_sets, int32_t assoc,
           const int64_t *slots, const int32_t *lens)
{
    for (int node = 0; node < n_procs; node++) {
        PyObject *sets = PyList_GET_ITEM(raw, node);
        for (int64_t s = 0; s < n_sets; s++) {
            PyObject *od = PyList_GET_ITEM(sets, s);
            int32_t len = lens[(size_t)node * n_sets + s];
            Py_ssize_t pysz = PyObject_Size(od);
            if (pysz < 0)
                return -1;
            if (pysz == 0 && len == 0)
                continue;
            PyObject *r = PyObject_CallMethod(od, "clear", NULL);
            if (!r)
                return -1;
            Py_DECREF(r);
            const int64_t *seg =
                slots + ((size_t)node * n_sets + s) * assoc;
            for (int32_t j = 0; j < len; j++) {
                PyObject *keyobj = PyLong_FromLongLong((long long)seg[j]);
                if (!keyobj)
                    return -1;
                int rc = PyObject_SetItem(od, keyobj, Py_None);
                Py_DECREF(keyobj);
                if (rc < 0)
                    return -1;
            }
        }
    }
    return 0;
}

static int
sync_counter_dict(PyObject *d, int n_procs, const int64_t *src)
{
    for (int node = 0; node < n_procs; node++) {
        PyObject *keyobj = PyLong_FromLong(node);
        PyObject *v = keyobj ? PyLong_FromLongLong((long long)src[node])
                             : NULL;
        if (!v || PyDict_SetItem(d, keyobj, v) < 0) {
            Py_XDECREF(keyobj);
            Py_XDECREF(v);
            return -1;
        }
        Py_DECREF(keyobj);
        Py_DECREF(v);
    }
    return 0;
}

static PyObject *
ncollector_sync(NCollector *self, PyObject *args)
{
    PyObject *l1_raw, *l2_raw, *blocks, *executed, *at_last;
    if (!PyArg_ParseTuple(args, "OOOOO", &l1_raw, &l2_raw, &blocks,
                          &executed, &at_last))
        return NULL;
    if (!self->loaded) {
        PyErr_SetString(PyExc_RuntimeError, "Collector: load() first");
        return NULL;
    }
    if (sync_level(l1_raw, self->n_procs, self->n1, self->a1, self->l1,
                   self->l1_len) < 0)
        return NULL;
    if (sync_level(l2_raw, self->n_procs, self->n2, self->a2, self->l2,
                   self->l2_len) < 0)
        return NULL;
    if (mosi_sync(&self->mosi, blocks) < 0)
        return NULL;
    if (sync_counter_dict(executed, self->n_procs, self->executed) < 0)
        return NULL;
    if (sync_counter_dict(at_last, self->n_procs, self->at_last_miss) < 0)
        return NULL;
    self->loaded = 0;
    Py_RETURN_NONE;
}

static PyMethodDef ncollector_methods[] = {
    {"load", (PyCFunction)ncollector_load, METH_VARARGS,
     "Adopt the Python-side cache/MOSI/counter state."},
    {"process_chunk", (PyCFunction)ncollector_process_chunk, METH_VARARGS,
     "Filter one reference chunk; returns (n_miss, 5 column bytes)."},
    {"sync", (PyCFunction)ncollector_sync, METH_VARARGS,
     "Write native state back into the Python-side structures."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject NCollectorType = {
    PyVarObject_HEAD_INIT(NULL, 0).tp_name = "repro.kernels._native.Collector",
    .tp_basicsize = sizeof(NCollector),
    .tp_dealloc = (destructor)ncollector_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Native chunk-collector session state.",
    .tp_methods = ncollector_methods,
    .tp_new = ncollector_new,
};

/* ------------------------------------------------------------------ */

static PyMethodDef native_methods[] = {
    {"timing_pass", timing_pass, METH_VARARGS,
     "Crossbar + simple-processor timing pass over outcome columns."},
    {"timing_pass_detailed", timing_pass_detailed, METH_VARARGS,
     "Crossbar + detailed-processor timing pass over outcome columns."},
    {"policy_replay", policy_replay, METH_VARARGS,
     "Fused multicast replay over trace columns for one of the five"
     " compiled predictor policies."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef native_module = {
    PyModuleDef_HEAD_INIT,
    "repro.kernels._native",
    "Compiled kernel backend (see repro.kernels for the ABI).",
    -1,
    native_methods,
};

PyMODINIT_FUNC
PyInit__native(void)
{
    PyObject *m = PyModule_Create(&native_module);
    if (!m)
        return NULL;
    if (PyType_Ready(&NCollectorType) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&NCollectorType);
    if (PyModule_AddObject(m, "Collector", (PyObject *)&NCollectorType)
        < 0) {
        Py_DECREF(&NCollectorType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "ABI_VERSION", 3) < 0
        || PyModule_AddIntConstant(m, "POLICY_GROUP", POLICY_GROUP) < 0
        || PyModule_AddIntConstant(m, "POLICY_OWNER", POLICY_OWNER) < 0
        || PyModule_AddIntConstant(m, "POLICY_BIFS", POLICY_BIFS) < 0
        || PyModule_AddIntConstant(m, "POLICY_OWNER_GROUP",
                                   POLICY_OWNER_GROUP) < 0
        || PyModule_AddIntConstant(m, "POLICY_STICKY", POLICY_STICKY) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
