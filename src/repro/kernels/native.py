"""Marshalling glue between the kernel ABI and the C extension.

Each function here checks the native envelope (node count, race
probability, key-index shape, column dtypes), flattens the Python-side
state into the argument shapes :mod:`repro.kernels._native` consumes,
and folds the results back through the exact accounting statements the
Python loops execute — so a native call is indistinguishable from the
Python tier on every observable (ResultSet JSON, predictor tables,
cache/MOSI state, hex-float timing goldens).

Callers come through :mod:`repro.kernels` (``try_group_replay`` /
``try_timing_pass`` / ``collector_session``), which has already
established that the native tier is active.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro.common import backend as _backend


def _ext():
    module = _backend.native_module()
    if module is None:  # pragma: no cover - callers checked already
        raise RuntimeError("native kernel extension is not importable")
    return module


# ----------------------------------------------------------------------
# group_replay: repro.protocols.fused.run_group
# ----------------------------------------------------------------------

def group_replay(proto, trace, out=None) -> bool:
    """Native fused Group replay.  False -> caller runs the Python loop.

    Callers have established :func:`repro.protocols.fused.group_uniform`
    (stock, identically-tuned GroupPredictors); the envelope on top of
    that: zero race probability (the Python tier draws from a Mersenne
    Twister the kernel does not replicate), <= 62 nodes (int64 bitmask
    lanes), and a power-of-two index granularity (so ``address //
    granularity`` is a shift — PredictorConfig validates this, checked
    again here because the kernel relies on it).
    """
    if proto.race_probability:
        return False
    n = proto.config.n_processors
    if n > 62:
        return False
    config = proto.predictor_config
    use_pc = bool(config.use_pc_index)
    gshift = 0
    if not use_pc:
        granularity = config.index_granularity
        if (
            granularity is None
            or granularity <= 0
            or granularity & (granularity - 1)
        ):
            return False
        gshift = granularity.bit_length() - 1
    block_size = proto.config.block_size
    if block_size <= 0 or block_size & (block_size - 1):
        return False

    addresses = trace._addresses
    pcs = trace._pcs
    requesters = trace._requesters
    accesses = trace._accesses
    if (
        addresses.itemsize != 8
        or pcs.itemsize != 8
        or requesters.itemsize != 4
        or accesses.itemsize != 1
    ):  # pragma: no cover - fixed typecodes on supported platforms
        return False

    predictors = proto._predictors
    tables = [p._table for p in predictors]
    factories = [t._entry_factory for t in tables]
    first = predictors[0]
    totals = proto.totals

    result = _ext().group_replay(
        addresses,
        pcs,
        requesters,
        accesses,
        n,
        ~(block_size - 1),
        block_size.bit_length() - 1,
        1 if use_pc else 0,
        gshift,
        list(tables),
        factories,
        first._counter_max,
        first._threshold,
        first._rollover_period,
        1 if first._train_down else 0,
        proto.state._blocks,
        proto._lat_memory,
        proto._lat_direct,
        proto._lat_indirect,
        proto.traffic.control_bytes,
        proto.traffic.data_bytes,
        totals.latency_ns_sum,
        0 if out is None else 1,
    )
    if result is None:
        return False  # state outside the envelope; nothing was touched
    (
        misses,
        indirections,
        request_sum,
        retry_sum,
        retries_total,
        latency_sum,
        lat_bytes,
        tb_bytes,
    ) = result
    if out is not None:
        out.latency_ns.frombytes(lat_bytes)
        out.transfer_bytes.frombytes(tb_bytes)
    request_messages = request_sum - misses
    traffic_bytes = (
        (request_messages + retry_sum) * proto.traffic.control_bytes
        + misses * proto.traffic.data_bytes
    )
    totals.add_batch(
        misses, indirections, request_messages, 0, retry_sum,
        misses, traffic_bytes, latency_sum, retries_total,
    )
    return True


# ----------------------------------------------------------------------
# timing_pass: TimingSimulator._timing_pass_simple
# ----------------------------------------------------------------------

def timing_pass(simulator, measured, out) -> bool:
    """Native crossbar + simple-processor timing pass."""
    from repro.timing.interconnect import CrossbarInterconnect
    from repro.timing.processor import SimpleProcessorModel

    interconnect = simulator.interconnect
    processors = simulator.processors
    per_ns = SimpleProcessorModel.INSTRUCTIONS_PER_NS
    if type(interconnect) is not CrossbarInterconnect or not all(
        type(p) is SimpleProcessorModel
        and p.INSTRUCTIONS_PER_NS == per_ns
        for p in processors
    ):
        return False
    requesters = measured._requesters
    instructions = measured._instructions
    if (
        requesters.itemsize != 4
        or instructions.itemsize != 8
        or len(out.latency_ns) != len(requesters)
    ):  # pragma: no cover - lengths always match after the protocol pass
        return False

    clocks = array("d", [p.now_ns for p in processors])
    link_free = array("d", interconnect._link_free)
    total_queue_ns, carried = _ext().timing_pass(
        requesters,
        instructions,
        out.latency_ns,
        out.transfer_bytes,
        clocks,
        link_free,
        float(interconnect._bandwidth),
        float(per_ns),
        float(interconnect.total_queue_ns),
    )
    for processor, clock in zip(processors, clocks):
        processor.now_ns = clock
    interconnect._link_free[:] = link_free
    interconnect.bytes_carried += carried
    interconnect.total_queue_ns = total_queue_ns
    return True


# ----------------------------------------------------------------------
# collector: TraceCollector.process_chunk
# ----------------------------------------------------------------------

class _CollectorSession:
    """Owns the cache/MOSI state natively while chunks stream through.

    ``process_chunk`` lazily adopts (``load``) the Python-side state on
    first use after a flush; ``flush`` writes it back (``sync``) so the
    record-level APIs and inspection properties observe exactly what
    the Python loop would have left behind.
    """

    __slots__ = ("_collector", "_native", "_l1", "_l2", "_loaded")

    def __init__(self, collector, native_collector):
        self._collector = collector
        self._native = native_collector
        hierarchies = collector._hierarchies
        self._l1 = [h.l1.raw_sets for h in hierarchies]
        self._l2 = [h.l2.raw_sets for h in hierarchies]
        self._loaded = False

    def _state_args(self):
        collector = self._collector
        return (
            self._l1,
            self._l2,
            collector._global._blocks,
            collector._instructions,
            collector._instructions_at_last_miss,
        )

    def process_chunk(self, chunk) -> Optional[int]:
        """Filter one chunk natively; None -> caller uses the Python loop
        (state already flushed back)."""
        if not self._loaded:
            if not self._native.load(*self._state_args()):
                return None  # state outside the envelope
            self._loaded = True
        addresses = chunk.addresses_np
        if addresses is None:
            addresses = chunk.addresses
        result = self._native.process_chunk(
            chunk.nodes, addresses, chunk.pcs, chunk.writes,
            chunk.instructions,
        )
        if result is None:
            self.flush()
            return None
        n_miss, addr_b, pc_b, node_b, code_b, gap_b = result
        collector = self._collector
        collector._references += len(chunk.nodes)
        if n_miss:
            blocks = array("q")
            blocks.frombytes(addr_b)
            pcs = array("q")
            pcs.frombytes(pc_b)
            nodes = array("i")
            nodes.frombytes(node_b)
            codes = array("b")
            codes.frombytes(code_b)
            gaps = array("q")
            gaps.frombytes(gap_b)
            collector._trace.extend_fields(blocks, pcs, nodes, codes, gaps)
        return n_miss

    def flush(self) -> None:
        """Sync native state back into the Python-side structures."""
        if self._loaded:
            self._native.sync(*self._state_args())
            self._loaded = False


def make_collector_session(collector) -> Optional[_CollectorSession]:
    """Build a native collector session, or None when ineligible."""
    config = collector._config
    n = config.n_processors
    block_size = config.block_size
    if (
        n <= 0
        or n > 62
        or block_size <= 0
        or block_size & (block_size - 1)
        or not collector._hierarchies
    ):
        return None
    h0 = collector._hierarchies[0]
    try:
        native_collector = _ext().Collector(
            n,
            ~(block_size - 1),
            block_size.bit_length() - 1,
            h0.l1.n_sets,
            h0.l1.associativity,
            h0.l2.n_sets,
            h0.l2.associativity,
        )
    except ValueError:  # geometry outside the native envelope
        return None
    return _CollectorSession(collector, native_collector)
