"""Marshalling glue between the kernel ABI and the C extension.

Each function here checks the native envelope (node count, race
probability, key-index shape, column dtypes), flattens the Python-side
state into the argument shapes :mod:`repro.kernels._native` consumes,
and folds the results back through the exact accounting statements the
Python loops execute — so a native call is indistinguishable from the
Python tier on every observable (ResultSet JSON, predictor tables,
cache/MOSI state, hex-float timing goldens).

Callers come through :mod:`repro.kernels` (``try_group_replay`` /
``try_policy_replay`` / ``try_timing_pass`` /
``try_timing_pass_detailed`` / ``collector_session``), which has
already established that the native tier is active.  Every decline is
recorded via :func:`repro.kernels.record_decline` so sweeps can report
where the native tier fell back and why.
"""

from __future__ import annotations

from array import array
from typing import Optional

from repro import kernels as _kernels
from repro.common import backend as _backend

#: Replay destination sets travel in two uint64 lanes.
_MAX_NATIVE_NODES = 128

#: The detailed-model heap buffer is ``n_nodes * max_outstanding``
#: doubles; cap it so a pathological config cannot demand an
#: unboundedly large flat allocation.
_MAX_OUTSTANDING = 4096


def _ext():
    module = _backend.native_module()
    if module is None:  # pragma: no cover - callers checked already
        raise RuntimeError("native kernel extension is not importable")
    return module


# ----------------------------------------------------------------------
# policy replay: repro.protocols.fused.run_group / run_kernel
# ----------------------------------------------------------------------

def _trace_columns(trace):
    """The four int columns, or None when dtypes are off-envelope.

    The extension parses columns as ``y*`` buffers, so any C-contiguous
    buffer-protocol object qualifies — stdlib ``array`` columns and the
    read-only ``memoryview`` columns of an mmap-backed frozen trace
    (:func:`repro.trace.io.read_trace_v2`) flow in untouched, letting
    mapped store pages reach compiled replay without a copy.  A
    non-contiguous view (which ``y*`` would reject with ``BufferError``
    mid-call) declines here instead; frozen-trace slicing never
    produces one, so this guard is belt-and-braces.
    """
    addresses = trace._addresses
    pcs = trace._pcs
    requesters = trace._requesters
    accesses = trace._accesses
    if (
        addresses.itemsize != 8
        or pcs.itemsize != 8
        or requesters.itemsize != 4
        or accesses.itemsize != 1
    ):  # pragma: no cover - fixed typecodes on supported platforms
        return None
    for column in (addresses, pcs, requesters, accesses):
        if isinstance(column, memoryview) and not column.c_contiguous:
            return None  # pragma: no cover - never produced by Trace
    return addresses, pcs, requesters, accesses


def _replay_geometry(proto, kernel_name, check_index=True):
    """Shared replay envelope.  Returns (n, use_pc, gshift, block_size)
    or None (decline recorded)."""
    if proto.race_probability:
        _kernels.record_decline(kernel_name, "race-probability")
        return None
    n = proto.config.n_processors
    if n > _MAX_NATIVE_NODES:
        _kernels.record_decline(kernel_name, "envelope")
        return None
    use_pc = False
    gshift = 0
    if check_index:
        config = proto.predictor_config
        use_pc = bool(config.use_pc_index)
        if not use_pc:
            granularity = config.index_granularity
            if (
                granularity is None
                or granularity <= 0
                or granularity & (granularity - 1)
            ):
                _kernels.record_decline(kernel_name, "envelope")
                return None
            gshift = granularity.bit_length() - 1
    block_size = proto.config.block_size
    if block_size <= 0 or block_size & (block_size - 1):
        _kernels.record_decline(kernel_name, "envelope")
        return None
    return n, use_pc, gshift, block_size


def _run_policy_replay(
    proto,
    trace,
    out,
    kernel_name,
    policy,
    n,
    use_pc,
    gshift,
    block_size,
    tables_a,
    factories_a,
    tables_b,
    factories_b,
    cmax,
    thr,
    rperiod,
    tdown,
    sticky_predictors,
    sticky_unbounded,
    sticky_entries,
    sticky_shift,
) -> bool:
    columns = _trace_columns(trace)
    if columns is None:  # pragma: no cover - fixed typecodes
        _kernels.record_decline(kernel_name, "envelope")
        return False
    addresses, pcs, requesters, accesses = columns
    totals = proto.totals
    result = _ext().policy_replay(
        policy,
        addresses,
        pcs,
        requesters,
        accesses,
        n,
        ~(block_size - 1),
        block_size.bit_length() - 1,
        1 if use_pc else 0,
        gshift,
        tables_a,
        factories_a,
        tables_b,
        factories_b,
        cmax,
        thr,
        rperiod,
        1 if tdown else 0,
        sticky_predictors,
        1 if sticky_unbounded else 0,
        sticky_entries,
        sticky_shift,
        proto.state._blocks,
        proto._lat_memory,
        proto._lat_direct,
        proto._lat_indirect,
        proto.traffic.control_bytes,
        proto.traffic.data_bytes,
        totals.latency_ns_sum,
        0 if out is None else 1,
    )
    if result is None:
        # State outside the envelope (e.g. an int64-overflowing key);
        # nothing was touched.
        _kernels.record_decline(kernel_name, "overflow")
        return False
    (
        misses,
        indirections,
        request_sum,
        retry_sum,
        retries_total,
        latency_sum,
        lat_bytes,
        tb_bytes,
    ) = result
    if out is not None:
        out.latency_ns.frombytes(lat_bytes)
        out.transfer_bytes.frombytes(tb_bytes)
    request_messages = request_sum - misses
    traffic_bytes = (
        (request_messages + retry_sum) * proto.traffic.control_bytes
        + misses * proto.traffic.data_bytes
    )
    totals.add_batch(
        misses, indirections, request_messages, 0, retry_sum,
        misses, traffic_bytes, latency_sum, retries_total,
    )
    return True


def group_replay(proto, trace, out=None) -> bool:
    """Native fused Group replay.  False -> caller runs the Python loop.

    Callers have established :func:`repro.protocols.fused.group_uniform`
    (stock, identically-tuned GroupPredictors); the envelope on top of
    that: zero race probability (the Python tier draws from a Mersenne
    Twister the kernel does not replicate), <= 128 nodes (two uint64
    bitmask lanes), and a power-of-two index granularity (so ``address
    // granularity`` is a shift — PredictorConfig validates this,
    checked again here because the kernel relies on it).
    """
    geometry = _replay_geometry(proto, "group_replay")
    if geometry is None:
        return False
    n, use_pc, gshift, block_size = geometry

    predictors = proto._predictors
    tables = [p._table for p in predictors]
    first = predictors[0]
    ext = _ext()
    return _run_policy_replay(
        proto, trace, out, "group_replay", ext.POLICY_GROUP,
        n, use_pc, gshift, block_size,
        list(tables), [t._entry_factory for t in tables], None, None,
        first._counter_max, first._threshold, first._rollover_period,
        first._train_down, None, 0, 0, 0,
    )


def policy_replay(proto, trace, out=None) -> bool:
    """Native fused replay for the non-Group compiled policies (Owner,
    Broadcast-if-shared, Owner-group, Sticky-spatial).

    Mirrors each policy's ``fused_kernel`` eligibility exactly: the
    caller has established a homogeneous predictor list whose fused
    kernel exists, and this function re-derives the same uniformity
    conditions before handing the flat table state to the extension.
    False -> caller runs the Python fused loop (decline recorded).
    """
    from repro.predictors.broadcast_if_shared import (
        _COUNTER_MAX as _BIFS_COUNTER_MAX,
        BroadcastIfSharedPredictor,
    )
    from repro.predictors.group import GroupPredictor
    from repro.predictors.owner import OwnerPredictor
    from repro.predictors.owner_group import OwnerGroupPredictor
    from repro.predictors.sticky_spatial import StickySpatialPredictor

    predictors = proto._predictors
    first_type = type(predictors[0])
    ext = _ext()

    if first_type is StickySpatialPredictor:
        geometry = _replay_geometry(
            proto, "policy_replay", check_index=False
        )
        if geometry is None:
            return False
        n, use_pc, gshift, block_size = geometry
        config = predictors[0].config
        if any(p.config != config for p in predictors):
            _kernels.record_decline("policy_replay", "envelope")
            return False
        granularity = StickySpatialPredictor.BLOCK_GRANULARITY
        if granularity <= 0 or granularity & (granularity - 1):
            # pragma: no cover - the class constant is 64
            _kernels.record_decline("policy_replay", "envelope")
            return False
        unbounded = bool(config.unbounded)
        n_entries = 0 if unbounded else config.n_entries
        if not unbounded and n_entries <= 0:
            _kernels.record_decline("policy_replay", "envelope")
            return False
        return _run_policy_replay(
            proto, trace, out, "policy_replay", ext.POLICY_STICKY,
            n, use_pc, gshift, block_size,
            None, None, None, None, 0, 0, 0, 0,
            list(predictors), unbounded, n_entries,
            granularity.bit_length() - 1,
        )

    if first_type is OwnerPredictor or first_type is BroadcastIfSharedPredictor:
        geometry = _replay_geometry(proto, "policy_replay")
        if geometry is None:
            return False
        n, use_pc, gshift, block_size = geometry
        tables = [p._table for p in predictors]
        bounded = tables[0]._bounded
        if any(t._bounded != bounded for t in tables):
            # The Python closures apply tables[0]'s boundedness to
            # every node; mixed tables never occur in practice, so
            # decline rather than replicate the quirk.
            _kernels.record_decline("policy_replay", "envelope")
            return False
        if first_type is OwnerPredictor:
            policy, cmax = ext.POLICY_OWNER, 0
        else:
            policy, cmax = ext.POLICY_BIFS, _BIFS_COUNTER_MAX
        return _run_policy_replay(
            proto, trace, out, "policy_replay", policy,
            n, use_pc, gshift, block_size,
            list(tables), [t._entry_factory for t in tables], None, None,
            cmax, 0, 0, 0, None, 0, 0, 0,
        )

    if first_type is OwnerGroupPredictor:
        geometry = _replay_geometry(proto, "policy_replay")
        if geometry is None:
            return False
        n, use_pc, gshift, block_size = geometry
        owners = [p._owner for p in predictors]
        groups = [p._group for p in predictors]
        if any(type(o) is not OwnerPredictor for o in owners) or any(
            type(g) is not GroupPredictor for g in groups
        ):
            _kernels.record_decline("policy_replay", "envelope")
            return False
        g0 = groups[0]
        cmax = g0._counter_max
        thr = g0._threshold
        rperiod = g0._rollover_period
        tdown = g0._train_down
        if any(
            g._counter_max != cmax
            or g._threshold != thr
            or g._rollover_period != rperiod
            or g._train_down != tdown
            for g in groups
        ):
            _kernels.record_decline("policy_replay", "envelope")
            return False
        o_tables = [o._table for o in owners]
        g_tables = [g._table for g in groups]
        bounded = o_tables[0]._bounded
        if any(
            t._bounded != bounded for t in o_tables
        ) or any(t._bounded != bounded for t in g_tables):
            # fused_kernel applies o_tables[0]'s boundedness to both
            # halves on every node; see the Owner/BIFS note above.
            _kernels.record_decline("policy_replay", "envelope")
            return False
        return _run_policy_replay(
            proto, trace, out, "policy_replay", ext.POLICY_OWNER_GROUP,
            n, use_pc, gshift, block_size,
            list(o_tables), [t._entry_factory for t in o_tables],
            list(g_tables), [t._entry_factory for t in g_tables],
            cmax, thr, rperiod, tdown, None, 0, 0, 0,
        )

    # Uniform stock GroupPredictors route through try_group_replay;
    # anything else has no native twin.
    _kernels.record_decline("policy_replay", "envelope")
    return False


# ----------------------------------------------------------------------
# timing_pass: TimingSimulator._timing_pass_simple
# ----------------------------------------------------------------------

def timing_pass(simulator, measured, out) -> bool:
    """Native crossbar + simple-processor timing pass."""
    from repro.timing.interconnect import CrossbarInterconnect
    from repro.timing.processor import SimpleProcessorModel

    interconnect = simulator.interconnect
    processors = simulator.processors
    per_ns = SimpleProcessorModel.INSTRUCTIONS_PER_NS
    if type(interconnect) is not CrossbarInterconnect or not all(
        type(p) is SimpleProcessorModel
        and p.INSTRUCTIONS_PER_NS == per_ns
        for p in processors
    ):
        _kernels.record_decline("timing_pass", "envelope")
        return False
    requesters = measured._requesters
    instructions = measured._instructions
    if (
        requesters.itemsize != 4
        or instructions.itemsize != 8
        or len(out.latency_ns) != len(requesters)
    ):  # pragma: no cover - lengths always match after the protocol pass
        _kernels.record_decline("timing_pass", "envelope")
        return False

    clocks = array("d", [p.now_ns for p in processors])
    link_free = array("d", interconnect._link_free)
    total_queue_ns, carried = _ext().timing_pass(
        requesters,
        instructions,
        out.latency_ns,
        out.transfer_bytes,
        clocks,
        link_free,
        float(interconnect._bandwidth),
        float(per_ns),
        float(interconnect.total_queue_ns),
    )
    for processor, clock in zip(processors, clocks):
        processor.now_ns = clock
    interconnect._link_free[:] = link_free
    interconnect.bytes_carried += carried
    interconnect.total_queue_ns = total_queue_ns
    return True


def timing_pass_detailed(simulator, measured, out) -> bool:
    """Native crossbar + detailed-processor timing pass.

    The per-processor in-flight min-heaps travel as one flat
    ``n_nodes * max_outstanding`` double buffer plus a length vector;
    the extension replicates CPython's heapq sift order so the heap
    lists written back compare equal element-for-element.
    """
    from repro.timing.interconnect import CrossbarInterconnect
    from repro.timing.processor import DetailedProcessorModel

    interconnect = simulator.interconnect
    processors = simulator.processors
    per_ns = DetailedProcessorModel.INSTRUCTIONS_PER_NS
    if type(interconnect) is not CrossbarInterconnect or not processors:
        _kernels.record_decline("timing_pass_detailed", "envelope")
        return False
    max_out = getattr(processors[0], "max_outstanding", 0)
    if (
        max_out <= 0
        or max_out > _MAX_OUTSTANDING
        or not all(
            type(p) is DetailedProcessorModel
            and p.INSTRUCTIONS_PER_NS == per_ns
            and p.max_outstanding == max_out
            and len(p._in_flight) <= max_out
            for p in processors
        )
    ):
        _kernels.record_decline("timing_pass_detailed", "envelope")
        return False
    requesters = measured._requesters
    instructions = measured._instructions
    if (
        requesters.itemsize != 4
        or instructions.itemsize != 8
        or len(out.latency_ns) != len(requesters)
    ):  # pragma: no cover - lengths always match after the protocol pass
        _kernels.record_decline("timing_pass_detailed", "envelope")
        return False

    n_nodes = len(processors)
    clocks = array("d", [p.now_ns for p in processors])
    link_free = array("d", interconnect._link_free)
    heaps = array("d", bytes(8 * n_nodes * max_out))
    heap_lens = array("i", [len(p._in_flight) for p in processors])
    for idx, p in enumerate(processors):
        if p._in_flight:
            base = idx * max_out
            heaps[base:base + len(p._in_flight)] = array("d", p._in_flight)
    total_queue_ns, carried = _ext().timing_pass_detailed(
        requesters,
        instructions,
        out.latency_ns,
        out.transfer_bytes,
        clocks,
        link_free,
        heaps,
        heap_lens,
        max_out,
        float(interconnect._bandwidth),
        float(per_ns),
        float(interconnect.total_queue_ns),
    )
    for idx, p in enumerate(processors):
        p.now_ns = clocks[idx]
        base = idx * max_out
        p._in_flight[:] = heaps[base:base + heap_lens[idx]].tolist()
    interconnect._link_free[:] = link_free
    interconnect.bytes_carried += carried
    interconnect.total_queue_ns = total_queue_ns
    return True


# ----------------------------------------------------------------------
# collector: TraceCollector.process_chunk
# ----------------------------------------------------------------------

class _CollectorSession:
    """Owns the cache/MOSI state natively while chunks stream through.

    ``process_chunk`` lazily adopts (``load``) the Python-side state on
    first use after a flush; ``flush`` writes it back (``sync``) so the
    record-level APIs and inspection properties observe exactly what
    the Python loop would have left behind.
    """

    __slots__ = ("_collector", "_native", "_l1", "_l2", "_loaded")

    def __init__(self, collector, native_collector):
        self._collector = collector
        self._native = native_collector
        hierarchies = collector._hierarchies
        self._l1 = [h.l1.raw_sets for h in hierarchies]
        self._l2 = [h.l2.raw_sets for h in hierarchies]
        self._loaded = False

    def _state_args(self):
        collector = self._collector
        return (
            self._l1,
            self._l2,
            collector._global._blocks,
            collector._instructions,
            collector._instructions_at_last_miss,
        )

    def process_chunk(self, chunk) -> Optional[int]:
        """Filter one chunk natively; None -> caller uses the Python loop
        (state already flushed back)."""
        if not self._loaded:
            if not self._native.load(*self._state_args()):
                _kernels.record_decline("collector", "overflow")
                return None  # state outside the envelope
            self._loaded = True
        addresses = chunk.addresses_np
        if addresses is None:
            addresses = chunk.addresses
        result = self._native.process_chunk(
            chunk.nodes, addresses, chunk.pcs, chunk.writes,
            chunk.instructions,
        )
        if result is None:
            self.flush()
            _kernels.record_decline("collector", "overflow")
            return None
        n_miss, addr_b, pc_b, node_b, code_b, gap_b = result
        collector = self._collector
        collector._references += len(chunk.nodes)
        if n_miss:
            blocks = array("q")
            blocks.frombytes(addr_b)
            pcs = array("q")
            pcs.frombytes(pc_b)
            nodes = array("i")
            nodes.frombytes(node_b)
            codes = array("b")
            codes.frombytes(code_b)
            gaps = array("q")
            gaps.frombytes(gap_b)
            collector._trace.extend_fields(blocks, pcs, nodes, codes, gaps)
        return n_miss

    def flush(self) -> None:
        """Sync native state back into the Python-side structures."""
        if self._loaded:
            self._native.sync(*self._state_args())
            self._loaded = False


def make_collector_session(collector) -> Optional[_CollectorSession]:
    """Build a native collector session, or None when ineligible."""
    config = collector._config
    n = config.n_processors
    block_size = config.block_size
    if (
        n <= 0
        or n > 62
        or block_size <= 0
        or block_size & (block_size - 1)
        or not collector._hierarchies
    ):
        _kernels.record_decline("collector", "envelope")
        return None
    h0 = collector._hierarchies[0]
    try:
        native_collector = _ext().Collector(
            n,
            ~(block_size - 1),
            block_size.bit_length() - 1,
            h0.l1.n_sets,
            h0.l1.associativity,
            h0.l2.n_sets,
            h0.l2.associativity,
        )
    except ValueError:  # geometry outside the native envelope
        _kernels.record_decline("collector", "envelope")
        return None
    return _CollectorSession(collector, native_collector)
