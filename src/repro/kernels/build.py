"""Build the native kernel extension in a source checkout.

``python -m repro.kernels.build`` compiles ``_native.c`` next to its
source with the interpreter's own C compiler configuration — no build
system required beyond a C compiler.  Wheel builds go through
``setup.py`` instead (the sdist path also falls back to a pure-Python
wheel when no compiler is present); this module is the
developer/CI-checkout path.

Exit status 0 on success (the extension imports afterwards), 1 when
compilation fails — callers that treat the native tier as optional
should tolerate failure and stay on the Python tiers.
"""

from __future__ import annotations

import os
import subprocess
import sys
import sysconfig


def source_path() -> str:
    """Absolute path of the C source."""
    return os.path.join(os.path.dirname(__file__), "_native.c")


def extension_path() -> str:
    """Where the built extension lands (importable as ``_native``)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return os.path.join(os.path.dirname(__file__), "_native" + suffix)


def compiler_command() -> list:
    """The compile command line (exposed for inspection/tests)."""
    cc = sysconfig.get_config_var("CC") or os.environ.get("CC") or "cc"
    cflags = sysconfig.get_config_var("CCSHARED") or "-fPIC"
    include = sysconfig.get_paths()["include"]
    command = cc.split()
    command += ["-O2", "-fno-strict-aliasing"]
    command += cflags.split()
    command += ["-I", include, "-shared", source_path(), "-o",
                extension_path()]
    return command


def build(verbose: bool = True) -> bool:
    """Compile the extension in place.  True on success."""
    command = compiler_command()
    if verbose:
        print(" ".join(command))
    try:
        completed = subprocess.run(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
    except OSError as exc:  # no compiler on PATH
        if verbose:
            print(f"native kernel build skipped: {exc}", file=sys.stderr)
        return False
    output = completed.stdout.decode(errors="replace")
    if completed.returncode != 0:
        if verbose:
            print(output, file=sys.stderr)
            print(
                "native kernel build failed; the pure/numpy tiers "
                "remain fully functional.",
                file=sys.stderr,
            )
        return False
    if verbose and output.strip():
        print(output)
    return True


def main(argv=None) -> int:
    ok = build(verbose=True)
    if ok:
        print(f"built {extension_path()}")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
