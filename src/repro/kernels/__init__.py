"""The kernel ABI: the replay hot loops behind one boundary.

PRs 2-4 reshaped every hot path into narrow loops over flat int64
columns.  This package names that shape as an explicit ABI so the
loops can be swapped between a Python implementation and a compiled
one without either side knowing about the other:

**Inputs** — flat columns and config scalars only:

- trace columns: ``addresses``/``pcs``/``instructions`` as int64
  buffers (stdlib ``array('q')``), ``requesters`` as int32 (``'i'``),
  ``accesses`` as int8 (``'b'``);
- config scalars: node count, block/granularity shifts, predictor
  tuning (counter max/threshold/rollover), Table 4 latencies, traffic
  byte sizes — plain ints and floats;
- mutable simulation state at the boundary: the MOSI block map
  (``dict[block] -> (owner, sharers)``), predictor tables
  (:class:`repro.predictors.base.PredictorTable` flat dicts or the
  sticky-spatial ``_entries`` dicts), cache set arrays, per-node
  clocks and in-flight heaps.

**Outputs** — :class:`repro.protocols.base.OutcomeColumns`
(``latency_ns`` float64 + ``transfer_bytes`` int64, appended in trace
order) and counter structs folded through
:meth:`~repro.protocols.base.TrafficTotals.add_batch`; state objects
are mutated in place to the exact values the Python loops produce.

**Kernels** (one per hot loop):

- ``group_replay`` — the fused Group-predictor multicast replay
  (:func:`repro.protocols.fused.run_group`);
- ``policy_replay`` — the fused replay for the other compiled
  policies: Owner, Broadcast-if-shared, Owner-group, Sticky-spatial
  (:func:`repro.protocols.fused.run_kernel` with each policy's
  ``fused_kernel`` closures);
- ``collector`` — the chunk-consuming cache/MOSI filter
  (:meth:`repro.cache.pipeline.TraceCollector.process_chunk`),
  session-based so cache state stays native across chunks;
- ``timing_pass`` — the crossbar + simple-processor timing pass
  (:meth:`repro.timing.system.TimingSimulator._timing_pass_simple`);
- ``timing_pass_detailed`` — the crossbar + detailed-processor pass
  (bounded outstanding misses via per-node min-heaps), replicating
  CPython's heapq op order so clocks and heap contents stay
  bit-identical.

**Backends.**  ``pure`` and ``numpy`` are the existing Python loops
(they differ only in how derived columns are produced); ``native`` is
the C extension :mod:`repro.kernels._native` (built by
``python -m repro.kernels.build`` or the wheel).  The contract for
every backend is *byte identity*: same ResultSet JSON, same predictor
table state, same hex-float timing goldens — enforced by the
equivalence suites and ``tests/integration/test_kernel_abi.py``.

The ``try_*`` entry points below are the dispatch seam: they return
``False``/``None`` when the native tier is inactive
(:func:`repro.common.backend.native_active`) or the call is outside
the native kernel's envelope (>128 replay nodes / >62 collector
nodes, nonzero race probability, non-power-of-two granularity,
exotic predictor mixes, int64-overflowing keys), in which case the
caller falls back to the Python loops.  Fallbacks are *counted*, not
silent: each decline increments a per-kernel/per-reason counter
(:func:`decline_counts`) that the experiment runner snapshots into
``ResultSet.perf`` so a decline is visible as more than an
unexplained slowdown.  Eligibility is per call, and the Python tier
is always correct.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro.common import backend as _backend

#: Decline tallies keyed ``"<kernel>:<reason>"`` — e.g.
#: ``"policy_replay:envelope"``.  Reasons: ``envelope`` (geometry,
#: dtype, or predictor mix outside the compiled envelope),
#: ``overflow`` (runtime values the int64/uint128 lanes cannot carry),
#: ``race-probability`` (the Python tier draws random numbers the
#: kernel does not replicate).  The tally is process-wide and sweep
#: cells may replay on threads, so every access goes through
#: ``_declines_lock`` — the read-modify-write in
#: :func:`record_decline` is not atomic once the native kernels drop
#: the GIL around their compute phases.
_declines: Dict[str, int] = {}
_declines_lock = threading.Lock()


def record_decline(kernel: str, reason: str) -> None:
    """Count one native-kernel decline (kernel fell back to Python)."""
    key = f"{kernel}:{reason}"
    with _declines_lock:
        _declines[key] = _declines.get(key, 0) + 1


def decline_counts() -> Dict[str, int]:
    """Snapshot of decline tallies since the last reset."""
    with _declines_lock:
        return dict(_declines)


def reset_decline_counts() -> None:
    """Zero the decline tallies (runner calls this per run)."""
    with _declines_lock:
        _declines.clear()


def available_backends() -> Tuple[str, ...]:
    """Registered kernel backends on this machine, floor first."""
    names = ["pure"]
    if _backend._numpy_available():
        names.append("numpy")
    if _backend.native_available():
        names.append("native")
    return tuple(names)


def native_available() -> bool:
    """True when the compiled kernel extension is importable."""
    return _backend.native_available()


def try_group_replay(proto, trace, out=None) -> bool:
    """Run the fused Group replay natively; False -> caller falls back.

    Callers have already established :func:`fused.group_uniform`; this
    adds the native envelope checks and the state round-trip.
    """
    if not _backend.native_active():
        return False
    from repro.kernels import native

    return native.group_replay(proto, trace, out)


def try_policy_replay(proto, trace, out=None) -> bool:
    """Run a non-Group fused policy replay natively; False -> fall back.

    Callers have already established a homogeneous predictor list with
    a fused kernel (Owner, Broadcast-if-shared, Owner-group, or
    Sticky-spatial); this adds the native envelope checks and the
    table-state round-trip.
    """
    if not _backend.native_active():
        return False
    from repro.kernels import native

    return native.policy_replay(proto, trace, out)


def try_timing_pass(simulator, measured, out) -> bool:
    """Run the crossbar+simple timing pass natively; False -> fall back."""
    if not _backend.native_active():
        return False
    from repro.kernels import native

    return native.timing_pass(simulator, measured, out)


def try_timing_pass_detailed(simulator, measured, out) -> bool:
    """Run the crossbar+detailed timing pass natively; False -> fall back."""
    if not _backend.native_active():
        return False
    from repro.kernels import native

    return native.timing_pass_detailed(simulator, measured, out)


def collector_session(collector) -> Optional[object]:
    """A native chunk-collector session, or None to use the Python loop.

    The session owns the cache/MOSI state while chunks stream through
    it; the collector flushes it (syncing every Python-side structure
    back to the exact values the Python loop would have produced)
    before any record-level or inspection API touches that state.
    """
    if not _backend.native_active():
        return None
    from repro.kernels import native

    return native.make_collector_session(collector)
