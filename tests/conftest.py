"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.params import PredictorConfig, SystemConfig
from repro.common.types import AccessType
from repro.trace.record import TraceRecord
from repro.trace.trace import Trace

KB = 1024
MB = 1024 * KB


@pytest.fixture(autouse=True)
def _hermetic_trace_cache(tmp_path, monkeypatch):
    """Point the persistent trace cache at a per-test directory.

    CLI commands default to the user-level cache location; tests must
    neither read from nor write to it.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "trace-cache"))


@pytest.fixture
def config16() -> SystemConfig:
    """The paper's 16-node Table 4 system."""
    return SystemConfig()


@pytest.fixture
def config4() -> SystemConfig:
    """A small 4-node system with tiny caches for fast unit tests."""
    return SystemConfig(
        n_processors=4,
        l1i_size=4 * KB,
        l1d_size=4 * KB,
        l2_size=16 * KB,
    )


@pytest.fixture
def small_predictor_config() -> PredictorConfig:
    """A small bounded predictor table."""
    return PredictorConfig(
        n_entries=64, associativity=4, index_granularity=64
    )


@pytest.fixture
def unbounded_predictor_config() -> PredictorConfig:
    """An unbounded, block-indexed predictor table."""
    return PredictorConfig(n_entries=None, index_granularity=64)


def gets(address: int, requester: int, pc: int = 0x1000) -> TraceRecord:
    """A GETS (read) trace record."""
    return TraceRecord(
        address=address, pc=pc, requester=requester, access=AccessType.GETS
    )


def getx(address: int, requester: int, pc: int = 0x2000) -> TraceRecord:
    """A GETX (write) trace record."""
    return TraceRecord(
        address=address, pc=pc, requester=requester, access=AccessType.GETX
    )


def make_trace(records, n_processors: int = 4, name: str = "test") -> Trace:
    """Build a trace from record helpers."""
    return Trace(records, n_processors=n_processors, name=name)
