"""Kernel-ABI conformance: every backend, every kernel, same bytes.

:mod:`repro.kernels` names the replay hot loops (group + policy
replays, chunk collector, simple + detailed timing passes) as an
explicit ABI with three registered
backends — ``pure``, ``numpy``, ``native``.  The contract is that the
unified backend switch (:mod:`repro.common.backend`) selects *speed
only*: every kernel must produce byte-identical traces, totals,
predictor-table state, coherence state, and timing results under every
backend, for every protocol and predictor — including configurations
where a backend's fastest tier declines (falls back) mid-run.

The native parametrization is skipped with a reason when the compiled
extension is absent (source-only checkout, no compiler), keeping the
suite green on the no-compiler CI leg.
"""

import pytest

from repro import kernels
from repro.common import backend as _backend
from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.runtime import make_protocol
from repro.predictors.registry import PAPER_POLICIES
from repro.timing.system import TimingSimulator
from repro.workloads import create_workload

from test_columnar_equivalence import _predictor_table_state

N_REFERENCES = 2_500
WORKLOAD = "oltp"
PROTOCOL_LABELS = (
    "directory", "broadcast-snooping", *PAPER_POLICIES, "sticky-spatial"
)
PROCESSOR_MODELS = ("simple", "detailed")

ALL_BACKENDS = _backend.BACKENDS  # pure, numpy, native


@pytest.fixture(params=ALL_BACKENDS)
def unified_backend(request):
    """Select one registered backend; skip-with-reason when absent."""
    name = request.param
    if name not in kernels.available_backends():
        pytest.skip(
            f"{name} backend unavailable on this machine"
            + (
                " (build the extension with"
                " `python -m repro.kernels.build`)"
                if name == "native"
                else ""
            )
        )
    _backend.set_backend(name)
    yield name
    _backend.set_backend("auto")


@pytest.fixture(scope="module")
def reference():
    """Ground truth computed under the pure backend."""
    _backend.set_backend("pure")
    try:
        trace = create_workload(WORKLOAD, seed=13).collect(
            N_REFERENCES
        ).trace
        runs = {}
        for label in PROTOCOL_LABELS:
            config = SystemConfig()
            protocol = make_protocol(label, config, PredictorConfig())
            protocol.run(trace[:])
            tables = (
                _predictor_table_state(protocol)
                if hasattr(protocol, "predictors")
                else None
            )
            runtimes = {}
            for model in PROCESSOR_MODELS:
                simulator = TimingSimulator(
                    config,
                    make_protocol(label, config, PredictorConfig()),
                    processor_model=model,
                )
                runtimes[model] = simulator.run(trace[:])
            runs[label] = (
                protocol.totals,
                tables,
                dict(protocol.state._blocks),
                runtimes,
            )
    finally:
        _backend.set_backend("auto")
    return {"trace": trace, "runs": runs}


def test_collector_kernel_conformance(unified_backend, reference):
    """The chunk-collector kernel emits the identical miss trace."""
    result = create_workload(WORKLOAD, seed=13).collect(N_REFERENCES)
    trace = result.trace
    expected = reference["trace"]
    assert list(trace._addresses) == list(expected._addresses)
    assert list(trace._pcs) == list(expected._pcs)
    assert list(trace._requesters) == list(expected._requesters)
    assert list(trace._accesses) == list(expected._accesses)
    assert list(trace._instructions) == list(expected._instructions)


@pytest.mark.parametrize("label", PROTOCOL_LABELS)
def test_replay_kernel_conformance(unified_backend, reference, label):
    """Replay kernels leave identical totals/tables/coherence state."""
    trace = reference["trace"][:]
    protocol = make_protocol(label, SystemConfig(), PredictorConfig())
    protocol.run(trace)
    totals, tables, blocks, _ = reference["runs"][label]
    assert protocol.totals == totals
    if tables is not None:
        assert _predictor_table_state(protocol) == tables
    assert protocol.state._blocks == blocks


@pytest.mark.parametrize("model", PROCESSOR_MODELS)
@pytest.mark.parametrize("label", PROTOCOL_LABELS)
def test_timing_kernel_conformance(
    unified_backend, reference, label, model
):
    """The timing-pass kernels reproduce the exact RuntimeResult for
    both processor models."""
    trace = reference["trace"][:]
    config = SystemConfig()
    simulator = TimingSimulator(
        config,
        make_protocol(label, config, PredictorConfig()),
        processor_model=model,
    )
    runtime = simulator.run(trace)
    assert runtime == reference["runs"][label][3][model]


def test_backend_registry_shape():
    """available_backends() lists the floor first and native last."""
    names = kernels.available_backends()
    assert names[0] == "pure"
    assert set(names) <= set(ALL_BACKENDS)
    assert kernels.native_available() == ("native" in names)
