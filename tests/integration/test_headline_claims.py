"""The paper's headline claims, as qualitative shape assertions.

Every assertion here encodes a sentence from the paper's abstract,
Section 4.3, or Section 5.3.  Absolute numbers differ (synthetic
substrate); orderings and rough factors must hold.
"""

import pytest

from repro.common.params import PredictorConfig
from repro.evaluation.runtime import evaluate_runtime
from repro.evaluation.tradeoff import evaluate_design_space

PAPER_PREDICTORS = ("owner", "broadcast-if-shared", "group", "owner-group")


@pytest.fixture(scope="module")
def oltp_points(oltp_trace):
    return {
        p.label: p
        for p in evaluate_design_space(
            oltp_trace, predictors=PAPER_PREDICTORS + ("oracle",)
        )
    }


@pytest.fixture(scope="module")
def apache_points(apache_trace):
    return {
        p.label: p
        for p in evaluate_design_space(
            apache_trace, predictors=PAPER_PREDICTORS
        )
    }


class TestEndpoints:
    def test_snooping_is_zero_indirection_max_bandwidth(self, oltp_points):
        snooping = oltp_points["broadcast-snooping"]
        assert snooping.indirection_pct == 0.0
        assert snooping.request_messages_per_miss == pytest.approx(15.0)
        for label, point in oltp_points.items():
            assert (
                point.request_messages_per_miss
                <= snooping.request_messages_per_miss + 1e-9
            ), label

    def test_directory_is_minimum_bandwidth(self, oltp_points):
        directory = oltp_points["directory"]
        for label, point in oltp_points.items():
            if label in ("directory", "oracle"):
                continue
            assert (
                point.request_messages_per_miss
                >= directory.request_messages_per_miss - 0.2
            ), label


class TestAbstractClaim:
    """Abstract: 'reduce indirections by up to 90% versus a directory,
    using less than one third the request bandwidth of snooping.'"""

    def test_group_reduces_indirections_by_most_of_directory(
        self, oltp_points, apache_points
    ):
        for points in (oltp_points, apache_points):
            directory = points["directory"].indirection_pct
            group = points["group"].indirection_pct
            assert group < 0.25 * directory

    def test_group_uses_less_than_third_of_snooping_bandwidth(
        self, oltp_points, apache_points
    ):
        for points in (oltp_points, apache_points):
            snooping = points["broadcast-snooping"]
            group = points["group"]
            assert (
                group.request_messages_per_miss
                < snooping.request_messages_per_miss / 3.0
            )


class TestSection43Claims:
    def test_owner_small_bandwidth_increment_over_directory(
        self, oltp_points
    ):
        """Owner: < 25% more request traffic than the directory."""
        directory = oltp_points["directory"]
        owner = oltp_points["owner"]
        assert owner.request_messages_per_miss < (
            1.5 * directory.request_messages_per_miss
        )
        assert owner.indirection_pct < directory.indirection_pct

    def test_bifs_keeps_indirections_under_six_percent(
        self, oltp_points, apache_points
    ):
        for points in (oltp_points, apache_points):
            assert points["broadcast-if-shared"].indirection_pct < 6.0

    def test_bifs_cheaper_than_snooping(self, oltp_points):
        assert (
            oltp_points["broadcast-if-shared"].request_messages_per_miss
            < oltp_points["broadcast-snooping"].request_messages_per_miss
        )

    def test_group_halves_snooping_traffic_below_15pct_indirection(
        self, oltp_points, apache_points
    ):
        for points in (oltp_points, apache_points):
            group = points["group"]
            snooping = points["broadcast-snooping"]
            assert group.indirection_pct < 15.0
            assert (
                group.request_messages_per_miss
                < snooping.request_messages_per_miss / 2
            )

    def test_owner_group_between_owner_and_group(self, oltp_points):
        owner = oltp_points["owner"]
        group = oltp_points["group"]
        hybrid = oltp_points["owner-group"]
        assert (
            group.indirection_pct - 1.0
            <= hybrid.indirection_pct
            <= owner.indirection_pct + 1.0
        )
        assert (
            hybrid.request_messages_per_miss
            <= group.request_messages_per_miss + 0.2
        )

    def test_oracle_bounds_every_policy(self, oltp_points):
        oracle = oltp_points["oracle"]
        assert oracle.indirection_pct == 0.0
        for label, point in oltp_points.items():
            assert (
                oracle.request_messages_per_miss
                <= point.request_messages_per_miss + 1e-9
            ), label


class TestRuntimeHeadline:
    """Abstract: 'one of our predictors obtains almost 90% of the
    performance of snooping while using only 15% more bandwidth than a
    directory protocol (and less than half the bandwidth of
    snooping).'"""

    @pytest.fixture(scope="class")
    def runtime_points(self, oltp_trace):
        return {
            p.label: p
            for p in evaluate_runtime(
                oltp_trace, predictors=("owner-group", "group")
            )
        }

    def test_some_predictor_achieves_headline(self, runtime_points):
        snooping = runtime_points["broadcast-snooping"]
        directory = runtime_points["directory"]
        achieved = False
        for label in ("owner-group", "group"):
            point = runtime_points[label]
            performance = (
                snooping.normalized_runtime / point.normalized_runtime
            )
            bandwidth_increment = (
                point.normalized_traffic_per_miss
                / directory.normalized_traffic_per_miss
            )
            half_snooping = (
                point.normalized_traffic_per_miss
                < snooping.normalized_traffic_per_miss / 2
            )
            if performance > 0.85 and bandwidth_increment < 1.25 and (
                half_snooping
            ):
                achieved = True
        assert achieved

    def test_snooping_fastest_directory_slowest(self, runtime_points):
        runtimes = {
            label: p.normalized_runtime
            for label, p in runtime_points.items()
        }
        assert min(runtimes, key=runtimes.get) == "broadcast-snooping"
        assert max(runtimes, key=runtimes.get) == "directory"

    def test_snooping_about_twice_directory_traffic(self, runtime_points):
        """Section 5.3: snooping uses about twice the interconnect
        bandwidth of the directory protocol on this configuration."""
        ratio = (
            runtime_points["broadcast-snooping"].normalized_traffic_per_miss
            / runtime_points["directory"].normalized_traffic_per_miss
        )
        assert 1.6 < ratio < 3.0
