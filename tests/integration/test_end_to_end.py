"""Cross-module integration: pipeline -> protocols -> analysis."""

import pytest

from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.tradeoff import evaluate_design_space
from repro.protocols.directory import DirectoryProtocol
from repro.protocols.multicast import MulticastSnoopingProtocol
from repro.protocols.snooping import BroadcastSnoopingProtocol
from repro.trace.io import read_trace, write_trace
from repro.workloads import create_workload


class TestProtocolAgreement:
    """All three protocols enforce identical MOSI semantics, so after
    the same trace they must agree on every block's owner/sharers."""

    def test_final_states_identical(self, oltp_trace):
        config = SystemConfig()
        protocols = [
            BroadcastSnoopingProtocol(config),
            DirectoryProtocol(config),
            MulticastSnoopingProtocol(config, "group"),
        ]
        sample = oltp_trace[:20_000]
        for protocol in protocols:
            protocol.run(sample)
        reference = protocols[0].state
        blocks = {record.block(64) for record in sample}
        for protocol in protocols[1:]:
            for block in blocks:
                expected = reference.lookup(block)
                actual = protocol.state.lookup(block)
                assert actual.owner == expected.owner
                assert actual.sharers == expected.sharers

    def test_per_request_indirection_consistency(self, apache_trace):
        """Multicast with the minimal predictor indirects exactly when
        the directory metric does, except when the home node itself is
        the owner/last sharer: the multicast minimal set (requester +
        home) covers that case for free, so multicast can only do
        better, never worse."""
        from repro.common.types import home_node

        config = SystemConfig()
        directory = DirectoryProtocol(config)
        multicast = MulticastSnoopingProtocol(config, "minimal")
        better = 0
        for record in apache_trace[:20_000]:
            expected = directory.handle(record)
            actual = multicast.handle(record)
            if actual.indirection != expected.indirection:
                # Only allowed direction: multicast succeeded where the
                # directory metric counted an indirection, and only
                # because the home node covered the required set.
                assert expected.indirection and not actual.indirection
                home = home_node(record.address, 16, 64)
                uncovered = expected.coherence.required.remove(home)
                assert uncovered.remove(record.requester).is_empty()
                better += 1
        # The home-owner coincidence is rare (~1/16 of sharing misses).
        assert better < 20_000 * 0.15


class TestTraceRoundTripThroughEvaluation:
    def test_saved_trace_reproduces_results(self, tmp_path, corpus):
        trace = corpus.trace("barnes-hut", 20_000)
        path = tmp_path / "barnes.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        config = PredictorConfig(n_entries=None)
        original = evaluate_design_space(
            trace, predictors=("group",), predictor_config=config
        )
        reloaded = evaluate_design_space(
            loaded, predictors=("group",), predictor_config=config
        )
        for a, b in zip(original, reloaded):
            assert a.indirection_pct == b.indirection_pct
            assert a.request_messages_per_miss == (
                b.request_messages_per_miss
            )


class TestScalingAcrossProcessorCounts:
    @pytest.mark.parametrize("n_processors", [4, 8, 32])
    def test_full_pipeline_at_other_sizes(self, n_processors):
        config = SystemConfig(n_processors=n_processors)
        model = create_workload("apache", config=config, seed=9)
        result = model.collect(12_000)
        assert len(result.trace) > 0
        points = evaluate_design_space(
            result.trace,
            config=config,
            predictors=("owner", "group"),
        )
        by_label = {p.label: p for p in points}
        snooping = by_label["broadcast-snooping"]
        assert snooping.request_messages_per_miss == pytest.approx(
            n_processors - 1
        )
        assert snooping.indirection_pct == 0.0
        # Prediction still lands between the endpoints.
        group = by_label["group"]
        assert (
            group.indirection_pct < by_label["directory"].indirection_pct
        )
        assert (
            group.request_messages_per_miss
            < snooping.request_messages_per_miss
        )


class TestDeterminism:
    def test_identical_runs_produce_identical_points(self, corpus):
        trace = corpus.trace("ocean", 20_000)
        first = evaluate_design_space(trace, predictors=("owner-group",))
        second = evaluate_design_space(trace, predictors=("owner-group",))
        assert [str(p) for p in first] == [str(p) for p in second]
