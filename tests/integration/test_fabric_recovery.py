"""Fabric end-to-end: crash recovery, resume, and serving.

The fabric's headline contract is *indifference to failure shape*:
whether a sweep runs serially in one process, across a worker fleet,
or through an interrupted fleet whose cells are reclaimed by a
differently-sized second fleet, the assembled :class:`ResultSet` JSON
is byte-for-byte identical.  These tests exercise that contract with
a real SIGKILL mid-cell (via the ``REPRO_FABRIC_HOLD_SECONDS`` chaos
hook, so the worker dies while reliably holding a lease) and with the
``repro serve`` HTTP endpoint answering warm lookups from the store.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiment import ExperimentSpec, Runner
from repro.fabric import FabricCoordinator, FabricWorker, make_server
from repro.fabric.worker import HOLD_ENV

SPEC = ExperimentSpec(
    workloads=("barnes-hut",),
    kind="tradeoff",
    n_references=1500,
    policies=("owner",),
)

#: Runtime-kind spec with a bandwidth axis: exercises the baseline
#: normalization (directory = 100 runtime, snooping = 100 traffic)
#: that assembly must reproduce bit-exactly.
RUNTIME_SPEC = ExperimentSpec(
    workloads=("barnes-hut",),
    kind="runtime",
    n_references=1500,
    policies=("owner",),
    link_bandwidths=(10.0, 2.5),
)


def serial_reference(spec):
    """What the fabric must reproduce byte-for-byte."""
    return Runner(jobs=1).run(spec)


class TestCoordinatorByteIdentity:
    def test_fabric_json_matches_serial(self, tmp_path):
        results = FabricCoordinator(tmp_path).run(SPEC, workers=1)
        serial = serial_reference(SPEC)
        assert results == serial
        assert results.to_json() == serial.to_json()

    def test_runtime_normalization_survives_assembly(self, tmp_path):
        results = FabricCoordinator(tmp_path).run(
            RUNTIME_SPEC, workers=1
        )
        serial = serial_reference(RUNTIME_SPEC)
        assert results.to_json() == serial.to_json()

    def test_interrupt_resume_different_worker_count(self, tmp_path):
        # First invocation: partial progress only (one cell), as if
        # interrupted.  Second invocation: different worker count,
        # resumes the remaining cells without recomputing the first.
        coordinator = FabricCoordinator(tmp_path)
        coordinator.enqueue_missing(RUNTIME_SPEC)
        FabricWorker(tmp_path, max_cells=1).run()

        counts = coordinator.enqueue_missing(RUNTIME_SPEC)
        assert counts["stored"] == 1
        results = coordinator.run(RUNTIME_SPEC, workers=2)
        assert results.to_json() == serial_reference(
            RUNTIME_SPEC
        ).to_json()


class TestCrashRecovery:
    def test_sigkilled_worker_lease_reclaimed(self, tmp_path):
        """SIGKILL a worker mid-cell; a second worker finishes the job.

        The first worker is a real OS process started via the CLI
        (``python -m repro work``), held mid-cell by the chaos hook so
        the kill lands while its lease is live.  After the TTL lapses,
        an in-process worker reclaims the cell and drains the queue;
        the assembled ResultSet must be byte-identical to serial.
        """
        coordinator = FabricCoordinator(tmp_path, lease_ttl=1.5)
        coordinator.enqueue_missing(SPEC)

        env = dict(os.environ)
        env[HOLD_ENV] = "120"  # hold forever (by test standards)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [env.get("PYTHONPATH"), "src"])
        )
        victim = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "work",
                os.fspath(tmp_path), "--lease-ttl", "1.5",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the victim holds a lease (claim file exists).
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if any(coordinator.layout.claims.glob("*.json")):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("victim worker never claimed a cell")
            victim.send_signal(signal.SIGKILL)
            victim.wait(timeout=10.0)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()

        # The dead worker's heartbeat stops; after the TTL the rescue
        # worker reclaims the cell (one "lease expired" attempt is
        # recorded) and drains the queue.
        rescue = FabricWorker(
            tmp_path, worker_id="rescue", lease_ttl=1.5
        )
        deadline = time.time() + 60.0
        while coordinator.try_assemble(SPEC) is None:
            rescue.run()
            assert time.time() < deadline, "queue never drained"
            time.sleep(0.1)

        results = coordinator.try_assemble(SPEC)
        assert not results.failures  # reclaimed, not quarantined
        assert results.to_json() == serial_reference(SPEC).to_json()

        # The interruption left an audit trail: the reclaim bumped the
        # cell's attempt count before the rescue worker completed it.
        status = coordinator.status()
        assert status["pending"] == 0
        assert status["leased"] == 0


class TestServeEndpoint:
    @pytest.fixture()
    def server(self, tmp_path):
        httpd = make_server(tmp_path, port=0)  # ephemeral port
        thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        thread.start()
        yield httpd
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=5.0)

    def _get(self, server, path):
        url = f"http://127.0.0.1:{server.server_address[1]}{path}"
        try:
            with urllib.request.urlopen(url) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def _post(self, server, path, body):
        url = f"http://127.0.0.1:{server.server_address[1]}{path}"
        request = urllib.request.Request(
            url, data=body.encode("ascii"), method="POST"
        )
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def test_unknown_digest_404(self, server):
        code, body = self._get(server, "/result/" + "0" * 16)
        assert code == 404
        assert b"not registered" in body

    def test_bad_path_404(self, server):
        code, _ = self._get(server, "/result/short")
        assert code == 404

    def test_status_endpoint(self, server, tmp_path):
        code, body = self._get(server, "/status")
        assert code == 200
        status = json.loads(body)
        assert status["pending"] == 0
        assert status["fabric_dir"] == str(tmp_path)

    def test_cold_post_enqueues_then_drains_to_200(
        self, server, tmp_path
    ):
        code, body = self._post(server, "/sweep", SPEC.to_json())
        assert code == 202
        progress = json.loads(body)
        assert progress["enqueued"] == SPEC.n_jobs
        assert progress["cells_stored"] == 0

        FabricWorker(tmp_path).run()

        digest = progress["digest"]
        code, body = self._get(server, f"/result/{digest}")
        assert code == 200
        expected = serial_reference(SPEC).to_json() + "\n"
        assert body == expected.encode("ascii")

    def test_warm_lookup_recomputes_nothing(self, server, tmp_path):
        # Fill the store first, through the coordinator.
        coordinator = FabricCoordinator(tmp_path)
        results = coordinator.run(SPEC, workers=1)
        digest = coordinator.register(SPEC)

        # Warm POST answers 200 immediately — and enqueues nothing.
        code, body = self._post(server, "/sweep", SPEC.to_json())
        assert code == 200
        assert body == (results.to_json() + "\n").encode("ascii")
        assert coordinator.queue.pending_keys() == []

        # Warm GET: byte-identical to the sweep's --out file.
        code, body = self._get(server, f"/result/{digest}")
        assert code == 200
        assert body == (results.to_json() + "\n").encode("ascii")

    def test_invalid_spec_400(self, server):
        code, body = self._post(server, "/sweep", '{"kind": "nope"}')
        assert code == 400
        assert b"invalid spec" in body
