"""Shared corpus for integration tests.

One moderate-size trace per workload, generated once per session —
big enough for stable shapes, small enough for CI.
"""

from __future__ import annotations

import pytest

from repro.evaluation.corpus import TraceCorpus

#: Reference count for integration traces.  Must be large enough that
#: post-warmup measurements are past the cold-miss regime (each
#: workload's footprint has been touched at least once); 200k
#: references yield ~100k-200k misses per workload.
N_REFERENCES = 200_000


@pytest.fixture(scope="session")
def corpus() -> TraceCorpus:
    return TraceCorpus()


@pytest.fixture(scope="session")
def oltp_trace(corpus):
    return corpus.trace("oltp", N_REFERENCES)


@pytest.fixture(scope="session")
def apache_trace(corpus):
    return corpus.trace("apache", N_REFERENCES)


@pytest.fixture(scope="session")
def ocean_trace(corpus):
    return corpus.trace("ocean", N_REFERENCES)
