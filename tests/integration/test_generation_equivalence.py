"""Cold-path equivalence: batched generation and columnar analyses.

Three contracts, each enforced byte-for-byte:

1. **Backend equivalence** — the chunked generation engine produces
   bit-identical traces under the numpy and pure-Python backends for
   every workload in the registry (two seeds each), and is invariant
   to the chunk size.
2. **Collector equivalence** — the chunk-consuming collector fast
   path, fed the scalar oracle stream, matches the original
   record-at-a-time collector exactly (trace bytes and counters).
3. **Analysis equivalence** — the columnar analysis kernels equal the
   retained record-loop oracles on real traces.
"""

import pytest

from repro.cache.pipeline import TraceCollector
from repro.analysis.locality import locality_cdf, locality_cdf_records
from repro.analysis.sharing import (
    degree_of_sharing,
    degree_of_sharing_records,
    sharing_histogram,
    sharing_histogram_records,
)
from repro.trace import columns
from repro.trace.stats import (
    compute_trace_stats,
    compute_trace_stats_records,
)
from repro.workloads import WORKLOAD_NAMES, create_workload
from repro.workloads.genchunks import chunks_from_references

N_REFERENCES = 6_000
SEEDS = (42, 7)

HAS_NUMPY = columns._import_numpy() is not None

needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy backend not installed"
)


def trace_bytes(trace):
    """The five raw columns, concatenated — the byte-identity probe."""
    return (
        trace.addresses.tobytes()
        + trace.pcs.tobytes()
        + trace.requesters.tobytes()
        + trace.accesses.tobytes()
        + trace.instructions.tobytes()
    )


@pytest.fixture
def restore_backend():
    yield
    columns.set_backend("auto")


@needs_numpy
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestBackendEquivalence:
    def test_numpy_and_pure_python_traces_identical(
        self, name, seed, restore_backend
    ):
        columns.set_backend("numpy")
        vectorized = create_workload(name, seed=seed).collect(
            N_REFERENCES
        )
        columns.set_backend("python")
        fallback = create_workload(name, seed=seed).collect(
            N_REFERENCES
        )
        assert trace_bytes(vectorized.trace) == trace_bytes(
            fallback.trace
        )
        assert vectorized.instructions == fallback.instructions
        assert vectorized.references == fallback.references


class TestChunkInvariance:
    @pytest.mark.parametrize("name", ("oltp", "ocean"))
    def test_chunk_size_does_not_change_the_stream(self, name):
        results = []
        for chunk_size in (512, 4_096):
            model = create_workload(name)
            collector = TraceCollector(
                model.scaled_config(), name=model.name
            )
            collector.run_chunks(
                model.reference_chunks(5_000, chunk_size)
            )
            results.append(trace_bytes(collector.result().trace))
        assert results[0] == results[1]

    def test_generation_is_deterministic_and_seed_sensitive(self):
        same_a = create_workload("apache", seed=3).collect(2_000)
        same_b = create_workload("apache", seed=3).collect(2_000)
        other = create_workload("apache", seed=4).collect(2_000)
        assert trace_bytes(same_a.trace) == trace_bytes(same_b.trace)
        assert trace_bytes(same_a.trace) != trace_bytes(other.trace)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestCollectorEquivalence:
    def test_chunk_collector_matches_per_record_collector(self, name):
        model = create_workload(name)
        oracle = model.collect(N_REFERENCES, batched=False)

        replay = create_workload(name)
        collector = TraceCollector(
            replay.scaled_config(), name=replay.name
        )
        result = collector.run_chunks(
            chunks_from_references(
                replay.references(N_REFERENCES), chunk_size=1_024
            )
        )
        assert trace_bytes(oracle.trace) == trace_bytes(result.trace)
        assert oracle.instructions == result.instructions
        assert oracle.references == result.references


class TestAnalysisKernelsMatchOracles:
    @pytest.fixture(scope="class")
    def trace(self):
        return create_workload("oltp").collect(20_000).trace

    def test_sharing_histogram(self, trace):
        assert sharing_histogram(trace) == sharing_histogram_records(
            trace
        )

    def test_degree_of_sharing(self, trace):
        for block_size in (None, 1024):
            assert degree_of_sharing(
                trace, block_size
            ) == degree_of_sharing_records(trace, block_size)

    def test_locality_cdf(self, trace):
        for kind in ("block", "macroblock", "pc"):
            assert locality_cdf(trace, kind) == locality_cdf_records(
                trace, kind
            )

    def test_trace_stats(self, trace):
        assert compute_trace_stats(trace) == compute_trace_stats_records(
            trace
        )
