"""Columnar engine vs. record-object engine equivalence.

The columnar trace engine replays traces through fused batch loops
(and allocation-free scalar kernels); the record-oriented path builds
:class:`TraceRecord`/:class:`RequestOutcome` objects per request.
Both must produce *identical* results — totals, runtime results,
accuracy numbers, and predictor table state — for every protocol and
predictor on every registered workload, on both column backends
(numpy-vectorized and pure Python).  This is the correctness contract
that lets the fast paths exist at all.

The backend is parametrized in-process via
:func:`repro.trace.columns.set_backend`; CI additionally runs the
whole suite with ``REPRO_PURE_PYTHON=1`` on an interpreter without
numpy installed.
"""

import pytest

from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.runtime import make_protocol
from repro.predictors.registry import PAPER_POLICIES
from repro.timing.system import TimingSimulator
from repro.trace import columns as trace_columns
from repro.trace.trace import Trace
from repro.workloads import WORKLOAD_NAMES, create_workload

N_REFERENCES = 4_000

PROTOCOL_LABELS = ("directory", "broadcast-snooping", *PAPER_POLICIES)


def _available_backends():
    backends = ["python"]
    try:
        import numpy  # noqa: F401
    except ImportError:
        pass
    else:
        backends.insert(0, "numpy")
    return backends


BACKENDS = _available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    """Run the test under one column backend, then restore detection."""
    trace_columns.set_backend(request.param)
    yield request.param
    trace_columns.set_backend("auto")


@pytest.fixture(scope="module")
def base_traces():
    """One small trace per registered workload (records + columns)."""
    collected = {}
    for name in WORKLOAD_NAMES:
        model = create_workload(name, seed=7)
        collected[name] = model.collect(N_REFERENCES).trace
    return collected


@pytest.fixture
def traces(base_traces, backend):
    """Fresh trace objects so derived columns build under ``backend``."""
    return {
        name: trace[:] for name, trace in base_traces.items()
    }


def _object_trace(trace: Trace):
    """The same requests as a plain list of records (object path)."""
    return list(trace)


def _predictor_table_state(protocol):
    """A deep, comparable snapshot of every predictor's mutable state.

    Walks ``__dict__``/slots recursively so any policy's counters,
    owner fields, bitmasks, and direct-mapped entries are captured;
    LRU access stamps and clocks are deliberately excluded (fused
    batches collapse repeated same-key touches, which preserves
    recency *order* but not absolute tick values).
    """

    def snapshot(value, depth=0):
        assert depth < 10, "unexpectedly deep predictor state"
        if isinstance(value, (int, float, str, bool, type(None))):
            return value
        if isinstance(value, (list, tuple)):
            return [snapshot(v, depth + 1) for v in value]
        if isinstance(value, dict):
            return {
                k: snapshot(v, depth + 1)
                for k, v in sorted(value.items())
            }
        # Entry/table/predictor objects: slots or __dict__.
        state = {}
        for slot in getattr(type(value), "__slots__", ()):
            if slot in ("_stamps", "_tick", "_config", "_entry_factory"):
                continue
            state[slot] = snapshot(getattr(value, slot), depth + 1)
        for name, attr in vars(value).items() if hasattr(
            value, "__dict__"
        ) else ():
            if name.startswith("__") or callable(attr):
                continue
            if name in ("config", "_state"):
                continue
            state[name] = snapshot(attr, depth + 1)
        return {"type": type(value).__name__, "state": state}

    return [snapshot(p) for p in protocol.predictors]


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("label", PROTOCOL_LABELS)
def test_protocol_totals_identical(traces, workload, label):
    trace = traces[workload]
    config = SystemConfig()
    predictor_config = PredictorConfig()

    columnar = make_protocol(label, config, predictor_config)
    assert columnar._fast_ok, f"{label} lost its fast path"
    columnar.run(trace)

    objects = make_protocol(label, config, predictor_config)
    objects.run(_object_trace(trace))

    assert columnar.totals == objects.totals


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("label", PROTOCOL_LABELS)
def test_runtime_result_identical(traces, workload, label):
    trace = traces[workload]
    config = SystemConfig()
    predictor_config = PredictorConfig()

    fast = TimingSimulator(
        config, make_protocol(label, config, predictor_config)
    )
    fast_result = fast.run(trace)

    slow = TimingSimulator(
        config, make_protocol(label, config, predictor_config)
    )
    slow_result = slow.run(trace, columnar=False)

    assert fast_result == slow_result


@pytest.mark.parametrize(
    "policy", (*PAPER_POLICIES, "sticky-spatial", "bandwidth-adaptive")
)
def test_predictor_tables_identical(traces, policy):
    """Fused batch training leaves tables exactly as per-event calls.

    Replays the same trace through the batched columnar engine and
    the record-object engine, then compares every predictor's full
    mutable state (counters, owners, predicted bitmasks, allocation
    and eviction counts) — not just the aggregate totals.
    """
    trace = traces["oltp"]
    config = SystemConfig()
    predictor_config = PredictorConfig()

    columnar = make_protocol(policy, config, predictor_config)
    columnar.run(trace)
    objects = make_protocol(policy, config, predictor_config)
    objects.run(_object_trace(trace))

    assert columnar.totals == objects.totals
    assert _predictor_table_state(columnar) == _predictor_table_state(
        objects
    )
    assert columnar.state._blocks == objects.state._blocks


@pytest.mark.parametrize("policy", ("group", "owner", "minimal"))
def test_race_probability_path_identical(traces, policy):
    """The window-of-vulnerability retry path draws the same RNG
    sequence (and produces the same totals) in the fused loops as in
    the record-object engine."""
    from repro.protocols.multicast import MulticastSnoopingProtocol

    trace = traces["oltp"]
    config = SystemConfig()

    columnar = MulticastSnoopingProtocol(
        config, policy, race_probability=0.3, seed=9
    )
    columnar.run(trace)
    objects = MulticastSnoopingProtocol(
        config, policy, race_probability=0.3, seed=9
    )
    objects.run(_object_trace(trace))

    assert columnar.totals == objects.totals
    assert columnar.totals.retries > 0  # the race path actually fired


def test_resultset_json_identical_across_backends_and_runners(tmp_path):
    """One spec, four executions, byte-identical ResultSet JSON.

    numpy vs pure-python columns x serial vs process-parallel: the
    acceptance contract for the batch execution layer.
    """
    from repro.experiment import ExperimentSpec, Runner

    spec = ExperimentSpec(
        workloads=("barnes-hut",),
        kind="tradeoff",
        n_references=3000,
        policies=("owner", "group", "sticky-spatial"),
    )
    texts = {}
    for backend in BACKENDS:
        trace_columns.set_backend(backend)
        try:
            serial = Runner(
                jobs=1, cache_dir=tmp_path / f"serial-{backend}"
            ).run(spec)
            parallel = Runner(
                jobs=2, cache_dir=tmp_path / f"parallel-{backend}"
            ).run(spec)
        finally:
            trace_columns.set_backend("auto")
        texts[f"{backend}-serial"] = serial.to_json()
        texts[f"{backend}-parallel"] = parallel.to_json()
    reference = texts[f"{BACKENDS[0]}-serial"]
    for label, text in texts.items():
        assert text == reference, f"{label} diverged"


@pytest.mark.parametrize("policy", PAPER_POLICIES)
def test_accuracy_identical_on_object_trace(traces, policy):
    """Accuracy probing (an ``_handle`` override) matches across inputs.

    The accuracy probe protocol overrides ``_handle``, so the engine
    must *not* take the fast path for it; scoring over the columnar
    trace and over a rebuilt record-by-record trace must agree.
    """
    from repro.analysis.accuracy import prediction_accuracy

    trace = traces["barnes-hut"]
    rebuilt = Trace(
        list(trace), n_processors=trace.n_processors, name=trace.name
    )
    a = prediction_accuracy(trace, policy)
    b = prediction_accuracy(rebuilt, policy)
    assert a.predictions == b.predictions
    assert a.coverage_pct == b.coverage_pct
    assert a.precision_pct == b.precision_pct
    assert a.outcomes == b.outcomes
