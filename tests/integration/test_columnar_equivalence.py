"""Columnar engine vs. record-object engine equivalence.

The columnar trace engine replays traces through allocation-free
scalar kernels (``_handle_fast``); the record-oriented path builds
:class:`TraceRecord`/:class:`RequestOutcome` objects per request.
Both must produce *identical* results — totals, runtime results, and
accuracy numbers — for every protocol and predictor on every
registered workload.  This is the correctness contract that lets the
fast path exist at all.
"""

import pytest

from repro.common.params import PredictorConfig, SystemConfig
from repro.evaluation.runtime import make_protocol
from repro.predictors.registry import PAPER_POLICIES
from repro.timing.system import TimingSimulator
from repro.trace.trace import Trace
from repro.workloads import WORKLOAD_NAMES, create_workload

N_REFERENCES = 4_000

PROTOCOL_LABELS = ("directory", "broadcast-snooping", *PAPER_POLICIES)


@pytest.fixture(scope="module")
def traces():
    """One small trace per registered workload (records + columns)."""
    collected = {}
    for name in WORKLOAD_NAMES:
        model = create_workload(name, seed=7)
        collected[name] = model.collect(N_REFERENCES).trace
    return collected


def _object_trace(trace: Trace):
    """The same requests as a plain list of records (object path)."""
    return list(trace)


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("label", PROTOCOL_LABELS)
def test_protocol_totals_identical(traces, workload, label):
    trace = traces[workload]
    config = SystemConfig()
    predictor_config = PredictorConfig()

    columnar = make_protocol(label, config, predictor_config)
    assert columnar._fast_ok, f"{label} lost its fast path"
    columnar.run(trace)

    objects = make_protocol(label, config, predictor_config)
    objects.run(_object_trace(trace))

    assert columnar.totals == objects.totals


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("label", PROTOCOL_LABELS)
def test_runtime_result_identical(traces, workload, label):
    trace = traces[workload]
    config = SystemConfig()
    predictor_config = PredictorConfig()

    fast = TimingSimulator(
        config, make_protocol(label, config, predictor_config)
    )
    fast_result = fast.run(trace)

    slow = TimingSimulator(
        config, make_protocol(label, config, predictor_config)
    )
    slow_result = slow.run(trace, columnar=False)

    assert fast_result == slow_result


@pytest.mark.parametrize("policy", PAPER_POLICIES)
def test_accuracy_identical_on_object_trace(traces, policy):
    """Accuracy probing (an ``_handle`` override) matches across inputs.

    The accuracy probe protocol overrides ``_handle``, so the engine
    must *not* take the fast path for it; scoring over the columnar
    trace and over a rebuilt record-by-record trace must agree.
    """
    from repro.analysis.accuracy import prediction_accuracy

    trace = traces["barnes-hut"]
    rebuilt = Trace(
        list(trace), n_processors=trace.n_processors, name=trace.name
    )
    a = prediction_accuracy(trace, policy)
    b = prediction_accuracy(rebuilt, policy)
    assert a.predictions == b.predictions
    assert a.coverage_pct == b.coverage_pct
    assert a.precision_pct == b.precision_pct
    assert a.outcomes == b.outcomes
