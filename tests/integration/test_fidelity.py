"""Calibration fidelity: each workload model vs its paper Table 2 row.

These are *shape* tests with deliberate slack: the workloads are
synthetic, so we require the reproduced statistics to sit near the
published values, not match them exactly.
"""

import pytest

from repro.analysis.properties import workload_properties
from repro.analysis.sharing import degree_of_sharing, sharing_histogram
from repro.workloads import WORKLOAD_NAMES, create_workload

from tests.integration.conftest import N_REFERENCES


@pytest.fixture(scope="module")
def measurements(corpus):
    results = {}
    for name in WORKLOAD_NAMES:
        result = corpus.collect(name, N_REFERENCES)
        results[name] = (
            create_workload(name).paper,
            workload_properties(result),
            result,
        )
    return results


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestTable2Fidelity:
    def test_directory_indirections_near_paper(self, measurements, name):
        paper, measured, _ = measurements[name]
        assert measured.directory_indirection_pct == pytest.approx(
            paper.directory_indirection_pct, abs=10.0
        )

    def test_miss_rate_within_factor_two(self, measurements, name):
        paper, measured, _ = measurements[name]
        ratio = (
            measured.misses_per_kilo_instruction
            / paper.misses_per_kilo_instr
        )
        assert 0.5 < ratio < 2.0

    def test_macroblock_footprint_smaller_than_block_count(
        self, measurements, name
    ):
        _, measured, _ = measurements[name]
        assert measured.footprint_macroblocks < measured.footprint_blocks
        assert measured.static_miss_pcs > 20


class TestTable2Ordering:
    def test_indirection_ordering_matches_paper(self, measurements):
        """Paper order: barnes > apache > oltp > ocean > jbb > slash."""
        ind = {
            name: measurements[name][1].directory_indirection_pct
            for name in WORKLOAD_NAMES
        }
        assert ind["barnes-hut"] > ind["apache"] > ind["oltp"]
        assert ind["oltp"] > ind["ocean"] > ind["specjbb"]
        assert ind["specjbb"] > ind["slashcode"]

    def test_commercial_miss_rates_exceed_scientific(self, measurements):
        mki = {
            name: measurements[name][1].misses_per_kilo_instruction
            for name in WORKLOAD_NAMES
        }
        for commercial in ("apache", "oltp", "specjbb"):
            for scientific in ("barnes-hut", "ocean"):
                assert mki[commercial] > mki[scientific]


class TestFigure2Shape:
    def test_few_misses_need_multiple_recipients(self, corpus):
        """Paper: only ~10% of requests go to >1 other processor."""
        for name in WORKLOAD_NAMES:
            trace = corpus.trace(name, N_REFERENCES)
            histogram = sharing_histogram(trace)
            assert histogram.multi_recipient_pct < 25.0, name

    def test_apache_majority_single_recipient(self, apache_trace):
        histogram = sharing_histogram(apache_trace)
        assert histogram.total_pct(1) > 40.0


class TestFigure3Shape:
    def test_most_blocks_touched_by_one_processor(self, corpus):
        """Fig 3a: the block histogram is dominated by degree 1."""
        for name in ("apache", "slashcode", "specjbb"):
            degree = degree_of_sharing(corpus.trace(name, N_REFERENCES))
            assert degree.blocks_pct[1] > 50.0, name

    def test_ocean_misses_concentrated_at_low_degree(self, ocean_trace):
        """Fig 3b: Ocean's misses hit blocks shared by <= 4 procs."""
        degree = degree_of_sharing(ocean_trace)
        assert degree.misses_cumulative(4) > 75.0

    def test_apache_misses_hit_widely_shared_blocks(self, apache_trace):
        """Fig 3b: commercial misses concentrate on widely-touched
        blocks far more than the block population (Fig 3a) suggests."""
        degree = degree_of_sharing(apache_trace)
        tail_misses = 100.0 - degree.misses_cumulative(8)
        tail_blocks = 100.0 - degree.blocks_cumulative(8)
        assert tail_misses > tail_blocks
