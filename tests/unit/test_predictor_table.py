"""Unit tests for the predictor table and indexing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import PredictorConfig
from repro.predictors.base import PredictorTable, indexing_key


class TestIndexingKey:
    def test_block_indexing(self):
        config = PredictorConfig(index_granularity=64)
        assert indexing_key(0x1234, 0xF00, config) == 0x1234 // 64

    def test_macroblock_indexing_merges_blocks(self):
        config = PredictorConfig(index_granularity=1024)
        key_a = indexing_key(0x1000, 0, config)
        key_b = indexing_key(0x13FF, 0, config)
        assert key_a == key_b

    def test_pc_indexing(self):
        config = PredictorConfig(use_pc_index=True)
        assert indexing_key(0x1234, 0xF00, config) == 0xF00


class TestBoundedTable:
    def make(self, entries=8, assoc=2):
        config = PredictorConfig(
            n_entries=entries, associativity=assoc, index_granularity=64
        )
        return PredictorTable(config, dict)

    def test_lookup_missing_returns_none(self):
        table = self.make()
        assert table.lookup(5) is None

    def test_allocate_then_lookup(self):
        table = self.make()
        entry = table.lookup_allocate(5)
        entry["x"] = 1
        assert table.lookup(5) is entry
        assert table.n_allocations == 1

    def test_capacity_bounded_with_lru(self):
        table = self.make(entries=8, assoc=2)  # 4 sets of 2
        # Keys 0, 4, 8 map to set 0.
        table.lookup_allocate(0)
        table.lookup_allocate(4)
        table.lookup(0)  # refresh 0
        table.lookup_allocate(8)  # evicts 4
        assert table.lookup(4) is None
        assert table.lookup(0) is not None
        assert table.n_evictions == 1

    def test_occupancy(self):
        table = self.make()
        for key in range(5):
            table.lookup_allocate(key)
        assert table.occupancy() == 5

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 100), max_size=300))
    def test_occupancy_never_exceeds_entries(self, keys):
        table = self.make(entries=16, assoc=4)
        for key in keys:
            table.lookup_allocate(key)
        assert table.occupancy() <= 16


class TestUnboundedTable:
    def test_never_evicts(self):
        config = PredictorConfig(n_entries=None, index_granularity=64)
        table = PredictorTable(config, dict)
        for key in range(10_000):
            table.lookup_allocate(key)
        assert table.occupancy() == 10_000
        assert table.n_evictions == 0
