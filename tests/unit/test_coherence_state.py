"""Unit and property tests for the global MOSI state tracker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.types import AccessType, MEMORY_NODE
from repro.coherence.state import BlockState, GlobalCoherenceState

from tests.conftest import gets, getx

N = 4


@pytest.fixture
def state():
    return GlobalCoherenceState(N)


class TestBlockState:
    def test_default_owned_by_memory(self):
        block = BlockState()
        assert block.owner == MEMORY_NODE
        assert block.holders() == frozenset()

    def test_holders_include_owner_and_sharers(self):
        block = BlockState(owner=1, sharers=frozenset({2, 3}))
        assert block.holders() == {1, 2, 3}
        assert block.is_cached(1) and block.is_cached(2)
        assert not block.is_cached(0)


class TestGets:
    def test_cold_read_from_memory(self, state):
        outcome = state.apply(gets(0x40, 0))
        assert outcome.responder == MEMORY_NODE
        assert outcome.required.is_empty()
        assert not outcome.directory_indirection
        assert state.lookup(0x40).sharers == {0}
        assert state.lookup(0x40).owner == MEMORY_NODE

    def test_read_after_write_is_cache_to_cache(self, state):
        state.apply(getx(0x40, 1))
        outcome = state.apply(gets(0x40, 0))
        assert outcome.responder == 1
        assert outcome.required.nodes() == (1,)
        assert outcome.directory_indirection
        # MOSI: writer keeps ownership (M -> O); reader becomes sharer.
        assert state.lookup(0x40).owner == 1
        assert state.lookup(0x40).sharers == {0}

    def test_read_by_owner_is_noop(self, state):
        state.apply(getx(0x40, 1))
        outcome = state.apply(gets(0x40, 1))
        assert outcome.responder == MEMORY_NODE
        assert outcome.required.is_empty()
        assert state.lookup(0x40).owner == 1


class TestGetx:
    def test_cold_write(self, state):
        outcome = state.apply(getx(0x40, 2))
        assert outcome.responder == MEMORY_NODE
        assert outcome.required.is_empty()
        assert state.lookup(0x40).owner == 2
        assert state.lookup(0x40).sharers == frozenset()

    def test_write_invalidates_sharers(self, state):
        state.apply(gets(0x40, 0))
        state.apply(gets(0x40, 1))
        outcome = state.apply(getx(0x40, 2))
        assert set(outcome.required) == {0, 1}
        assert outcome.directory_indirection
        assert state.lookup(0x40).owner == 2
        assert state.lookup(0x40).sharers == frozenset()

    def test_write_finds_owner(self, state):
        state.apply(getx(0x40, 1))
        outcome = state.apply(getx(0x40, 3))
        assert outcome.responder == 1
        assert set(outcome.required) == {1}
        assert state.lookup(0x40).owner == 3

    def test_upgrade_by_owner_requires_sharers_only(self, state):
        state.apply(getx(0x40, 1))
        state.apply(gets(0x40, 2))
        outcome = state.apply(getx(0x40, 1))
        assert outcome.responder == MEMORY_NODE  # no data transfer
        assert set(outcome.required) == {2}
        assert outcome.directory_indirection

    def test_is_cache_to_cache(self, state):
        state.apply(getx(0x40, 1))
        assert state.apply(gets(0x40, 0)).is_cache_to_cache
        assert not state.apply(gets(0x80, 0)).is_cache_to_cache


class TestEviction:
    def test_owner_eviction_writes_back(self, state):
        state.apply(getx(0x40, 1))
        state.evict(1, 0x40)
        assert state.lookup(0x40).owner == MEMORY_NODE

    def test_sharer_eviction_drops_silently(self, state):
        state.apply(getx(0x40, 1))
        state.apply(gets(0x40, 2))
        state.evict(2, 0x40)
        assert state.lookup(0x40).owner == 1
        assert state.lookup(0x40).sharers == frozenset()

    def test_eviction_of_untracked_block_is_noop(self, state):
        state.evict(0, 0x9999)
        assert state.n_tracked_blocks() == 0

    def test_eviction_by_nonholder_is_noop(self, state):
        state.apply(getx(0x40, 1))
        state.evict(2, 0x40)
        assert state.lookup(0x40).owner == 1


class TestValidation:
    def test_rejects_out_of_range_requester(self, state):
        with pytest.raises(ValueError):
            state.apply(gets(0x40, N + 1))

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            GlobalCoherenceState(0)
        with pytest.raises(ValueError):
            GlobalCoherenceState(4, block_size=100)

    def test_sub_block_addresses_share_state(self, state):
        state.apply(getx(0x40, 1))
        assert state.lookup(0x7F).owner == 1


class TestInvariants:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, N - 1),
                st.integers(0, 7),
                st.booleans(),
            ),
            max_size=150,
        )
    )
    def test_owner_never_in_sharers_and_required_excludes_requester(
        self, operations
    ):
        state = GlobalCoherenceState(N)
        for node, block_id, is_write in operations:
            record = (
                getx(block_id * 64, node)
                if is_write
                else gets(block_id * 64, node)
            )
            outcome = state.apply(record)
            assert node not in outcome.required
            block = state.lookup(block_id * 64)
            if block.owner != MEMORY_NODE:
                assert block.owner not in block.sharers

    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(st.integers(0, N - 1), st.integers(0, 3)),
            min_size=1,
            max_size=100,
        )
    )
    def test_writer_gets_exclusive_ownership(self, writes):
        state = GlobalCoherenceState(N)
        for node, block_id in writes:
            state.apply(getx(block_id * 64, node))
            block = state.lookup(block_id * 64)
            assert block.owner == node
            assert block.sharers == frozenset()
