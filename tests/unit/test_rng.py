"""Unit tests for deterministic RNG helpers."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.common.rng import derive_seed, make_rng, weighted_choice, zipf_rank


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_labels_separate_streams(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_base_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_make_rng_reproducible(self):
        a = make_rng(7, "x").random()
        b = make_rng(7, "x").random()
        assert a == b


class TestWeightedChoice:
    def test_degenerate_weight_always_chosen(self):
        rng = random.Random(0)
        for _ in range(50):
            assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"

    def test_respects_weights_statistically(self):
        rng = random.Random(0)
        picks = [
            weighted_choice(rng, ["a", "b"], [3.0, 1.0]) for _ in range(4000)
        ]
        fraction_a = picks.count("a") / len(picks)
        assert 0.70 < fraction_a < 0.80

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), [], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), ["a"], [1.0, 2.0])

    def test_rejects_zero_total(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), ["a"], [0.0])


class TestZipfRank:
    @given(st.integers(1, 10_000), st.integers(0, 2**32))
    def test_in_range(self, n, seed):
        rank = zipf_rank(random.Random(seed), n)
        assert 0 <= rank < n

    def test_skewed_towards_low_ranks(self):
        rng = random.Random(1)
        ranks = [zipf_rank(rng, 1000) for _ in range(5000)]
        low = sum(1 for r in ranks if r < 10)
        assert low > len(ranks) * 0.3  # heavy head

    def test_zero_exponent_is_uniform_range(self):
        rng = random.Random(2)
        ranks = {zipf_rank(rng, 8, exponent=0.0) for _ in range(500)}
        assert ranks == set(range(8))

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            zipf_rank(random.Random(0), 0)
