"""Unit tests for the bandwidth-adaptive hybrid predictor (extension)."""

import pytest

from repro.common.params import PredictorConfig
from repro.common.types import AccessType
from repro.predictors.adaptive import BandwidthAdaptivePredictor

N = 16
GETS = AccessType.GETS
CONFIG = PredictorConfig(n_entries=None, index_granularity=64)


def trained(budget):
    """A predictor trained so BIfS would broadcast and Owner knows 5."""
    predictor = BandwidthAdaptivePredictor(N, CONFIG, budget)
    for _ in range(3):
        predictor.train_response(0x40, 0, 5, GETS, allocate=True)
    return predictor


class TestModeSelection:
    def test_generous_budget_behaves_like_bifs(self):
        predictor = trained(budget=20.0)
        assert predictor.predict(0x40, 0, GETS).is_broadcast()
        assert predictor.stats()["aggressive_predictions"] == 1

    def test_tight_budget_falls_back_to_owner(self):
        predictor = trained(budget=0.5)
        # First prediction is aggressive (EWMA starts at 0), which
        # pushes the moving average over the tight budget...
        assert predictor.predict(0x40, 0, GETS).is_broadcast()
        # ...after which the controller switches to Owner mode.
        for _ in range(5):
            prediction = predictor.predict(0x40, 0, GETS)
        assert prediction.nodes() == (5,)
        assert predictor.stats()["conservative_predictions"] >= 1

    def test_budget_controls_long_run_set_size(self):
        tight = trained(budget=2.0)
        generous = trained(budget=14.0)
        tight_total = sum(
            tight.predict(0x40, 0, GETS).count() for _ in range(300)
        )
        generous_total = sum(
            generous.predict(0x40, 0, GETS).count() for _ in range(300)
        )
        assert tight_total < generous_total
        # The tight controller's recent set size hovers near budget.
        assert tight.stats()["recent_set_size"] < 8.0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            BandwidthAdaptivePredictor(N, CONFIG, budget_messages_per_miss=0)

    def test_trains_both_subpolicies(self):
        predictor = BandwidthAdaptivePredictor(N, CONFIG, 4.0)
        predictor.train_external(0x40, 0, 9, AccessType.GETX)
        predictor.train_response(0x40, 0, 9, GETS, allocate=True)
        # Owner learned 9 (response); drain the EWMA into Owner mode.
        for _ in range(10):
            predictor.predict(0x40, 0, AccessType.GETS)
        predictor._recent_set_size = 100.0  # force conservative
        assert predictor.predict(0x40, 0, GETS).nodes() == (9,)

    def test_entry_bits_is_sum(self):
        predictor = BandwidthAdaptivePredictor(N, CONFIG, 4.0)
        assert predictor.entry_bits() == 2 + (4 + 1)
