"""int64 overflow-safety at the kernel/column dtype edges.

The vectorized column backend and the native kernels both carry
destination-set bitmasks and predictor index keys in int64 lanes.
These tests pin the width contract so the big-system mode cannot
silently truncate:

- :class:`DestinationSet` masks are exact Python ints at any node
  count (bits above 16 — and above 62 — survive round-trips),
- the numpy column path refuses node counts whose bitmasks would not
  fit an int64 lane (``_MAX_NUMPY_NODES``) and falls back to the pure
  path with identical values,
- the native replay kernels accept 63-128-node geometries (two
  uint64 destination-set lanes) byte-identically to the Python tier,
  and decline (fall back, never truncate) past 128 nodes or when
  table keys leave the int64 envelope; the native collector keeps its
  single-word <= 62 envelope.
"""

import random

import pytest

from repro.common.destset import DestinationSet, full_mask, popcount
from repro.trace import columns as trace_columns


BIG_NODE_COUNTS = (17, 33, 62, 63, 64, 128)

#: Geometries inside the two-lane native replay envelope but past the
#: old single-word one.
WIDE_NATIVE_NODE_COUNTS = (63, 64, 128)


@pytest.mark.parametrize("n_nodes", BIG_NODE_COUNTS)
def test_destination_set_bits_width(n_nodes):
    """Masks stay exact above 16 (and above 62) nodes."""
    assert full_mask(n_nodes) == (1 << n_nodes) - 1
    broadcast = DestinationSet.broadcast(n_nodes)
    assert popcount(broadcast._bits) == n_nodes
    top = n_nodes - 1
    single = DestinationSet.of(n_nodes, top)
    assert single._bits == 1 << top
    assert list(single) == [top]
    union = single.union(DestinationSet.of(n_nodes, 0))
    assert union._bits == (1 << top) | 1
    assert union.contains(top) and union.contains(0)


def _derived(n_nodes, addresses, requesters):
    from array import array

    return trace_columns.derived_columns(
        array("q", addresses),
        array("q", [0] * len(addresses)),
        array("i", requesters),
        block_size=64,
        n_processors=n_nodes,
        key_granularity=1024,
    )


@pytest.mark.parametrize("n_nodes", (63, 64, 128))
def test_numpy_columns_decline_wide_masks(n_nodes):
    """Above 62 nodes the int64 lanes cannot hold a requester bit;
    the numpy path must fall back, not truncate."""
    if trace_columns.numpy_module() is None:
        pytest.skip("numpy backend not active")
    top = n_nodes - 1
    derived = _derived(n_nodes, [1 << 40, 4096], [top, 0])
    assert derived.reqbits[0] == 1 << top
    assert derived.minimals[0] & (1 << top)
    # Identical to the pure path.
    trace_columns.set_backend("python")
    try:
        pure = _derived(n_nodes, [1 << 40, 4096], [top, 0])
    finally:
        trace_columns.set_backend("auto")
    assert derived == pure


def _wide_trace(n_nodes, records=400, seed=7):
    from repro.trace.trace import Trace

    rng = random.Random(seed)
    trace = Trace(n_processors=n_nodes)
    for _ in range(records):
        block = rng.randrange(48) * 64
        trace.append_fields(
            block + rng.randrange(64),
            rng.randrange(1 << 20),
            rng.randrange(n_nodes),
            rng.randrange(2),
            rng.randrange(50),
        )
    return trace


def _table_snapshot(proto):
    snap = []
    for predictor in proto.predictors:
        table = getattr(predictor, "_table", None)
        if table is None:  # sticky-spatial keeps a raw entry dict
            snap.append((
                dict(predictor._entries),
                predictor.n_allocations,
                predictor.n_replacements,
            ))
            continue
        snap.append({
            key: tuple(
                getattr(entry, name)
                for name in type(entry).__slots__
            )
            for key, entry in table._entries.items()
        })
    return snap


@pytest.mark.parametrize("n_nodes", WIDE_NATIVE_NODE_COUNTS)
@pytest.mark.parametrize("label", ("group", "owner", "sticky-spatial"))
def test_native_replay_accepts_wide_systems(label, n_nodes):
    """63-128-node replays run natively, byte-identical to Python."""
    from repro.common.params import SystemConfig
    from repro import kernels

    if not kernels.native_available():
        pytest.skip("native kernel extension not built")
    from repro.common import backend as _backend
    from repro.kernels import native
    from repro.protocols.base import OutcomeColumns
    from repro.protocols.multicast import MulticastSnoopingProtocol

    config = SystemConfig(n_processors=n_nodes)
    trace = _wide_trace(n_nodes)

    proto_native = MulticastSnoopingProtocol(config, label)
    out_native = OutcomeColumns()
    if label == "group":
        accepted = native.group_replay(proto_native, trace, out_native)
    else:
        accepted = native.policy_replay(proto_native, trace, out_native)
    assert accepted  # inside the widened envelope: no decline

    proto_pure = MulticastSnoopingProtocol(config, label)
    out_pure = OutcomeColumns()
    with _backend.use("pure"):
        proto_pure._run_columns(trace, out_pure)

    assert out_native.latency_ns.tobytes() == out_pure.latency_ns.tobytes()
    assert (
        out_native.transfer_bytes.tobytes()
        == out_pure.transfer_bytes.tobytes()
    )
    assert proto_native.totals == proto_pure.totals
    assert proto_native.state._blocks == proto_pure.state._blocks
    assert _table_snapshot(proto_native) == _table_snapshot(proto_pure)


def test_native_kernels_decline_past_envelope():
    """Replay falls back (never truncates) past 128 nodes; the
    single-word collector keeps its 62-node envelope."""
    from repro.common.params import SystemConfig
    from repro import kernels

    if not kernels.native_available():
        pytest.skip("native kernel extension not built")
    from repro.cache.pipeline import TraceCollector
    from repro.kernels import native

    config = SystemConfig(n_processors=64)
    collector = TraceCollector(config)
    assert native.make_collector_session(collector) is None

    from repro.protocols.multicast import MulticastSnoopingProtocol
    from repro.trace.trace import Trace

    wide = SystemConfig(n_processors=129)
    proto = MulticastSnoopingProtocol(wide, "group")
    kernels.reset_decline_counts()
    assert not native.group_replay(
        proto, Trace(n_processors=129), out=None
    )
    assert kernels.decline_counts().get("group_replay:envelope") == 1


def test_native_group_replay_declines_overflowing_keys():
    """A predictor-table key outside int64 forces the Python tier.

    The native loader must return the no-op fallback (leaving every
    Python structure untouched) instead of truncating the key.
    """
    from repro.common.params import SystemConfig
    from repro import kernels

    if not kernels.native_available():
        pytest.skip("native kernel extension not built")
    from repro.common import backend as _backend
    from repro.kernels import native
    from repro.protocols.multicast import MulticastSnoopingProtocol
    from repro.trace.trace import Trace

    config = SystemConfig(n_processors=4)
    proto = MulticastSnoopingProtocol(config, "group")
    table = proto.predictors[0]._table
    huge = 1 << 70  # beyond any int64 lane
    entry = table.lookup_allocate(huge)
    entry.counters[1] = 3
    before = dict(table._entries)

    trace = Trace(n_processors=4)
    trace.append_fields(4096, 0, 2, 1, 10)
    with _backend.use("pure"):
        pass  # ensure backend module is initialised
    assert not native.group_replay(proto, trace, out=None)
    assert table._entries == before  # untouched by the declined call
