"""Unit and property tests for DestinationSet."""

import pytest
from hypothesis import given, strategies as st

from repro.common.destset import DestinationSet

N = 16


def bits_sets(n_nodes=N):
    return st.integers(min_value=0, max_value=(1 << n_nodes) - 1).map(
        lambda bits: DestinationSet(n_nodes, bits)
    )


class TestConstruction:
    def test_empty_has_no_members(self):
        s = DestinationSet.empty(N)
        assert s.is_empty()
        assert s.count() == 0
        assert list(s) == []

    def test_broadcast_has_all_members(self):
        s = DestinationSet.broadcast(N)
        assert s.is_broadcast()
        assert s.count() == N
        assert list(s) == list(range(N))

    def test_of_builds_exact_membership(self):
        s = DestinationSet.of(N, 3, 7, 11)
        assert s.nodes() == (3, 7, 11)

    def test_from_nodes_deduplicates(self):
        s = DestinationSet.from_nodes(N, [5, 5, 5])
        assert s.count() == 1

    def test_rejects_nonpositive_universe(self):
        with pytest.raises(ValueError):
            DestinationSet(0)

    def test_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError):
            DestinationSet(4, 1 << 4)

    def test_rejects_out_of_range_node(self):
        with pytest.raises(ValueError):
            DestinationSet.of(4, 4)
        with pytest.raises(ValueError):
            DestinationSet.of(4, -1)


class TestQueries:
    def test_contains(self):
        s = DestinationSet.of(N, 2, 9)
        assert s.contains(2) and s.contains(9)
        assert not s.contains(3)

    def test_in_operator(self):
        s = DestinationSet.of(N, 2)
        assert 2 in s
        assert 3 not in s
        assert "x" not in s
        assert N + 5 not in s

    def test_superset(self):
        big = DestinationSet.of(N, 1, 2, 3)
        small = DestinationSet.of(N, 2, 3)
        assert big.is_superset_of(small)
        assert not small.is_superset_of(big)
        assert big.is_superset_of(DestinationSet.empty(N))

    def test_len_matches_count(self):
        s = DestinationSet.of(N, 0, 15)
        assert len(s) == s.count() == 2


class TestAlgebra:
    def test_add_remove_roundtrip(self):
        s = DestinationSet.empty(N).add(4)
        assert s.contains(4)
        assert not s.remove(4).contains(4)

    def test_add_is_pure(self):
        s = DestinationSet.empty(N)
        s.add(1)
        assert s.is_empty()

    def test_union_intersection_difference(self):
        a = DestinationSet.of(N, 1, 2)
        b = DestinationSet.of(N, 2, 3)
        assert (a | b).nodes() == (1, 2, 3)
        assert (a & b).nodes() == (2,)
        assert (a - b).nodes() == (1,)

    def test_incompatible_universes_rejected(self):
        with pytest.raises(ValueError):
            DestinationSet.empty(4).union(DestinationSet.empty(8))

    def test_equality_and_hash(self):
        a = DestinationSet.of(N, 1, 2)
        b = DestinationSet.of(N, 2, 1)
        assert a == b
        assert hash(a) == hash(b)
        assert a != DestinationSet.of(N, 1)
        assert DestinationSet.of(4, 1) != DestinationSet.of(8, 1)


class TestProperties:
    @given(bits_sets(), bits_sets())
    def test_union_is_superset_of_both(self, a, b):
        u = a | b
        assert u.is_superset_of(a) and u.is_superset_of(b)

    @given(bits_sets(), bits_sets())
    def test_union_count_inclusion_exclusion(self, a, b):
        assert (a | b).count() == a.count() + b.count() - (a & b).count()

    @given(bits_sets(), bits_sets())
    def test_difference_disjoint_from_subtrahend(self, a, b):
        assert ((a - b) & b).is_empty()

    @given(bits_sets())
    def test_iteration_matches_contains(self, s):
        members = set(s)
        for node in range(N):
            assert (node in members) == s.contains(node)

    @given(bits_sets(), bits_sets())
    def test_union_commutes(self, a, b):
        assert a | b == b | a

    @given(bits_sets())
    def test_broadcast_absorbs(self, s):
        assert (s | DestinationSet.broadcast(N)).is_broadcast()

    @given(st.integers(0, N - 1), bits_sets())
    def test_add_then_contains(self, node, s):
        assert s.add(node).contains(node)
