"""Unified backend switch: explicit-native build hint + decline tallies.

``REPRO_BACKEND=native`` on a machine without the compiled extension
must warn once — with the build command — then fall back to the
fastest Python tier (``auto`` stays silent by design).  Native-kernel
declines are counted per kernel and per reason so a native run that
fell back mid-sweep is visible in ``ResultSet.perf`` rather than just
slower.
"""

import concurrent.futures
import warnings

import pytest

from repro import kernels
from repro.common import backend as _backend
from repro.experiment.results import PerfStats


@pytest.fixture
def unbuilt_native(monkeypatch):
    """Pretend the compiled extension is absent, warning state fresh."""
    monkeypatch.setattr(_backend, "_native_module", None)
    monkeypatch.setattr(_backend, "_warned_native_missing", False)
    monkeypatch.delenv(_backend.PURE_PYTHON_ENV, raising=False)
    monkeypatch.setenv(_backend.BACKEND_ENV, "native")


def test_explicit_native_unbuilt_warns_once_with_build_hint(
    unbuilt_native,
):
    with pytest.warns(RuntimeWarning) as caught:
        resolved = _backend.resolve_env()
    assert resolved in ("numpy", "pure")
    assert len(caught) == 1
    message = str(caught[0].message)
    assert "python -m repro.kernels.build" in message
    # Warned once per process: a second resolve stays silent.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert _backend.resolve_env() in ("numpy", "pure")


def test_auto_with_unbuilt_native_stays_silent(
    unbuilt_native, monkeypatch
):
    monkeypatch.setenv(_backend.BACKEND_ENV, "auto")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert _backend.resolve_env() in ("numpy", "pure")


def test_decline_counters_tally_per_kernel_and_reason():
    kernels.reset_decline_counts()
    try:
        kernels.record_decline("policy_replay", "envelope")
        kernels.record_decline("policy_replay", "envelope")
        kernels.record_decline("timing_pass_detailed", "envelope")
        kernels.record_decline("group_replay", "overflow")
        assert kernels.decline_counts() == {
            "policy_replay:envelope": 2,
            "timing_pass_detailed:envelope": 1,
            "group_replay:overflow": 1,
        }
        # Snapshots are copies, not views.
        snapshot = kernels.decline_counts()
        snapshot["policy_replay:envelope"] = 99
        assert kernels.decline_counts()["policy_replay:envelope"] == 2
    finally:
        kernels.reset_decline_counts()
    assert kernels.decline_counts() == {}


def test_decline_counters_coherent_under_concurrent_increments():
    # Threaded sweeps bump the process-wide tally from many threads
    # at once; the lock in record_decline must make the
    # read-modify-write atomic so no increment is lost.
    kernels.reset_decline_counts()
    per_thread = 5_000
    threads = 8

    def hammer(index: int) -> None:
        for _ in range(per_thread):
            kernels.record_decline("policy_replay", "envelope")
            kernels.record_decline(f"kernel{index % 2}", "overflow")

    try:
        with concurrent.futures.ThreadPoolExecutor(threads) as pool:
            list(pool.map(hammer, range(threads)))
        counts = kernels.decline_counts()
        assert counts["policy_replay:envelope"] == threads * per_thread
        assert (
            counts["kernel0:overflow"] + counts["kernel1:overflow"]
            == threads * per_thread
        )
    finally:
        kernels.reset_decline_counts()


def test_perf_stats_render_decline_tallies():
    perf = PerfStats(
        1000, 2.0, "native", {"policy_replay:envelope": 3}
    )
    text = str(perf)
    assert "native backend" in text
    assert "policy_replay:envelope x3" in text
    # No decline line when the tally is empty.
    assert "declines" not in str(PerfStats(1000, 2.0, "native"))
