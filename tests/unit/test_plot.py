"""Unit tests for the ASCII scatter plots."""

import pytest

from repro.evaluation.plot import plot_runtime, plot_tradeoff, scatter_plot
from repro.evaluation.runtime import RuntimePoint
from repro.evaluation.tradeoff import TradeoffPoint


class TestScatterPlot:
    def test_empty(self):
        assert scatter_plot([]) == "(no points)"

    def test_markers_and_legend(self):
        text = scatter_plot(
            [(1.0, 1.0, "alpha"), (2.0, 2.0, "beta")],
            width=32,
            height=8,
        )
        assert "X=alpha" in text
        assert "O=beta" in text
        body = text.split("\n")
        assert any("X" in line for line in body)
        assert any("O" in line for line in body)

    def test_axis_labels_rendered(self):
        text = scatter_plot(
            [(0.0, 0.0, "p")], x_label="xxx", y_label="yyy"
        )
        assert "xxx" in text and "yyy" in text

    def test_degenerate_ranges_handled(self):
        text = scatter_plot([(5.0, 5.0, "a"), (5.0, 5.0, "b")])
        assert "a" in text  # does not divide by zero

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            scatter_plot([(0, 0, "a")], width=4, height=2)

    def test_shared_label_shares_marker(self):
        text = scatter_plot(
            [(1, 1, "same"), (2, 2, "same"), (3, 3, "same")],
            width=32,
            height=8,
        )
        marker_rows = [
            line for line in text.splitlines() if "X" in line and "|" in line
        ]
        assert len(marker_rows) == 3


class TestDomainPlots:
    def test_plot_tradeoff(self):
        points = [
            TradeoffPoint("directory", "w", 70.0, 2.0, 85.0, 210.0, 100),
            TradeoffPoint("snooping", "w", 0.0, 15.0, 192.0, 140.0, 100),
        ]
        text = plot_tradeoff(points)
        assert "request messages per miss" in text
        assert "X=directory" in text

    def test_plot_runtime(self):
        points = [
            RuntimePoint("directory", "w", 100.0, 45.0, 1e6, 86.0, 70.0),
            RuntimePoint("snooping", "w", 77.0, 100.0, 8e5, 192.0, 0.0),
        ]
        text = plot_runtime(points)
        assert "normalized traffic" in text
