"""Unit tests for the distributed sweep fabric."""

import json
import os
import time

import pytest

from repro.common.atomicio import (
    read_json,
    tmp_sibling,
    write_json_atomic,
)
from repro.experiment import ExperimentSpec, TraceCache
from repro.fabric import (
    Cell,
    FabricCoordinator,
    FabricLayout,
    FabricWorker,
    ResultStore,
    WorkQueue,
)

#: A tiny spec shared by queue/coordinator tests (nothing executes
#: unless a worker runs, so size only matters for worker tests).
SPEC = ExperimentSpec(
    workloads=("barnes-hut",),
    kind="tradeoff",
    n_references=1500,
    policies=("owner",),
)


def make_cell(key="cell-a", index=0, **overrides):
    fields = dict(
        key=key,
        spec_digest="0" * 16,
        index=index,
        workload="barnes-hut",
        seed=42,
        label="owner",
    )
    fields.update(overrides)
    return Cell(**fields)


class TestAtomicIO:
    def test_write_json_atomic_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "artifact.json"
        write_json_atomic(path, {"value": 1})
        assert read_json(path) == {"value": 1}
        assert list(tmp_path.iterdir()) == [path]

    def test_tmp_siblings_are_unique(self, tmp_path):
        path = tmp_path / "artifact.json"
        assert tmp_sibling(path) != tmp_sibling(path)
        assert tmp_sibling(path).parent == tmp_path

    def test_read_json_torn_file_is_none(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"value": 1')  # truncated
        assert read_json(path) is None
        assert read_json(tmp_path / "absent.json") is None


class TestCellKey:
    def test_stable_across_equal_specs(self):
        a, b = SPEC, ExperimentSpec(**{
            f: getattr(SPEC, f)
            for f in ("workloads", "kind", "n_references", "policies")
        })
        for job_a, job_b in zip(a.expand(), b.expand()):
            assert a.cell_key(job_a) == b.cell_key(job_b)

    def test_differs_per_cell_coordinate(self):
        jobs = SPEC.expand()
        keys = {SPEC.cell_key(job) for job in jobs}
        assert len(keys) == len(jobs)

    def test_independent_of_sibling_workloads(self):
        wider = ExperimentSpec(
            workloads=("barnes-hut", "ocean"),
            kind="tradeoff",
            n_references=1500,
            policies=("owner",),
        )
        narrow_keys = {
            (j.workload, j.seed, j.label): SPEC.cell_key(j)
            for j in SPEC.expand()
        }
        wide_keys = {
            (j.workload, j.seed, j.label): wider.cell_key(j)
            for j in wider.expand()
        }
        for coord, key in narrow_keys.items():
            assert wide_keys[coord] == key

    def test_sensitive_to_result_shaping_fields(self):
        job = SPEC.expand()[0]
        assert SPEC.cell_key(job) != ExperimentSpec(
            workloads=("barnes-hut",),
            kind="tradeoff",
            n_references=3000,
            policies=("owner",),
        ).cell_key(job)

    def test_bandwidth_point_enters_key(self):
        spec = ExperimentSpec(
            workloads=("barnes-hut",),
            kind="runtime",
            n_references=1500,
            policies=("owner",),
            link_bandwidths=(10.0, 2.5),
        )
        by_bandwidth = {}
        for job in spec.expand():
            if job.label == "owner":
                by_bandwidth[job.bandwidth] = spec.cell_key(job)
        assert by_bandwidth[10.0] != by_bandwidth[2.5]


class TestWorkQueue:
    def test_enqueue_claim_complete_lifecycle(self, tmp_path):
        queue = WorkQueue(tmp_path)
        cell = make_cell()
        assert queue.enqueue(cell)
        assert not queue.enqueue(cell)  # idempotent
        assert queue.has_work()

        lease = queue.claim("w1")
        assert lease is not None and lease.cell == cell
        assert queue.claim("w2") is None  # leased elsewhere

        queue.complete(lease)
        assert not queue.has_work()
        assert queue.claim("w1") is None
        assert queue.status()["done"] == 1

    def test_claim_scans_in_key_order(self, tmp_path):
        queue = WorkQueue(tmp_path)
        for key in ("b-cell", "a-cell", "c-cell"):
            queue.enqueue(make_cell(key=key))
        assert queue.claim("w").cell.key == "a-cell"
        assert queue.claim("w").cell.key == "b-cell"

    def test_release_backs_off_then_retries(self, tmp_path):
        queue = WorkQueue(tmp_path)
        queue.enqueue(make_cell())
        lease = queue.claim("w1")
        queue.release(lease, "boom")
        # Inside the backoff window the cell is not claimable...
        assert queue.claim("w1") is None
        assert queue.has_work()
        status = queue.status()
        assert status["retries"][0]["attempts"] == 1
        # ...and becomes claimable once it elapses.
        deadline = time.time() + 5.0
        lease = None
        while lease is None and time.time() < deadline:
            lease = queue.claim("w1")
            if lease is None:
                time.sleep(0.05)
        assert lease is not None

    def test_quarantine_after_max_attempts(self, tmp_path):
        queue = WorkQueue(tmp_path, max_attempts=2)
        queue.enqueue(make_cell())
        lease = queue.claim("w1")
        queue.release(lease, "first failure")
        time.sleep(0.6)  # first backoff window
        lease = queue.claim("w1")
        assert lease is not None
        queue.release(lease, "second failure")
        # Two attempts = max: quarantined, never claimable again.
        assert not queue.has_work()
        assert queue.claim("w1") is None
        failed = queue.failed_cells()
        assert len(failed) == 1
        assert failed[0]["attempts"] == 2
        assert "second failure" in failed[0]["errors"][-1]
        # Quarantine blocks re-enqueueing until cleared.
        assert not queue.enqueue(make_cell())
        assert queue.clear_failed() == 1
        assert queue.enqueue(make_cell())

    def test_expired_lease_is_reclaimed(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=0.2)
        queue.enqueue(make_cell())
        lease = queue.claim("dead-worker")
        assert queue.claim("other") is None  # live lease blocks
        time.sleep(0.3)
        # First scan steals the expired claim (attempt bump), a
        # following scan (after the backoff) re-leases the cell.
        deadline = time.time() + 5.0
        reclaimed = None
        while reclaimed is None and time.time() < deadline:
            reclaimed = queue.claim("other")
            if reclaimed is None:
                time.sleep(0.05)
        assert reclaimed is not None
        assert reclaimed.cell == lease.cell
        assert reclaimed.worker_id == "other"

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=0.4)
        queue.enqueue(make_cell())
        lease = queue.claim("w1")
        for _ in range(4):
            time.sleep(0.15)
            queue.heartbeat(lease)
        # Well past the TTL in wall time, but heartbeats kept it live.
        assert queue.claim("w2") is None

    def test_torn_claim_counts_as_expired(self, tmp_path):
        queue = WorkQueue(tmp_path, lease_ttl=30.0)
        queue.enqueue(make_cell())
        queue.claim("w1")
        claim_path = queue.layout.claim_path("cell-a")
        claim_path.write_text("{torn")
        lease = queue.claim("w2")  # reclaim happens despite long TTL
        if lease is None:  # backoff from the reclaim attempt-bump
            time.sleep(0.6)
            lease = queue.claim("w2")
        assert lease is not None

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            WorkQueue(tmp_path, lease_ttl=0.0)
        with pytest.raises(ValueError):
            WorkQueue(tmp_path, max_attempts=0)


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        records = [{"workload": "w", "metrics": {"m": 1.5}}]
        store.put("k1", records, 123, {"key": "k1"})
        artifact = store.get("k1")
        assert artifact["records"] == records
        assert artifact["processed"] == 123
        assert store.has("k1")
        assert store.keys() == ["k1"]
        assert len(store) == 1

    def test_missing_key_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get("nope") is None

    def test_torn_artifact_heals_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", [], 0)
        store.path("k1").write_text('{"format": 1, "records": [')
        assert store.get("k1") is None
        assert not store.path("k1").exists()  # healed (unlinked)

    def test_wrong_key_artifact_is_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", [], 0)
        os.rename(store.path("k1"), store.path("k2"))
        assert store.get("k2") is None

    def test_format_bump_invalidates(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("k1", [], 0)
        data = json.loads(store.path("k1").read_text())
        data["format"] = 999
        store.path("k1").write_text(json.dumps(data))
        assert not store.has("k1")


class TestTraceCacheHealing:
    """Concurrent-writer/torn-artifact audit of the trace cache."""

    def _store_one(self, tmp_path):
        from repro.experiment import make_corpus

        corpus = make_corpus(cache_dir=tmp_path)
        corpus.trace("barnes-hut", 1000, 42)
        key = TraceCache.key(
            "barnes-hut", 1000, 42, corpus.config
        )
        return corpus, key

    def test_torn_binary_sidecar_heals_from_text(self, tmp_path):
        _, key = self._store_one(tmp_path)
        binary = tmp_path / f"{key}.bin"
        original = binary.read_bytes()
        binary.write_bytes(original[: len(original) // 2])
        # Tear the v2 sidecar too, or the load never reaches .bin.
        (tmp_path / f"{key}.bin2").write_bytes(b"#repro-trace-bin v2\n")

        cache = TraceCache(tmp_path)
        result = cache.load(key)
        assert result is not None  # text fallback
        assert cache.stats.hits == 1
        assert binary.read_bytes() == original  # healed

    def test_torn_v2_sidecar_heals_from_binary(self, tmp_path):
        _, key = self._store_one(tmp_path)
        v2 = tmp_path / f"{key}.bin2"
        original = v2.read_bytes()
        v2.write_bytes(original[: len(original) // 2])

        from repro.experiment.cache import derived_config
        from repro.common.params import SystemConfig

        cache = TraceCache(
            tmp_path, derived=derived_config(SystemConfig())
        )
        result = cache.load(key)
        assert result is not None  # .bin fallback
        assert cache.stats.hits == 1
        assert v2.read_bytes() == original  # healed byte-identically

    def test_torn_meta_is_a_miss(self, tmp_path):
        _, key = self._store_one(tmp_path)
        (tmp_path / f"{key}.json").write_text('{"instructions"')
        cache = TraceCache(tmp_path)
        assert cache.load(key) is None
        assert cache.stats.misses == 1

    def test_concurrent_store_same_key_benign(self, tmp_path):
        # Two corpora racing to store the same key: both succeed, the
        # entry stays loadable, and no tmp files are left behind.
        corpus, key = self._store_one(tmp_path)
        other, _ = self._store_one(tmp_path)
        assert TraceCache(tmp_path).load(key) is not None
        leftovers = [
            p for p in tmp_path.iterdir() if ".tmp" in p.name
        ]
        assert leftovers == []


class TestCoordinator:
    def test_enqueue_missing_counts(self, tmp_path):
        coordinator = FabricCoordinator(tmp_path)
        counts = coordinator.enqueue_missing(SPEC)
        assert counts == {
            "stored": 0, "enqueued": SPEC.n_jobs, "queued": 0
        }
        # Idempotent: second call finds everything already queued.
        counts = coordinator.enqueue_missing(SPEC)
        assert counts == {
            "stored": 0, "enqueued": 0, "queued": SPEC.n_jobs
        }

    def test_spec_registry_round_trip(self, tmp_path):
        coordinator = FabricCoordinator(tmp_path)
        digest = coordinator.register(SPEC)
        assert coordinator.load_spec(digest) == SPEC
        assert coordinator.registered_specs() == [digest]
        assert coordinator.load_spec("f" * 16) is None

    def test_try_assemble_incomplete_is_none(self, tmp_path):
        coordinator = FabricCoordinator(tmp_path)
        coordinator.enqueue_missing(SPEC)
        assert coordinator.try_assemble(SPEC) is None

    def test_run_timeout_without_workers(self, tmp_path):
        coordinator = FabricCoordinator(tmp_path)
        with pytest.raises(TimeoutError):
            coordinator.run(
                SPEC, workers=0, timeout=0.2, poll_interval=0.05
            )

    def test_worker_drains_and_assembly_matches_serial(self, tmp_path):
        from repro.experiment import Runner

        coordinator = FabricCoordinator(tmp_path)
        coordinator.enqueue_missing(SPEC)
        executed = FabricWorker(tmp_path).run()
        assert executed == SPEC.n_jobs
        results = coordinator.try_assemble(SPEC)
        serial = Runner(jobs=1).run(SPEC)
        assert results == serial
        assert results.to_json() == serial.to_json()

    def test_resume_skips_stored_cells(self, tmp_path):
        coordinator = FabricCoordinator(tmp_path)
        coordinator.enqueue_missing(SPEC)
        FabricWorker(tmp_path, max_cells=1).run()
        counts = coordinator.enqueue_missing(SPEC)
        assert counts["stored"] == 1
        assert counts["queued"] == SPEC.n_jobs - 1
        # Drain the rest with a fresh worker; nothing recomputes.
        executed = FabricWorker(tmp_path).run()
        assert executed == SPEC.n_jobs - 1
        assert coordinator.try_assemble(SPEC) is not None

    def test_quarantined_cell_reported_as_failure(self, tmp_path):
        coordinator = FabricCoordinator(tmp_path, max_attempts=1)
        digest = coordinator.register(SPEC)
        coordinator.enqueue_missing(SPEC)
        # Poison one queue entry: point it at a job index whose cell
        # key can't match, so execution always errors.
        job = SPEC.expand()[0]
        key = SPEC.cell_key(job)
        bad = Cell(
            key=key, spec_digest=digest, index=1,
            workload=job.workload, seed=job.seed, label=job.label,
        )
        from repro.common.atomicio import write_json_atomic

        write_json_atomic(
            coordinator.layout.pending_path(key), bad.to_dict()
        )
        FabricWorker(tmp_path, max_attempts=1).run()
        results = coordinator.try_assemble(SPEC)
        assert results is not None
        assert len(results.failures) == 1
        failure = results.failures[0]
        assert failure.label == job.label
        assert "RuntimeError" in failure.error
        # The other cells' records are all present.
        assert len(results.records) == SPEC.n_jobs - 1


class TestLayout:
    def test_ensure_creates_everything(self, tmp_path):
        layout = FabricLayout(tmp_path / "fab").ensure()
        for directory in (
            layout.specs, layout.pending, layout.claims,
            layout.retries, layout.failed, layout.done,
            layout.store, layout.traces,
        ):
            assert directory.is_dir()
        assert layout.pending_path("k").name == "k.json"
