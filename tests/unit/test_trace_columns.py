"""Unit tests for the columnar trace backend and trusted fast paths."""

import pytest

from repro.common.destset import DestinationSet
from repro.common.types import AccessType
from repro.trace import Trace, TraceRecord, read_trace, write_trace

from tests.conftest import gets, getx, make_trace


class TestColumnarBackend:
    def test_columns_mirror_records(self):
        records = [
            TraceRecord(0x1240, 0xF00, 2, AccessType.GETS, 17),
            TraceRecord(0x1280, 0xF04, 3, AccessType.GETX, 5),
        ]
        trace = make_trace(records)
        assert list(trace.addresses) == [0x1240, 0x1280]
        assert list(trace.pcs) == [0xF00, 0xF04]
        assert list(trace.requesters) == [2, 3]
        assert list(trace.accesses) == [0, 1]
        assert list(trace.instructions) == [17, 5]
        assert list(trace) == records

    def test_block_keys_cached_per_trace(self):
        trace = make_trace([gets(0x1244, 0), getx(0x4001, 1)])
        keys = trace.block_keys(64)
        assert list(keys) == [0x1240, 0x4000]
        assert trace.block_keys(64) is keys  # computed once
        assert list(trace.macroblock_keys(1024)) == [0x1000, 0x4000]

    def test_append_invalidates_key_cache(self):
        trace = make_trace([gets(0x40, 0)])
        assert list(trace.block_keys(64)) == [0x40]
        trace.append(gets(0x81, 1))
        assert list(trace.block_keys(64)) == [0x40, 0x80]

    def test_append_fields_is_trusted(self):
        trace = make_trace([])
        trace.append_fields(0x40, 0x10, 1, 1, 9)
        record = trace[0]
        assert record == TraceRecord(0x40, 0x10, 1, AccessType.GETX, 9)

    def test_slices_share_no_state(self):
        trace = make_trace([gets(64 * i, i % 4) for i in range(8)])
        head, tail = trace.split_warmup(3)
        head.append(getx(0x4000, 1))
        assert len(trace) == 8 and len(tail) == 5

    def test_records_materialized_lazily_are_real_records(self):
        trace = make_trace([gets(0x40, 0)])
        record = trace[0]
        assert isinstance(record, TraceRecord)
        assert record.block(64) == 0x40
        with pytest.raises(Exception):
            record.address = 1  # still frozen


class TestTrustedRecord:
    def test_trusted_skips_validation(self):
        # Internal fast path: no range checks on purpose.
        record = TraceRecord.trusted(-1, 0, 0, AccessType.GETS)
        assert record.address == -1

    def test_trusted_equals_checked(self):
        assert TraceRecord.trusted(
            0x40, 0x10, 1, AccessType.GETX, 3
        ) == TraceRecord(0x40, 0x10, 1, AccessType.GETX, 3)


class TestTrustedIo:
    def test_trusted_read_skips_validation(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(
            "# repro-trace v1 n_processors=2 name=-\n40 10 9 GETS 5\n"
        )
        # Requester 9 is out of range: rejected by default...
        with pytest.raises(ValueError):
            read_trace(path)
        # ...but accepted on the trusted (cache) load path.
        loaded = read_trace(path, trusted=True)
        assert loaded[0].requester == 9

    def test_untrusted_read_rejects_bad_access_kind(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text(
            "# repro-trace v1 n_processors=2 name=-\n40 10 1 PUTS 5\n"
        )
        with pytest.raises(ValueError):
            read_trace(path)

    def test_round_trip_preserves_columns(self, tmp_path):
        trace = make_trace(
            [gets(0x1240, 2, pc=0xF00), getx(0x1280, 3, pc=0xF04)],
            name="demo",
        )
        path = tmp_path / "t.trace"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert list(loaded.addresses) == list(trace.addresses)
        assert list(loaded.accesses) == list(trace.accesses)


class TestDestinationSetInterning:
    def test_empty_and_broadcast_interned_per_n_nodes(self):
        assert DestinationSet.empty(16) is DestinationSet.empty(16)
        assert DestinationSet.broadcast(16) is DestinationSet.broadcast(16)
        assert DestinationSet.empty(8) is not DestinationSet.empty(16)

    def test_singletons_interned(self):
        assert DestinationSet.of(16, 3) is DestinationSet.of(16, 3)

    def test_algebra_returns_interned_extremes(self):
        a = DestinationSet.of(16, 1, 2)
        assert (a - a) is DestinationSet.empty(16)
        b = DestinationSet.broadcast(16)
        assert (a | b) is DestinationSet.broadcast(16)

    def test_count_uses_popcount(self):
        assert DestinationSet(16, 0b1011).count() == 3
        assert len(DestinationSet(16, 0b1011)) == 3
